"""Unified telemetry for the repro serving tier.

One process-global ``MetricsRegistry`` backs every layer (stream,
estimators, kernels, service, wire, router); module-level helpers are
the instrumentation API so no constructor anywhere grows a telemetry
kwarg::

    from repro import telemetry

    telemetry.counter("repro_stream_records_admitted_total").inc(n)
    with telemetry.phase("sweeps"):
        ...

Each shared-nothing router partition is its own process and therefore
its own registry; the router merges partition reports with provenance
labels at query time.  Set ``REPRO_TELEMETRY=0`` in the environment (or
call ``configure(enabled=False)``) to disable all instrumentation; the
disabled hot path is a single attribute read and branch.

The documented metric surface lives in :mod:`repro.telemetry.spec`;
renderers in :mod:`repro.telemetry.render`; the ``repro top`` console
renderer in :mod:`repro.telemetry.console`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.telemetry.core import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
    WindowTrace,
)
from repro.telemetry.render import (
    label_metrics,
    label_traces,
    merge_reports,
    render_json,
    render_prometheus,
)
from repro.telemetry.spec import BUCKETS, SPEC

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryError",
    "WindowTrace",
    "SPEC",
    "BUCKETS",
    "configure",
    "counter",
    "enabled",
    "gauge",
    "gauge_callback",
    "get_registry",
    "histogram",
    "isolated",
    "label_metrics",
    "label_traces",
    "merge_reports",
    "phase",
    "render_json",
    "render_prometheus",
    "report",
    "set_registry",
    "window_trace",
]


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_TELEMETRY", "1").strip().lower()
    return raw not in ("0", "false", "off", "no")


_REGISTRY = MetricsRegistry(enabled=_env_enabled())


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    global _REGISTRY
    _REGISTRY = registry
    return registry


def configure(enabled: bool | None = None) -> MetricsRegistry:
    if enabled is not None:
        _REGISTRY.enabled = bool(enabled)
    return _REGISTRY


def enabled() -> bool:
    return _REGISTRY.enabled


def counter(name: str, **labels) -> Counter:
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _REGISTRY.gauge(name, **labels)


def gauge_callback(name: str, fn, **labels) -> Gauge:
    return _REGISTRY.gauge_callback(name, fn, **labels)


def histogram(name: str, buckets=None, **labels) -> Histogram:
    return _REGISTRY.histogram(name, buckets=buckets, **labels)


def phase(name: str):
    return _REGISTRY.phase(name)


def window_trace(index: int, t0: float, t1: float):
    return _REGISTRY.window_trace(index, t0, t1)


def report() -> dict:
    return _REGISTRY.report()


@contextmanager
def isolated(enabled: bool = True):
    """Swap in a fresh registry for the duration (tests, benchmarks)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = MetricsRegistry(enabled=enabled)
    try:
        yield _REGISTRY
    finally:
        _REGISTRY = previous
