"""Wire renderings of a metrics report.

A *report* is the picklable dict produced by ``MetricsRegistry.report()``:
``{"schema": 1, "metrics": [...], "window_traces": [...]}``.  The router
ships partition reports over the framed protocol as these dicts, tags
them with partition provenance via ``label_metrics``, and merges them
with ``merge_reports``; the server renders either Prometheus v0 text or
canonical JSON on demand.
"""

from __future__ import annotations

import json
import math

__all__ = [
    "label_metrics",
    "label_traces",
    "merge_reports",
    "render_json",
    "render_prometheus",
]


def _fmt_value(value) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _labels_text(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(metrics: list[dict]) -> str:
    """Prometheus text exposition format version 0.0.4."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in sorted(metrics, key=lambda m: (m["name"], sorted((m.get("labels") or {}).items()))):
        name = metric["name"]
        labels = metric.get("labels") or {}
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = (metric.get("help") or "").replace("\\", "\\\\").replace("\n", "\\n")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric['type']}")
        if metric["type"] == "histogram":
            cumulative = 0
            for le, count in metric["buckets"]:
                cumulative += count
                le_text = "+Inf" if le == math.inf else _fmt_value(le)
                lines.append(
                    f"{name}_bucket{_labels_text(labels, {'le': le_text})} {cumulative}"
                )
            lines.append(f"{name}_sum{_labels_text(labels)} {_fmt_value(metric['sum'])}")
            lines.append(f"{name}_count{_labels_text(labels)} {metric['count']}")
        else:
            lines.append(f"{name}{_labels_text(labels)} {_fmt_value(metric['value'])}")
    return "\n".join(lines) + "\n"


def _json_safe(obj):
    if isinstance(obj, float):
        if math.isnan(obj):
            return "NaN"
        if obj == math.inf:
            return "+Inf"
        if obj == -math.inf:
            return "-Inf"
        return obj
    if isinstance(obj, dict):
        return {key: _json_safe(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(item) for item in obj]
    return obj


def render_json(report: dict) -> str:
    """Canonical JSON rendering; non-finite floats become strings so the
    output is strict-JSON parseable everywhere."""
    return json.dumps(_json_safe(report), sort_keys=True)


def label_metrics(metrics: list[dict], **extra) -> list[dict]:
    """Return a copy of ``metrics`` with ``extra`` merged into each
    series' labels (e.g. ``partition="3"`` provenance on router merges)."""
    tagged = {key: str(value) for key, value in extra.items()}
    out = []
    for metric in metrics:
        clone = dict(metric)
        clone["labels"] = {**(metric.get("labels") or {}), **tagged}
        out.append(clone)
    return out


def label_traces(traces: list[dict], **extra) -> list[dict]:
    out = []
    for trace in traces:
        clone = dict(trace)
        clone.update(extra)
        out.append(clone)
    return out


def merge_reports(reports: list[dict]) -> dict:
    """Fold several reports into one (router fan-in).  Series are kept
    distinct -- provenance labels added beforehand prevent collisions."""
    metrics: list[dict] = []
    traces: list[dict] = []
    for report in reports:
        if not report:
            continue
        metrics.extend(report.get("metrics") or [])
        traces.extend(report.get("window_traces") or [])
    metrics.sort(key=lambda m: (m["name"], sorted((m.get("labels") or {}).items())))
    return {"schema": 1, "metrics": metrics, "window_traces": traces}
