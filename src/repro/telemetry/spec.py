"""The documented metric surface.

``SPEC`` is the single source of truth for every metric the repro tier
emits: name -> (kind, layer, help).  The README "Observability" table is
generated from (and tested against) this mapping, and
``tests/test_telemetry.py`` asserts that every name emitted anywhere in
the codebase appears here exactly once -- adding a metric without
documenting it, or documenting one that nothing emits, fails the suite.

Counters end in ``_total`` (Prometheus v0 convention); histograms carry
``_seconds`` / ``_bytes`` style unit suffixes where applicable.
"""

from __future__ import annotations

KINDS = ("counter", "gauge", "histogram")
LAYERS = ("stream", "estimator", "kernel", "service", "wire", "router")

#: name -> (kind, layer, help)
SPEC: dict[str, tuple[str, str, str]] = {
    # -- live stream ----------------------------------------------------
    "repro_stream_records_admitted_total": (
        "counter", "stream",
        "Measurement records admitted into the live stream buffer."),
    "repro_stream_records_duplicate_total": (
        "counter", "stream",
        "Records dropped because their (task, field) slot was already filled."),
    "repro_stream_records_late_total": (
        "counter", "stream",
        "Records rejected for arriving behind the reveal frontier minus the lateness bound."),
    "repro_stream_records_straggler_total": (
        "counter", "stream",
        "Late records salvaged into not-yet-revealed tasks within the lateness bound."),
    "repro_stream_tasks_dropped_total": (
        "counter", "stream",
        "Tasks evicted by the max_pending backpressure bound."),
    "repro_stream_tasks_revealed_total": (
        "counter", "stream",
        "Tasks revealed to pollers by watermark advances."),
    "repro_stream_tasks_compacted_total": (
        "counter", "stream",
        "Aged-out tasks folded into compaction summaries and evicted."),
    "repro_stream_events_compacted_total": (
        "counter", "stream",
        "Events folded into compaction summaries and evicted."),
    "repro_stream_ingest_batches_total": (
        "counter", "stream",
        "ingest() batches admitted over all transports."),
    "repro_stream_ingest_batch_seconds": (
        "histogram", "stream",
        "Wall time spent admitting one ingest() batch."),
    "repro_stream_watermark": (
        "gauge", "stream",
        "Current reveal watermark on the trace clock."),
    "repro_stream_horizon": (
        "gauge", "stream",
        "Newest event timestamp seen on the stream (trace clock)."),
    "repro_stream_memory": (
        "gauge", "stream",
        "Live container sizes from memory_stats(); one series per container label."),
    # -- streaming estimators ------------------------------------------
    "repro_window_phase_seconds": (
        "histogram", "estimator",
        "Per-window pipeline phase latency; phase label is one of poll, subset, "
        "partition, burn-in, sweeps, m-step, reweight, publish, checkpoint."),
    "repro_windows_processed_total": (
        "counter", "estimator",
        "Windows that produced a rate estimate."),
    "repro_windows_skipped_total": (
        "counter", "estimator",
        "Windows skipped for insufficient observed tasks."),
    "repro_windows_failed_total": (
        "counter", "estimator",
        "Windows that exhausted worker-relaunch retries and published a failure."),
    "repro_worker_relaunches_total": (
        "counter", "estimator",
        "Warm shard worker pool relaunches after a worker death."),
    "repro_smc_ess": (
        "gauge", "estimator",
        "Effective sample size of the SMC particle population after the last reweight."),
    "repro_smc_rejuvenations_total": (
        "counter", "estimator",
        "ESS-triggered systematic resample + Gibbs rejuvenation passes."),
    # -- sweep kernels --------------------------------------------------
    "repro_kernel_sweeps_total": (
        "counter", "kernel",
        "Full Gibbs sweeps executed by the array/native kernel."),
    "repro_kernel_sweep_seconds": (
        "histogram", "kernel",
        "Wall time per full kernel sweep."),
    "repro_kernel_moves_total": (
        "counter", "kernel",
        "Single-variable moves resampled across all sweeps."),
    "repro_kernel_batch_size": (
        "histogram", "kernel",
        "Conflict-free move batch sizes planned at kernel construction."),
    "repro_kernel_native_available": (
        "gauge", "kernel",
        "1 when the numba-compiled native branch is active, 0 on the numpy fallback."),
    # -- estimator service ----------------------------------------------
    "repro_service_windows_published_total": (
        "counter", "service",
        "Window estimates appended to the published series."),
    "repro_service_anomalies_total": (
        "counter", "service",
        "Anomaly flags raised by the publish-path detector."),
    "repro_service_publish_seconds": (
        "histogram", "service",
        "Monotonic latency from window pickup to publish completion."),
    "repro_service_checkpoint_seconds": (
        "histogram", "service",
        "Wall time writing one checkpoint snapshot."),
    "repro_service_checkpoint_bytes": (
        "gauge", "service",
        "Size of the last checkpoint written, in bytes."),
    "repro_service_records_seen_total": (
        "counter", "service",
        "Measurement records accepted by EstimatorService.ingest()."),
    # -- wire layer ------------------------------------------------------
    "repro_server_requests_total": (
        "counter", "wire",
        "Framed-HMAC requests dispatched, labelled by command."),
    "repro_server_request_seconds": (
        "histogram", "wire",
        "Wall time handling one wire request."),
    "repro_server_dispatch_errors_total": (
        "counter", "wire",
        "Unexpected exceptions inside command dispatch."),
    "repro_server_rejected_connections_total": (
        "counter", "wire",
        "Connections rejected at the authentication handshake."),
    # -- ingest router ---------------------------------------------------
    "repro_router_records_routed_total": (
        "counter", "router",
        "Records routed to a partition (including spooled-for-replay copies)."),
    "repro_router_unroutable_total": (
        "counter", "router",
        "Records dropped because no entry key could be derived."),
    "repro_router_parked_records": (
        "gauge", "router",
        "Records parked waiting for a restarting partition."),
    "repro_router_spool_records": (
        "gauge", "router",
        "Records held in per-partition replay spools."),
    "repro_router_spool_evicted_total": (
        "counter", "router",
        "Spooled records evicted before replay by the spool bound."),
    "repro_router_restarts_total": (
        "counter", "router",
        "Partition service restarts from checkpoint."),
}

#: Non-default bucket boundaries, for histograms that do not measure seconds.
BUCKETS: dict[str, tuple[float, ...]] = {
    "repro_kernel_batch_size": (
        1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
        256.0, 512.0, 1024.0, 4096.0, 16384.0),
}


def kind_of(name: str) -> str | None:
    entry = SPEC.get(name)
    return entry[0] if entry else None


def layer_of(name: str) -> str | None:
    entry = SPEC.get(name)
    return entry[1] if entry else None


def help_of(name: str) -> str:
    entry = SPEC.get(name)
    return entry[2] if entry else ""
