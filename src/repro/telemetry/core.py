"""Dependency-free metrics core.

``MetricsRegistry`` holds three metric kinds behind per-metric locks:

* ``Counter`` -- monotonic float, ``inc(amount)``.
* ``Gauge`` -- last-write-wins float, or a zero-argument callback
  evaluated lazily at snapshot time (never while a registry or metric
  lock is held, so callbacks may take their own locks).
* ``Histogram`` -- fixed log-spaced buckets plus a bounded reservoir
  (Algorithm R with a name-seeded ``random.Random``) for approximate
  quantiles.  The reservoir never touches numpy RNG state, so
  instrumented runs stay bitwise-equal to uninstrumented ones.

On top of the metrics sit per-window pipeline traces: ``phase(name)``
is a context manager that times a pipeline phase into the
``repro_window_phase_seconds{phase=...}`` histogram and, when a window
trace is open on the current thread, folds the span into that trace;
``window_trace(index, t0, t1)`` opens a ``WindowTrace`` that lands in a
bounded ring buffer for wire exposition.

Everything short-circuits when ``registry.enabled`` is false: the hot
paths pay one attribute read and a branch, which is what lets
``bench_telemetry.py`` pin the enabled-vs-disabled overhead within 3%.
"""

from __future__ import annotations

import math
import threading
import time
import zlib
from bisect import bisect_left
from collections import deque
from random import Random

from repro.telemetry import spec as _spec

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryError",
    "WindowTrace",
    "DEFAULT_SECONDS_BUCKETS",
]

#: ~1 microsecond to ~31.6 seconds in half-decade steps.
DEFAULT_SECONDS_BUCKETS = tuple(10.0 ** (k / 2.0) for k in range(-12, 4))

RESERVOIR_SIZE = 256
TRACE_RING_SIZE = 256


class TelemetryError(RuntimeError):
    """Metric registered twice with conflicting kinds, or bad arguments."""


class _Metric:
    kind = "untyped"
    __slots__ = ("name", "labels", "help", "_lock")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...], help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    def _base_data(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "layer": _spec.layer_of(self.name) or "",
            "help": self.help,
            "labels": dict(self.labels),
        }


class Counter(_Metric):
    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name, labels, help=""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease (inc({amount!r}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot_data(self) -> dict:
        data = self._base_data()
        data["value"] = self.value
        return data


class Gauge(_Metric):
    kind = "gauge"
    __slots__ = ("_value", "_callback")

    def __init__(self, name, labels, help=""):
        super().__init__(name, labels, help)
        self._value = 0.0
        self._callback = None

    def set(self, value: float) -> None:
        with self._lock:
            self._callback = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_callback(self, fn) -> None:
        """Evaluate ``fn()`` at snapshot time instead of a stored value."""
        with self._lock:
            self._callback = fn

    @property
    def value(self) -> float:
        with self._lock:
            callback = self._callback
            if callback is None:
                return self._value
        # Callbacks run outside the metric lock: they are free to take
        # their owner's locks (e.g. the stream lock in memory_stats()).
        try:
            return float(callback())
        except Exception:
            return float("nan")

    def snapshot_data(self) -> dict:
        data = self._base_data()
        data["value"] = self.value
        return data


class Histogram(_Metric):
    kind = "histogram"
    __slots__ = ("buckets", "_counts", "_count", "_sum", "_min", "_max",
                 "_reservoir", "_seen", "_rng")

    def __init__(self, name, labels, help="", buckets=DEFAULT_SECONDS_BUCKETS):
        super().__init__(name, labels, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise TelemetryError(f"histogram {name} needs at least one bucket bound")
        self._counts = [0] * (len(self.buckets) + 1)  # last slot: > max bound
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: list[float] = []
        self._seen = 0
        # Deterministic stdlib stream, keyed off the series identity --
        # never numpy's RNG, so estimator determinism is untouched.
        seed = zlib.crc32(repr((name, labels)).encode("utf-8"))
        self._rng = Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self.buckets, value)] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            # Algorithm R bounded reservoir for quantile estimates.
            self._seen += 1
            if len(self._reservoir) < RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._seen)
                if slot < RESERVOIR_SIZE:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantiles(self, qs=(0.5, 0.9, 0.99)) -> dict[str, float | None]:
        with self._lock:
            sample = sorted(self._reservoir)
        out = {}
        for q in qs:
            key = f"p{round(q * 100):d}"
            if not sample:
                out[key] = None
            else:
                idx = min(len(sample) - 1, int(q * len(sample)))
                out[key] = sample[idx]
        return out

    def snapshot_data(self) -> dict:
        data = self._base_data()
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
            lo = self._min
            hi = self._max
        data.update(
            count=count,
            sum=total,
            min=None if count == 0 else lo,
            max=None if count == 0 else hi,
            buckets=[[le, c] for le, c in zip(self.buckets, counts)]
            + [[math.inf, counts[-1]]],
            quantiles=self.quantiles(),
        )
        return data


class WindowTrace:
    """Phase-span roll-up for one processed window."""

    __slots__ = ("index", "t0", "t1", "wall_start", "duration_seconds", "phases")

    def __init__(self, index: int, t0: float, t1: float):
        self.index = index
        self.t0 = float(t0)
        self.t1 = float(t1)
        self.wall_start = time.time()
        self.duration_seconds = 0.0
        self.phases: dict[str, dict[str, float]] = {}

    def add_phase(self, name: str, seconds: float) -> None:
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = {"seconds": seconds, "count": 1}
        else:
            entry["seconds"] += seconds
            entry["count"] += 1

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "t0": self.t0,
            "t1": self.t1,
            "wall_start": self.wall_start,
            "duration_seconds": self.duration_seconds,
            "phases": {name: dict(entry) for name, entry in self.phases.items()},
        }


class _NullContext:
    """Shared no-op stand-in for phase()/window_trace() when disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class _PhaseTimer:
    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry, name):
        self._registry = registry
        self._name = name

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        dt = time.perf_counter() - self._t0
        reg = self._registry
        reg.histogram("repro_window_phase_seconds", phase=self._name).observe(dt)
        trace = getattr(reg._local, "trace", None)
        if trace is not None:
            trace.add_phase(self._name, dt)
        return False


class _WindowTraceRecorder:
    __slots__ = ("_registry", "_trace", "_prev", "_t0")

    def __init__(self, registry, index, t0, t1):
        self._registry = registry
        self._trace = WindowTrace(index, t0, t1)

    def __enter__(self):
        reg = self._registry
        self._prev = getattr(reg._local, "trace", None)
        reg._local.trace = self._trace
        self._t0 = time.perf_counter()
        return self._trace

    def __exit__(self, *exc):
        reg = self._registry
        self._trace.duration_seconds = time.perf_counter() - self._t0
        reg._local.trace = self._prev
        reg._traces.append(self._trace)  # deque append is atomic
        return False


class MetricsRegistry:
    """Process-wide metric store; one per process (or per test via
    ``telemetry.isolated()``)."""

    def __init__(self, enabled: bool = True, trace_ring: int = TRACE_RING_SIZE):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: dict[tuple, _Metric] = {}
        self._traces: deque[WindowTrace] = deque(maxlen=trace_ring)
        self._local = threading.local()

    # -- registration ---------------------------------------------------

    def _get(self, cls, name: str, labels: dict, **kwargs) -> _Metric:
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                spec_kind = _spec.kind_of(name)
                if spec_kind is not None and spec_kind != cls.kind:
                    raise TelemetryError(
                        f"{name} is documented as a {spec_kind}, not a {cls.kind}")
                metric = cls(name, key[1], help=_spec.help_of(name), **kwargs)
                self._metrics[key] = metric
            elif type(metric) is not cls:
                raise TelemetryError(
                    f"{name}{dict(key[1])} already registered as {metric.kind}, "
                    f"not {cls.kind}")
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def gauge_callback(self, name: str, fn, **labels) -> Gauge:
        g = self._get(Gauge, name, labels)
        g.set_callback(fn)
        return g

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        if buckets is None:
            buckets = _spec.BUCKETS.get(name, DEFAULT_SECONDS_BUCKETS)
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- window tracing -------------------------------------------------

    def phase(self, name: str):
        if not self.enabled:
            return _NULL_CONTEXT
        return _PhaseTimer(self, name)

    def window_trace(self, index: int, t0: float, t1: float):
        if not self.enabled:
            return _NULL_CONTEXT
        return _WindowTraceRecorder(self, index, t0, t1)

    # -- exposition -----------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Point-in-time metric values, sorted by (name, labels).

        Each metric is read under its own lock; callback gauges are
        evaluated with no telemetry lock held at all.  A disabled
        registry exposes nothing, even when an unguarded call site
        registered a series anyway.
        """
        if not self.enabled:
            return []
        with self._lock:
            items = sorted(self._metrics.items())
        return [metric.snapshot_data() for _key, metric in items]

    def window_traces(self) -> list[dict]:
        if not self.enabled:
            return []
        return [trace.as_dict() for trace in list(self._traces)]

    def report(self) -> dict:
        return {
            "schema": 1,
            "metrics": self.snapshot(),
            "window_traces": self.window_traces(),
        }
