"""Pure renderer behind ``repro top`` — the live ops console.

``render_top`` turns one polling round's replies (``health``,
``estimates``, a ``metrics`` snapshot, and optionally ``anomalies``)
into a fixed-width terminal frame: tier status and worker liveness,
per-queue rate and utilization sparklines with anomaly flags,
phase-latency bars, and the stream's admission counters.  It touches no
sockets and no global state, so tests drive it with plain dicts.
"""

from __future__ import annotations

import math

from repro.viz.sparkline import bar_row, hbar, liveness_dots, spark

__all__ = ["render_top"]

#: Pipeline order for the phase-latency panel (unknown phases follow).
_PHASE_ORDER = (
    "poll", "subset", "partition", "adopt", "burn-in", "sweeps",
    "m-step", "reweight", "publish", "checkpoint",
)


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    value = float(value)
    if math.isnan(value):
        return "-"
    if math.isinf(value):
        return "∞" if value > 0 else "-∞"
    return f"{value:.{digits}g}"


def _fmt_seconds(value) -> str:
    if value is None or not math.isfinite(float(value)):
        return "    -"
    value = float(value)
    if value < 1e-3:
        return f"{value * 1e6:6.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:6.1f}ms"
    return f"{value:6.2f}s "


def _phase_means(metrics: list[dict]) -> list[tuple[str, float, int]]:
    """Aggregate ``repro_window_phase_seconds`` across label sets (the
    router's partition provenance) into per-phase (mean, count)."""
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for entry in metrics:
        if entry.get("name") != "repro_window_phase_seconds":
            continue
        phase = (entry.get("labels") or {}).get("phase", "?")
        sums[phase] = sums.get(phase, 0.0) + float(entry.get("sum") or 0.0)
        counts[phase] = counts.get(phase, 0) + int(entry.get("count") or 0)
    out = []
    for phase in sorted(sums, key=lambda p: (
        _PHASE_ORDER.index(p) if p in _PHASE_ORDER else len(_PHASE_ORDER), p
    )):
        n = counts[phase]
        out.append((phase, sums[phase] / n if n else float("nan"), n))
    return out


def _metric_total(metrics: list[dict], name: str) -> float | None:
    """Sum a counter/gauge across its label sets; None when absent."""
    found = False
    total = 0.0
    for entry in metrics:
        if entry.get("name") == name and "value" in entry:
            found = True
            value = float(entry["value"])
            if math.isfinite(value):
                total += value
    return total if found else None


def _quantiles(metrics: list[dict], name: str) -> dict:
    """Pooled quantile estimate across label sets (count-weighted p50 is
    not recoverable from per-partition digests; the max over partitions
    is the honest upper summary for an ops console)."""
    out: dict = {}
    for entry in metrics:
        if entry.get("name") != name or "quantiles" not in entry:
            continue
        for key, value in (entry.get("quantiles") or {}).items():
            if value is None:
                continue
            value = float(value)
            if key not in out or value > out[key]:
                out[key] = value
    return out


def render_top(
    health: dict,
    estimates: list[dict],
    report: dict,
    anomalies: list[dict] | None = None,
    width: int = 80,
) -> str:
    """Render one console frame; every input is the matching wire reply.

    ``health`` is a schema-1 record from either a single service or a
    router tier (flat compatibility keys are not consulted);
    ``estimates`` the window-estimate records; ``report`` a metrics
    *snapshot* report; ``anomalies`` the flagged (window, queue) reports.
    """
    metrics = list((report or {}).get("metrics") or [])
    service = (health or {}).get("service") or {}
    stream = (health or {}).get("stream") or {}
    anomalies = list(anomalies or [])
    lines: list[str] = []
    rule = "─" * min(width, 80)

    # -- header: tier vitals -------------------------------------------
    status = str(service.get("status", "?"))
    lines.append(
        f"repro top — {status.upper():<9} "
        f"windows {service.get('windows_published', 0):<5} "
        f"anomalies {service.get('anomalies', 0):<4} "
        f"records {service.get('n_records_seen', 0)}"
    )
    lines.append(
        f"watermark {_fmt(stream.get('watermark'))} / "
        f"horizon {_fmt(service.get('horizon'))}"
        + ("   [sealed]" if stream.get("sealed") else "")
        + (f"   error: {service['error']}" if service.get("error") else "")
    )

    # -- workers / partitions ------------------------------------------
    workers = (health or {}).get("workers")
    if isinstance(workers, dict):
        total = int(workers.get("n_workers", 0))
        alive = int(workers.get("n_alive", 0))
        lines.append(
            f"workers   {liveness_dots(alive, total)} {alive}/{total} alive"
            f"   relaunches {workers.get('n_relaunches', 0)}"
        )
    router = (health or {}).get("router")
    if isinstance(router, dict):
        partitions = (health or {}).get("partitions") or []
        up = sum(
            1 for p in partitions
            if p.get("status") not in ("unreachable", "failed")
        )
        lines.append(
            f"partitions {liveness_dots(up, len(partitions))} "
            f"{up}/{len(partitions)} up   restarts {router.get('n_restarts', 0)}"
            f"   parked {router.get('n_parked', 0)}"
            f"   spooled {router.get('spool_records', 0)}"
        )
    lines.append(rule)

    # -- per-queue rate estimates + utilization ------------------------
    rate_rows = [e.get("rates") for e in estimates]
    done = [r for r in rate_rows if r]
    flagged: dict[int, int] = {}
    for a in anomalies:
        q = int(a.get("queue", -1))
        flagged[q] = flagged.get(q, 0) + 1
    if done:
        n_rates = len(done[0])
        lam = [float(r[0]) if r else float("nan") for r in rate_rows]
        lines.append(
            f"{'arrival λ':<12} {_fmt(done[-1][0]):>8} "
            f"{spark(lam, width=32)}"
        )
        for q in range(1, n_rates):
            mu = [float(r[q]) if r else float("nan") for r in rate_rows]
            util = [
                l / m if math.isfinite(l) and math.isfinite(m) and m > 0
                else float("nan")
                for l, m in zip(lam, mu)
            ]
            last_util = next(
                (u for u in reversed(util) if math.isfinite(u)), float("nan")
            )
            flag = f"  ⚠{flagged[q]}" if flagged.get(q) else ""
            lines.append(
                f"{f'queue {q} µ':<12} {_fmt(done[-1][q]):>8} "
                f"{spark(mu, width=32)}{flag}"
            )
            lines.append(
                f"{'  util ρ':<12} {_fmt(last_util, 3):>8} "
                f"|{hbar(last_util, 20)}| {spark(util, width=18)}"
            )
    else:
        lines.append("no published windows yet")
    lines.append(rule)

    # -- phase latency bars --------------------------------------------
    phases = _phase_means(metrics)
    if phases:
        scale = max((m for _, m, _ in phases if math.isfinite(m)),
                    default=0.0)
        lines.append("phase latency (mean)")
        for phase, mean, count in phases:
            lines.append(
                bar_row(phase, mean, scale, width=24, label_width=11,
                        value_format="{:>9.4g}")
                + f" ×{count}"
            )
        pub = _quantiles(metrics, "repro_service_publish_seconds")
        if pub:
            lines.append(
                "publish latency  "
                + "  ".join(
                    f"{k} {_fmt_seconds(pub[k]).strip()}"
                    for k in ("p50", "p90", "p99") if k in pub
                )
            )
        lines.append(rule)

    # -- stream / kernel counters --------------------------------------
    def _count(name: str) -> str:
        value = _metric_total(metrics, name)
        return "-" if value is None else str(int(value))

    lines.append(
        "ingest  admitted "
        + _count("repro_stream_records_admitted_total")
        + "  dup " + _count("repro_stream_records_duplicate_total")
        + "  late " + _count("repro_stream_records_late_total")
        + "  straggler " + _count("repro_stream_records_straggler_total")
        + "  dropped " + _count("repro_stream_tasks_dropped_total")
    )
    lines.append(
        "kernel  sweeps "
        + _count("repro_kernel_sweeps_total")
        + "  moves " + _count("repro_kernel_moves_total")
        + "  windows ok/skip/fail "
        + _count("repro_windows_processed_total")
        + "/" + _count("repro_windows_skipped_total")
        + "/" + _count("repro_windows_failed_total")
    )
    return "\n".join(line[:width] for line in lines)
