"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A model, network, or experiment was configured inconsistently.

    Examples: a transition matrix whose rows do not sum to one, a queue
    referenced by the FSM that does not exist in the network, or a negative
    service rate.
    """


class InvalidEventSetError(ReproError):
    """An event set violates the deterministic queueing constraints.

    The constraints are those of paper Eq. (1): ``a_e = d_{pi(e)}`` and
    ``d_e = s_e + max(a_e, d_{rho(e)})`` with ``s_e >= 0``, plus the fixed
    arrival order at every queue.
    """


class InfeasibleInitializationError(ReproError):
    """No feasible latent-variable assignment could be constructed.

    Raised when the LP initializer finds the deterministic constraints
    unsatisfiable (which indicates corrupted observations, e.g. an observed
    departure earlier than the same task's observed arrival) or when the
    heuristic initializer cannot satisfy an interval constraint.
    """


class InferenceError(ReproError):
    """An inference procedure failed (e.g. empty support for a Gibbs move)."""


class ObservationError(ReproError):
    """An observation scheme is inconsistent with the event set it observes."""


class IngestError(ReproError):
    """Live measurement ingestion was refused or cannot proceed.

    Raised by :mod:`repro.live` for malformed measurement records,
    conflicting counters, ingestion into a sealed stream, and bounded-queue
    backpressure (the buffer of not-yet-assembled records is full; back off
    and retry).
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid internal state."""


class NotStableError(ReproError):
    """A steady-state queueing formula was asked about an unstable queue.

    Classical M/M/1 and M/M/c formulas require utilization strictly below
    one; this error signals that the requested system has no steady state.
    """
