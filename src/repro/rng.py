"""Random-number-generator plumbing shared across the library.

Every stochastic component in :mod:`repro` accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and normalizes it through
:func:`as_generator`.  This gives deterministic, independently seedable
experiments without any global state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Anything accepted where a random source is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Normalize *random_state* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``, or
        an existing ``Generator`` (returned unchanged so that sampling state
        is shared with the caller).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(random_state))
    return np.random.default_rng(random_state)


def as_seed_sequence(random_state: RandomState = None) -> np.random.SeedSequence:
    """Normalize *random_state* into a :class:`numpy.random.SeedSequence`.

    For a ``Generator`` the underlying bit generator's seed sequence is
    used directly, so deriving child seeds never consumes (or perturbs)
    the generator's sample stream.
    """
    if isinstance(random_state, np.random.SeedSequence):
        return random_state
    if isinstance(random_state, np.random.Generator):
        return random_state.bit_generator.seed_seq
    return np.random.SeedSequence(random_state)


def spawn(random_state: RandomState, n: int) -> list[np.random.Generator]:
    """Create *n* statistically independent child generators.

    Independent streams are required when an experiment runs several
    repetitions (paper: 10 repetitions per network structure) whose results
    must not be correlated through a shared stream.

    Parameters
    ----------
    random_state:
        Seed material for the parent stream.
    n:
        Number of child generators to derive.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(random_state, np.random.Generator):
        # Generators can spawn children directly (NumPy >= 1.25).
        return [np.random.Generator(bg) for bg in random_state.bit_generator.spawn(n)]
    seq = (
        random_state
        if isinstance(random_state, np.random.SeedSequence)
        else np.random.SeedSequence(random_state)
    )
    return [np.random.Generator(np.random.PCG64(child)) for child in seq.spawn(n)]
