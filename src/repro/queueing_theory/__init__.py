"""Classical (steady-state) queueing theory.

The paper positions its posterior-inference approach *against* classical
steady-state analysis ("the steady-state distribution is an exact solution
to an approximate problem").  This package implements that classical
machinery — M/M/1 and M/M/c formulas, Jackson product-form networks,
Little's law — for three purposes:

1. validating the discrete-event simulator against closed forms;
2. providing the steady-state baseline estimator of
   :mod:`repro.baselines.steady_state`;
3. letting examples contrast "what if" steady-state answers with the
   paper's "what happened" posterior answers.
"""

from repro.queueing_theory.jackson import JacksonNetworkAnalysis, analyze_jackson
from repro.queueing_theory.littles_law import littles_law_check
from repro.queueing_theory.mm1 import MM1Metrics, mm1_metrics
from repro.queueing_theory.mmc import MMcMetrics, erlang_c, mmc_metrics, pooling_gain

__all__ = [
    "MM1Metrics",
    "mm1_metrics",
    "MMcMetrics",
    "mmc_metrics",
    "erlang_c",
    "pooling_gain",
    "JacksonNetworkAnalysis",
    "analyze_jackson",
    "littles_law_check",
]
