"""Steady-state formulas for the M/M/1 queue."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotStableError


@dataclass(frozen=True)
class MM1Metrics:
    """Steady-state metrics of an M/M/1 queue.

    Attributes
    ----------
    utilization:
        ``rho = lambda / mu``.
    mean_waiting:
        Mean time in queue (excluding service), ``rho / (mu - lambda)``.
    mean_response:
        Mean sojourn time, ``1 / (mu - lambda)``.
    mean_queue_length:
        Mean number waiting (not in service), ``rho^2 / (1 - rho)``.
    mean_number_in_system:
        ``rho / (1 - rho)``.
    """

    arrival_rate: float
    service_rate: float
    utilization: float
    mean_waiting: float
    mean_response: float
    mean_queue_length: float
    mean_number_in_system: float

    def response_quantile(self, p: float) -> float:
        """Quantile of the (exponential) sojourn-time distribution."""
        if not 0.0 <= p < 1.0:
            raise ValueError(f"quantile level must be in [0, 1), got {p}")
        return float(-np.log1p(-p) / (self.service_rate - self.arrival_rate))

    def prob_n_in_system(self, n: int) -> float:
        """``P(N = n) = (1 - rho) rho^n``."""
        if n < 0:
            raise ValueError(f"n must be nonnegative, got {n}")
        return float((1.0 - self.utilization) * self.utilization**n)


def mm1_metrics(arrival_rate: float, service_rate: float) -> MM1Metrics:
    """Compute M/M/1 steady-state metrics.

    Raises
    ------
    NotStableError
        When ``arrival_rate >= service_rate`` — exactly the regime the
        paper's overloaded tiers occupy, where classical analysis offers no
        steady-state answer but posterior inference still works.
    """
    if arrival_rate <= 0.0 or service_rate <= 0.0:
        raise ValueError("rates must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise NotStableError(
            f"M/M/1 with lambda={arrival_rate}, mu={service_rate} has "
            f"utilization {rho:.3f} >= 1: no steady state exists"
        )
    return MM1Metrics(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        utilization=rho,
        mean_waiting=rho / (service_rate - arrival_rate),
        mean_response=1.0 / (service_rate - arrival_rate),
        mean_queue_length=rho * rho / (1.0 - rho),
        mean_number_in_system=rho / (1.0 - rho),
    )
