"""Steady-state formulas for the M/M/c queue (Erlang-C).

The paper's "tier with k servers" is modeled as k independent M/M/1 queues
behind a random dispatcher, but the classical alternative is a single
M/M/c station; comparing the two quantifies the pooling loss of random
dispatch (an ablation the examples exercise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import NotStableError


def erlang_c(arrival_rate: float, service_rate: float, c: int) -> float:
    """Probability an arrival must wait in an M/M/c queue (Erlang-C formula).

    Computed with a numerically stable recurrence on the Erlang-B blocking
    probability: ``B(0) = 1``, ``B(k) = a B(k-1) / (k + a B(k-1))`` with
    offered load ``a = lambda / mu``; then ``C = B / (1 - rho (1 - B))``.
    """
    if arrival_rate <= 0.0 or service_rate <= 0.0:
        raise ValueError("rates must be positive")
    if c < 1:
        raise ValueError(f"need at least one server, got {c}")
    a = arrival_rate / service_rate
    rho = a / c
    if rho >= 1.0:
        raise NotStableError(
            f"M/M/{c} with offered load {a:.3f} has utilization {rho:.3f} >= 1"
        )
    blocking = 1.0
    for k in range(1, c + 1):
        blocking = a * blocking / (k + a * blocking)
    return blocking / (1.0 - rho * (1.0 - blocking))


@dataclass(frozen=True)
class MMcMetrics:
    """Steady-state metrics of an M/M/c queue."""

    arrival_rate: float
    service_rate: float
    n_servers: int
    utilization: float
    prob_wait: float
    mean_waiting: float
    mean_response: float
    mean_queue_length: float


def mmc_metrics(arrival_rate: float, service_rate: float, c: int) -> MMcMetrics:
    """Compute M/M/c steady-state metrics via Erlang-C."""
    prob_wait = erlang_c(arrival_rate, service_rate, c)
    a = arrival_rate / service_rate
    rho = a / c
    mean_waiting = prob_wait / (c * service_rate - arrival_rate)
    return MMcMetrics(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        n_servers=c,
        utilization=rho,
        prob_wait=prob_wait,
        mean_waiting=mean_waiting,
        mean_response=mean_waiting + 1.0 / service_rate,
        mean_queue_length=arrival_rate * mean_waiting,
    )


def pooling_gain(arrival_rate: float, service_rate: float, c: int) -> float:
    """Ratio of mean waiting under random dispatch vs a pooled M/M/c.

    Random dispatch to c servers makes each an M/M/1 with load
    ``lambda / c``; pooling them into one M/M/c strictly reduces waiting.
    Returns ``W_random / W_pooled`` (>= 1; infinite when the pooled system
    is stable but a single split stream is not, which cannot happen here
    since both share ``rho``).
    """
    per_server = arrival_rate / c
    if per_server >= service_rate:
        raise NotStableError("both configurations are unstable at this load")
    w_random = (per_server / service_rate) / (service_rate - per_server)
    w_pooled = mmc_metrics(arrival_rate, service_rate, c).mean_waiting
    if w_pooled <= 0.0:
        return math.inf
    return w_random / w_pooled
