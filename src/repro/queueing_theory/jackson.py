"""Jackson-network (product-form) steady-state analysis.

An open network of M/M/1 queues with probabilistic routing has a
product-form steady state: each queue behaves as an independent M/M/1 with
arrival rate given by the traffic equations.  For our FSM-routed networks
the traffic equations are solved by the FSM's expected-visit counts
(:meth:`repro.fsm.ProbabilisticFSM.expected_visits`), making this the exact
"what if" counterpart to the paper's "what happened" inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotStableError
from repro.network import QueueingNetwork
from repro.queueing_theory.mm1 import MM1Metrics, mm1_metrics


@dataclass(frozen=True)
class JacksonNetworkAnalysis:
    """Product-form analysis of an FSM-routed network of M/M/1 queues.

    Attributes
    ----------
    arrival_rates:
        Per-queue arrival rate from the traffic equations (index 0 = system
        arrival rate).
    utilizations:
        Per-queue ``rho`` (nan at index 0).
    per_queue:
        :class:`~repro.queueing_theory.mm1.MM1Metrics` per stable queue;
        ``None`` for unstable queues (so a partially overloaded network can
        still be analyzed queue-by-queue).
    mean_response:
        Expected end-to-end response time per task (sum over queues of
        visit rate * sojourn / lambda), ``inf`` if any visited queue is
        unstable.
    """

    network: QueueingNetwork
    arrival_rates: np.ndarray
    utilizations: np.ndarray
    per_queue: tuple[MM1Metrics | None, ...]
    mean_response: float

    @property
    def stable(self) -> bool:
        """Whether every queue has a steady state."""
        return all(m is not None for m in self.per_queue[1:])

    def bottleneck(self) -> int:
        """Index of the queue with the highest utilization."""
        return int(np.nanargmax(self.utilizations))


def analyze_jackson(network: QueueingNetwork) -> JacksonNetworkAnalysis:
    """Solve the traffic equations and per-queue M/M/1 metrics.

    Never raises on overload: unstable queues get ``None`` metrics and the
    network mean response becomes ``inf`` — mirroring how classical theory
    simply has no answer there (paper Section 1's critique).
    """
    lam = network.arrival_rate
    visits = network.fsm.expected_visits()
    arrival_rates = lam * visits
    arrival_rates[0] = lam
    utilizations = np.full(network.n_queues, np.nan)
    per_queue: list[MM1Metrics | None] = [None]
    total_response = 0.0
    stable = True
    for q in range(1, network.n_queues):
        mu = network.service_of(q).mean
        mu = 1.0 / mu  # service rate from mean service time
        rho = arrival_rates[q] / mu if mu > 0 else np.inf
        utilizations[q] = rho
        if arrival_rates[q] <= 0.0:
            per_queue.append(None)
            continue
        try:
            metrics = mm1_metrics(arrival_rates[q], mu)
        except NotStableError:
            per_queue.append(None)
            stable = False
            continue
        per_queue.append(metrics)
        total_response += visits[q] * metrics.mean_response
    return JacksonNetworkAnalysis(
        network=network,
        arrival_rates=arrival_rates,
        utilizations=utilizations,
        per_queue=tuple(per_queue),
        mean_response=total_response if stable else float("inf"),
    )
