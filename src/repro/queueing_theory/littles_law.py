"""Little's law checks on simulated traces.

``L = lambda * W`` holds for any stable queueing system regardless of
distributions — which makes it the ideal distribution-free cross-check
that the discrete-event simulator's bookkeeping (arrival, waiting,
response accounting) is self-consistent.

The two sides are computed from *different* functionals of the trace: the
left side time-integrates the number-in-system over an interior window
(clipping sojourn intervals at the window edges), while the right side
multiplies the window's arrival throughput by the mean sojourn of the jobs
arriving in it.  They agree only up to boundary effects, so a small
relative gap on a long trace is a real, non-circular consistency signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.events import EventSet


@dataclass(frozen=True)
class LittlesLawReport:
    """Result of a Little's-law consistency check for one queue.

    Attributes
    ----------
    l_time_average:
        Time-average number in system over the interior window.
    arrival_rate:
        Arrivals per unit time within the window.
    mean_response:
        Mean sojourn of jobs arriving within the window.
    relative_gap:
        ``|L - lambda W| / L``; should shrink as the trace grows.
    """

    queue: int
    l_time_average: float
    arrival_rate: float
    mean_response: float
    relative_gap: float


def littles_law_check(
    events: EventSet, queue: int, trim: float = 0.1
) -> LittlesLawReport:
    """Check ``L = lambda W`` on the realized trace of one queue.

    Parameters
    ----------
    events:
        The trace to check.
    queue:
        Queue index.
    trim:
        Fraction of the busy horizon trimmed off each end to form the
        interior measurement window (reduces edge effects).
    """
    members = events.queue_order(queue)
    if members.size < 2:
        raise ValueError(f"queue {queue} has too few events for a meaningful check")
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim must lie in [0, 0.5), got {trim}")
    arrivals = events.arrival[members]
    departures = events.departure[members]
    lo = float(arrivals.min())
    hi = float(departures.max())
    window_lo = lo + trim * (hi - lo)
    window_hi = hi - trim * (hi - lo)
    window = window_hi - window_lo
    if window <= 0.0:
        raise ValueError(f"queue {queue} has a degenerate time horizon")
    # Left side: integral of N(t) over the window = clipped sojourn overlap.
    overlap = np.clip(np.minimum(departures, window_hi) - np.maximum(arrivals, window_lo), 0.0, None)
    l_avg = float(overlap.sum()) / window
    # Right side: throughput and mean sojourn of jobs *arriving* in-window.
    inside = (arrivals >= window_lo) & (arrivals <= window_hi)
    n_inside = int(np.count_nonzero(inside))
    if n_inside == 0:
        raise ValueError(f"no arrivals at queue {queue} inside the interior window")
    lam = n_inside / window
    mean_response = float(np.mean(departures[inside] - arrivals[inside]))
    lambda_w = lam * mean_response
    gap = abs(l_avg - lambda_w) / max(l_avg, 1e-300)
    return LittlesLawReport(
        queue=queue,
        l_time_average=l_avg,
        arrival_rate=lam,
        mean_response=mean_response,
        relative_gap=gap,
    )
