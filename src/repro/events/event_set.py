"""Struct-of-arrays storage for a trace of queueing events.

Index conventions
-----------------
* Events are rows ``0 .. n_events - 1`` of parallel arrays.
* ``task[e]`` is the task id, ``seq[e]`` the position within the task
  (0 = the initial event at the reserved arrival queue 0).
* ``pi[e]``/``pi_inv[e]`` are the within-task predecessor/successor event
  indices (-1 when absent); ``rho[e]``/``rho_inv[e]`` the within-queue
  neighbors under the **fixed arrival order** the paper assumes is known
  from event counters.
* ``arrival[e]`` and ``departure[e]`` are clock times.  The identity
  ``arrival[e] == departure[pi[e]]`` is maintained by construction and by
  the mutation API (:meth:`EventSet.set_arrival`).

Service times are *derived*: ``s_e = d_e - max(a_e, d_rho(e))`` (paper
Section 2: "the service time can be computed deterministically from the set
of all arrivals and departures").
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidEventSetError

#: Tolerance used by :meth:`EventSet.validate` for floating-point checks.
DEFAULT_ATOL = 1e-9


class EventSet:
    """A mutable trace of queueing events with predecessor structure.

    Build instances with :meth:`from_arrays` (bulk, e.g. from the simulator)
    or :meth:`from_task_paths` (per-task lists).  The Gibbs sampler mutates
    times in place through :meth:`set_arrival` / :meth:`set_final_departure`,
    which preserve the ``a_e = d_{pi(e)}`` identity; the arrival *order* at
    every queue is frozen at construction time, per the paper's
    event-counter assumption.
    """

    __slots__ = (
        "task",
        "seq",
        "queue",
        "state",
        "arrival",
        "departure",
        "pi",
        "pi_inv",
        "rho",
        "rho_inv",
        "n_queues",
        "structure_version",
        "_queue_order",
        "_task_events",
    )

    def __init__(
        self,
        task: np.ndarray,
        seq: np.ndarray,
        queue: np.ndarray,
        arrival: np.ndarray,
        departure: np.ndarray,
        n_queues: int,
        state: np.ndarray | None = None,
        queue_order: list[np.ndarray] | None = None,
    ) -> None:
        self.task = np.asarray(task, dtype=np.int64)
        self.seq = np.asarray(seq, dtype=np.int64)
        self.queue = np.asarray(queue, dtype=np.int64)
        self.arrival = np.asarray(arrival, dtype=float).copy()
        self.departure = np.asarray(departure, dtype=float).copy()
        self.state = (
            np.asarray(state, dtype=np.int64)
            if state is not None
            else np.full(self.task.shape, -1, dtype=np.int64)
        )
        n = self.task.size
        for name, arr in (
            ("seq", self.seq),
            ("queue", self.queue),
            ("arrival", self.arrival),
            ("departure", self.departure),
            ("state", self.state),
        ):
            if arr.shape != (n,):
                raise InvalidEventSetError(
                    f"array {name!r} has shape {arr.shape}, expected ({n},)"
                )
        if n == 0:
            raise InvalidEventSetError("an event set must contain at least one event")
        if n_queues < 2:
            raise InvalidEventSetError("n_queues must include queue 0 plus real queues")
        if self.queue.min() < 0 or self.queue.max() >= n_queues:
            raise InvalidEventSetError(
                f"queue indices must lie in [0, {n_queues - 1}]"
            )
        self.n_queues = int(n_queues)
        #: Incremented on every structural mutation (queue reassignment).
        #: Consumers that cache neighbor indices (the Gibbs sampler's
        #: Markov-blanket cache) compare this against the version they
        #: built from and rebuild when it moved.
        self.structure_version = 0
        self._build_task_pointers()
        self._build_queue_order(queue_order)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build_task_pointers(self) -> None:
        """Derive pi/pi_inv and per-task event lists from (task, seq)."""
        n = self.task.size
        order = np.lexsort((self.seq, self.task))
        self.pi = np.full(n, -1, dtype=np.int64)
        self.pi_inv = np.full(n, -1, dtype=np.int64)
        self._task_events: dict[int, np.ndarray] = {}
        start = 0
        sorted_tasks = self.task[order]
        boundaries = np.flatnonzero(np.diff(sorted_tasks)) + 1
        for stop in [*boundaries.tolist(), n]:
            chunk = order[start:stop]
            task_id = int(self.task[chunk[0]])
            seqs = self.seq[chunk]
            if seqs[0] != 0 or not np.array_equal(seqs, np.arange(chunk.size)):
                raise InvalidEventSetError(
                    f"task {task_id} must have contiguous seq 0..{chunk.size - 1}, got {seqs}"
                )
            if self.queue[chunk[0]] != 0:
                raise InvalidEventSetError(
                    f"task {task_id}: event with seq 0 must be the initial event at queue 0"
                )
            if np.any(self.queue[chunk[1:]] == 0):
                raise InvalidEventSetError(
                    f"task {task_id}: only the seq-0 event may use queue 0"
                )
            self.pi[chunk[1:]] = chunk[:-1]
            self.pi_inv[chunk[:-1]] = chunk[1:]
            self._task_events[task_id] = chunk
            start = stop

    def _build_queue_order(self, queue_order: list[np.ndarray] | None) -> None:
        """Freeze the per-queue arrival order and derive rho/rho_inv."""
        n = self.task.size
        if queue_order is None:
            queue_order = []
            for q in range(self.n_queues):
                members = np.flatnonzero(self.queue == q)
                # Arrival order with deterministic tie-breaking: for queue 0
                # all arrivals are 0, so order by departure (= system entry).
                keys = np.lexsort(
                    (self.seq[members], self.task[members],
                     self.departure[members], self.arrival[members])
                )
                queue_order.append(members[keys])
        else:
            if len(queue_order) != self.n_queues:
                raise InvalidEventSetError(
                    f"queue_order must have {self.n_queues} entries, got {len(queue_order)}"
                )
            queue_order = [np.asarray(o, dtype=np.int64).copy() for o in queue_order]
            seen = np.concatenate([o for o in queue_order if o.size]) if n else np.empty(0)
            if seen.size != n or np.unique(seen).size != n:
                raise InvalidEventSetError("queue_order must partition all events")
            for q, members in enumerate(queue_order):
                if np.any(self.queue[members] != q):
                    raise InvalidEventSetError(
                        f"queue_order[{q}] contains events from other queues"
                    )
        self._queue_order = queue_order
        self.rho = np.full(n, -1, dtype=np.int64)
        self.rho_inv = np.full(n, -1, dtype=np.int64)
        for members in queue_order:
            if members.size >= 2:
                self.rho[members[1:]] = members[:-1]
                self.rho_inv[members[:-1]] = members[1:]

    @classmethod
    def from_arrays(
        cls,
        task: Sequence[int],
        seq: Sequence[int],
        queue: Sequence[int],
        arrival: Sequence[float],
        departure: Sequence[float],
        n_queues: int,
        state: Sequence[int] | None = None,
    ) -> "EventSet":
        """Build from parallel columns (see class docstring for conventions)."""
        return cls(
            task=np.asarray(task),
            seq=np.asarray(seq),
            queue=np.asarray(queue),
            arrival=np.asarray(arrival),
            departure=np.asarray(departure),
            n_queues=n_queues,
            state=np.asarray(state) if state is not None else None,
        )

    @classmethod
    def from_task_paths(
        cls,
        entries: Sequence[float],
        paths: Sequence[Sequence[int]],
        arrivals: Sequence[Sequence[float]],
        departures: Sequence[Sequence[float]],
        n_queues: int,
        states: Sequence[Sequence[int]] | None = None,
    ) -> "EventSet":
        """Build from per-task records.

        Parameters
        ----------
        entries:
            System entry time of each task (departure of its initial event).
        paths:
            Queue index of each visit, per task.
        arrivals / departures:
            Clock times of each visit, per task; ``arrivals[k][0]`` must
            equal ``entries[k]`` and consecutive visits must chain
            (``arrivals[k][i] == departures[k][i-1]``).
        """
        task_col: list[int] = []
        seq_col: list[int] = []
        queue_col: list[int] = []
        arr_col: list[float] = []
        dep_col: list[float] = []
        state_col: list[int] = []
        for k, entry in enumerate(entries):
            path = list(paths[k])
            arr = list(arrivals[k])
            dep = list(departures[k])
            if not len(path) == len(arr) == len(dep):
                raise InvalidEventSetError(
                    f"task {k}: path/arrivals/departures lengths differ"
                )
            st = list(states[k]) if states is not None else [-1] * len(path)
            # Initial event: queue 0, arrives at clock 0, departs at entry.
            task_col.append(k)
            seq_col.append(0)
            queue_col.append(0)
            arr_col.append(0.0)
            dep_col.append(float(entry))
            state_col.append(-1)
            for i, q in enumerate(path):
                task_col.append(k)
                seq_col.append(i + 1)
                queue_col.append(int(q))
                arr_col.append(float(arr[i]))
                dep_col.append(float(dep[i]))
                state_col.append(int(st[i]))
        return cls.from_arrays(
            task=task_col,
            seq=seq_col,
            queue=queue_col,
            arrival=arr_col,
            departure=dep_col,
            n_queues=n_queues,
            state=state_col,
        )

    # ------------------------------------------------------------------
    # Basic shape.
    # ------------------------------------------------------------------

    @property
    def n_events(self) -> int:
        """Total number of events, including initial events."""
        return self.task.size

    @property
    def n_tasks(self) -> int:
        """Number of distinct tasks."""
        return len(self._task_events)

    @property
    def task_ids(self) -> list[int]:
        """Sorted task identifiers."""
        return sorted(self._task_events)

    def events_of_task(self, task_id: int) -> np.ndarray:
        """Event indices of a task in within-task (seq) order."""
        try:
            return self._task_events[int(task_id)]
        except KeyError:
            raise InvalidEventSetError(f"unknown task id {task_id}") from None

    def queue_order(self, q: int) -> np.ndarray:
        """Event indices at queue *q* in the frozen arrival order."""
        return self._queue_order[q]

    def queue_positions(self) -> np.ndarray:
        """Position of every event inside its queue's frozen arrival order.

        This is the event-*counter* value the paper assumes instrumented
        queues expose: ``queue_positions()[e]`` is how many events arrived
        at ``queue[e]`` before *e* did.  Live ingestion
        (:mod:`repro.live`) ships these counters with every measurement
        record so a receiver can rebuild the frozen order without seeing
        any censored time.
        """
        pos = np.empty(self.n_events, dtype=np.int64)
        for members in self._queue_order:
            pos[members] = np.arange(members.size)
        return pos

    def is_initial(self, e: int) -> bool:
        """Whether event *e* is a task's initial (system-entry) event."""
        return bool(self.seq[e] == 0)

    def is_last_of_task(self, e: int) -> bool:
        """Whether event *e* is the last event of its task."""
        return bool(self.pi_inv[e] == -1)

    # ------------------------------------------------------------------
    # Derived times.
    # ------------------------------------------------------------------

    def begin_times(self) -> np.ndarray:
        """Service start ``max(a_e, d_rho(e))`` for every event."""
        dep_rho = np.where(self.rho >= 0, self.departure[np.maximum(self.rho, 0)], -np.inf)
        return np.maximum(self.arrival, dep_rho)

    def service_times(self) -> np.ndarray:
        """Service time ``s_e = d_e - max(a_e, d_rho(e))`` for every event."""
        return self.departure - self.begin_times()

    def waiting_times(self) -> np.ndarray:
        """Waiting (queueing) time ``w_e = max(a_e, d_rho(e)) - a_e``."""
        return self.begin_times() - self.arrival

    def response_times(self) -> np.ndarray:
        """Per-event response ``r_e = s_e + w_e = d_e - a_e``."""
        return self.departure - self.arrival

    def service_time_of(self, e: int) -> float:
        """Service time of a single event (scalar fast path)."""
        rho = self.rho[e]
        begin = self.arrival[e] if rho < 0 else max(self.arrival[e], self.departure[rho])
        return float(self.departure[e] - begin)

    def task_response_times(self) -> dict[int, float]:
        """End-to-end response of each task: final departure minus entry."""
        out = {}
        for task_id, events in self._task_events.items():
            out[task_id] = float(self.departure[events[-1]] - self.departure[events[0]])
        return out

    def per_queue_mean(self, values: np.ndarray, include_initial: bool = True) -> np.ndarray:
        """Mean of a per-event array grouped by queue (nan for empty queues)."""
        out = np.full(self.n_queues, np.nan)
        for q in range(0 if include_initial else 1, self.n_queues):
            members = self._queue_order[q]
            if members.size:
                out[q] = float(values[members].mean())
        return out

    def mean_service_by_queue(self) -> np.ndarray:
        """Mean realized service time per queue (index 0 = mean interarrival)."""
        return self.per_queue_mean(self.service_times())

    def mean_waiting_by_queue(self) -> np.ndarray:
        """Mean realized waiting time per queue."""
        return self.per_queue_mean(self.waiting_times())

    def events_per_queue(self) -> np.ndarray:
        """Number of events processed by each queue."""
        return np.array([o.size for o in self._queue_order], dtype=np.int64)

    # ------------------------------------------------------------------
    # Mutation (Gibbs moves).
    # ------------------------------------------------------------------

    def set_arrival(self, e: int, t: float) -> None:
        """Move event *e*'s arrival to *t*, keeping ``a_e = d_{pi(e)}``.

        Only non-initial events have movable arrivals (initial events arrive
        at clock 0 by convention).  No feasibility check is performed here —
        the Gibbs sampler guarantees the new value lies inside the
        constraint interval; use :meth:`validate` in tests.
        """
        p = self.pi[e]
        if p < 0:
            raise InvalidEventSetError(
                f"event {e} is an initial event; its arrival is pinned at 0"
            )
        self.arrival[e] = t
        self.departure[p] = t

    def set_final_departure(self, e: int, t: float) -> None:
        """Set the departure of a task's last event to *t*."""
        if self.pi_inv[e] != -1:
            raise InvalidEventSetError(
                f"event {e} is not the last event of its task; "
                "its departure equals the successor's arrival — move that instead"
            )
        self.departure[e] = t

    def set_arrivals(self, events: np.ndarray, times: np.ndarray) -> None:
        """Vectorized :meth:`set_arrival` over distinct non-initial events.

        Used by the array sweep kernel to apply one conflict-free batch of
        arrival moves in two scatter writes while preserving the
        ``a_e = d_{pi(e)}`` identity.
        """
        events = np.asarray(events, dtype=np.int64)
        preds = self.pi[events]
        if np.any(preds < 0):
            bad = events[preds < 0][:5]
            raise InvalidEventSetError(
                f"initial events have pinned arrivals (events {bad} ...)"
            )
        self.arrival[events] = times
        self.departure[preds] = times

    def set_final_departures(self, events: np.ndarray, times: np.ndarray) -> None:
        """Vectorized :meth:`set_final_departure` over task-final events."""
        events = np.asarray(events, dtype=np.int64)
        if np.any(self.pi_inv[events] != -1):
            bad = events[self.pi_inv[events] != -1][:5]
            raise InvalidEventSetError(
                f"events {bad} ... are not the last of their tasks; their "
                "departures equal successor arrivals — move those instead"
            )
        self.departure[events] = times

    def reassign_queue(self, e: int, q_new: int) -> None:
        """Move event *e* to a different queue (unknown-path resampling).

        Supports the paper's outer Metropolis-Hastings step over FSM paths:
        when the routing of an unobserved task is itself unknown (e.g. the
        load balancer's server choice was not logged), a path move changes
        ``q_e``.  The event is removed from its current queue's order and
        inserted into the new queue's order *by its current arrival time*,
        updating the ``rho``/``rho_inv`` pointers of all four neighbors.

        The caller is responsible for accepting/rejecting the move (the
        times are left untouched, so the new configuration may have negative
        service times — exactly what the MH acceptance test checks).
        """
        q_old = int(self.queue[e])
        q_new = int(q_new)
        if not 1 <= q_new < self.n_queues:
            raise InvalidEventSetError(
                f"cannot reassign to queue {q_new}; real queues are 1..{self.n_queues - 1}"
            )
        if self.seq[e] == 0:
            raise InvalidEventSetError("initial events are pinned to queue 0")
        if q_new == q_old:
            return
        # Unlink from the old queue.
        order_old = self._queue_order[q_old]
        pos = int(np.flatnonzero(order_old == e)[0])
        prev_old = self.rho[e]
        next_old = self.rho_inv[e]
        if prev_old >= 0:
            self.rho_inv[prev_old] = next_old
        if next_old >= 0:
            self.rho[next_old] = prev_old
        self._queue_order[q_old] = np.delete(order_old, pos)
        # Link into the new queue, ordered by current arrival time.
        order_new = self._queue_order[q_new]
        pos = int(np.searchsorted(self.arrival[order_new], self.arrival[e], side="right"))
        prev_new = int(order_new[pos - 1]) if pos > 0 else -1
        next_new = int(order_new[pos]) if pos < order_new.size else -1
        self.rho[e] = prev_new
        self.rho_inv[e] = next_new
        if prev_new >= 0:
            self.rho_inv[prev_new] = e
        if next_new >= 0:
            self.rho[next_new] = e
        self._queue_order[q_new] = np.insert(order_new, pos, e)
        self.queue[e] = q_new
        self.structure_version += 1

    def copy(self) -> "EventSet":
        """Deep copy sharing no mutable state with the original.

        Arrays that no mutation path ever touches (task/seq/pi structure)
        are shared; everything :meth:`set_arrival`,
        :meth:`set_final_departure`, or :meth:`reassign_queue` can modify
        is copied.
        """
        new = EventSet.__new__(EventSet)
        new.task = self.task
        new.seq = self.seq
        new.queue = self.queue.copy()
        new.state = self.state.copy()
        new.arrival = self.arrival.copy()
        new.departure = self.departure.copy()
        new.pi = self.pi
        new.pi_inv = self.pi_inv
        new.rho = self.rho.copy()
        new.rho_inv = self.rho_inv.copy()
        new.n_queues = self.n_queues
        new.structure_version = self.structure_version
        new._queue_order = [o.copy() for o in self._queue_order]
        new._task_events = self._task_events
        return new

    # ------------------------------------------------------------------
    # Validation and scoring.
    # ------------------------------------------------------------------

    def validate(self, atol: float = DEFAULT_ATOL) -> None:
        """Check every deterministic constraint; raise on the first failure.

        Verifies (1) initial-event conventions, (2) the ``a_e = d_{pi(e)}``
        identity, (3) nonnegative service times, (4) that arrivals and
        departures at every queue respect the frozen FIFO order.
        """
        init = self.seq == 0
        if np.any(self.arrival[init] != 0.0):
            raise InvalidEventSetError("initial events must arrive at clock 0")
        if np.any(self.departure[init] < -atol):
            raise InvalidEventSetError("system entry times must be nonnegative")
        non_init = ~init
        pis = self.pi[non_init]
        if np.any(np.abs(self.arrival[non_init] - self.departure[pis]) > atol):
            bad = np.flatnonzero(
                np.abs(self.arrival[non_init] - self.departure[pis]) > atol
            )
            raise InvalidEventSetError(
                f"a_e != d_pi(e) for events {np.flatnonzero(non_init)[bad][:5]} ..."
            )
        services = self.service_times()
        if np.any(services < -atol):
            bad = np.flatnonzero(services < -atol)
            raise InvalidEventSetError(
                f"negative service times at events {bad[:5]} "
                f"(min {services.min():.3e})"
            )
        for q, members in enumerate(self._queue_order):
            if members.size < 2:
                continue
            arr = self.arrival[members]
            if np.any(np.diff(arr) < -atol):
                raise InvalidEventSetError(
                    f"arrival order violated at queue {q}"
                )
            dep = self.departure[members]
            if np.any(np.diff(dep) < -atol):
                raise InvalidEventSetError(
                    f"FIFO departure order violated at queue {q}"
                )

    def is_valid(self, atol: float = DEFAULT_ATOL) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(atol)
        except InvalidEventSetError:
            return False
        return True

    def log_joint(self, rates: Sequence[float]) -> float:
        """Log of the joint density Eq. (1) at the current times.

        Parameters
        ----------
        rates:
            Exponential rate per queue; index 0 is the arrival rate
            ``lambda`` (interarrivals are queue 0's services, per the
            initial-queue convention).

        Notes
        -----
        The FSM path probabilities ``p(q|sigma) p(sigma|sigma')`` are
        constant given the paper's known-path assumption and are omitted;
        include them via ``ProbabilisticFSM.path_log_prob`` if comparing
        across routings.  Returns ``-inf`` for infeasible configurations.
        """
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self.n_queues,):
            raise InvalidEventSetError(
                f"expected {self.n_queues} rates, got shape {rates.shape}"
            )
        services = self.service_times()
        if np.any(services < 0.0):
            return -np.inf
        mu = rates[self.queue]
        return float(np.sum(np.log(mu) - mu * services))

    def total_service_by_queue(self) -> np.ndarray:
        """Sum of service times per queue — the M-step sufficient statistic."""
        services = self.service_times()
        out = np.zeros(self.n_queues)
        np.add.at(out, self.queue, services)
        return out

    def __repr__(self) -> str:
        return (
            f"EventSet(n_events={self.n_events}, n_tasks={self.n_tasks}, "
            f"n_queues={self.n_queues})"
        )
