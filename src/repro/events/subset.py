"""Extracting task subsets from an event set (windowed inference support).

Windowed/online estimation re-runs inference on the tasks inside a time
window.  This module restricts an event set (possibly censored, with nan
times) to a task subset while preserving the frozen per-queue arrival
order — the information that survives censoring.

Note the approximation inherent in windowing: dropping out-of-window
tasks removes their events from the within-queue predecessor chains, so
waiting caused by cross-window neighbors is attributed differently than
in the full trace.  This is the standard trade-off of windowed analysis;
edge effects shrink as the window grows.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import InvalidEventSetError
from repro.events.event_set import EventSet
from repro.observation.observed import ObservedTrace


def subset_tasks(events: EventSet, task_ids: Iterable[int]) -> tuple[EventSet, np.ndarray]:
    """Restrict *events* to the given tasks.

    Returns
    -------
    (subset, kept)
        *subset* is a new event set containing exactly the selected tasks
        (original task ids preserved), with the per-queue order equal to
        the original order restricted to kept events.  *kept* maps subset
        row -> original event index.
    """
    wanted = sorted(set(int(t) for t in task_ids))
    if not wanted:
        raise InvalidEventSetError("cannot build an empty task subset")
    rows: list[np.ndarray] = []
    for task_id in wanted:
        rows.append(events.events_of_task(task_id))
    kept = np.concatenate(rows)
    kept.sort()
    index_of = {int(e): i for i, e in enumerate(kept)}
    queue_order = []
    for q in range(events.n_queues):
        original = events.queue_order(q)
        queue_order.append(
            np.array([index_of[int(e)] for e in original if int(e) in index_of],
                     dtype=np.int64)
        )
    subset = EventSet(
        task=events.task[kept],
        seq=events.seq[kept],
        queue=events.queue[kept],
        arrival=events.arrival[kept],
        departure=events.departure[kept],
        n_queues=events.n_queues,
        state=events.state[kept],
        queue_order=queue_order,
    )
    return subset, kept


def subset_trace(trace: ObservedTrace, task_ids: Iterable[int]) -> ObservedTrace:
    """Restrict an observed trace to the given tasks."""
    skeleton, kept = subset_tasks(trace.skeleton, task_ids)
    return ObservedTrace(
        skeleton=skeleton,
        arrival_observed=trace.arrival_observed[kept],
        departure_observed=trace.departure_observed[kept],
    )
