"""Extracting and recombining task subsets of an event set.

Windowed/online estimation re-runs inference on the tasks inside a time
window, and the sharded sweep engine (:mod:`repro.inference.shard`)
partitions a large trace into per-shard sub-traces.  This module restricts
an event set (possibly censored, with nan times) to a task subset while
preserving the frozen per-queue arrival order — the information that
survives censoring — and provides the inverse operation,
:func:`merge_task_subsets`, which stitches the subsets of a disjoint task
partition back into the original event set.

Note the approximation inherent in windowing: dropping out-of-window
tasks removes their events from the within-queue predecessor chains, so
waiting caused by cross-window neighbors is attributed differently than
in the full trace.  This is the standard trade-off of windowed analysis;
edge effects shrink as the window grows.  Sharded inference avoids this
approximation entirely by keeping cross-shard neighbor events around as
frozen boundary state.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidEventSetError
from repro.events.event_set import EventSet
from repro.observation.observed import ObservedTrace


def _kept_rows(events: EventSet, task_ids: Iterable[int]) -> np.ndarray:
    """Sorted original event rows of the selected tasks."""
    wanted = sorted(set(int(t) for t in task_ids))
    if not wanted:
        raise InvalidEventSetError("cannot build an empty task subset")
    rows = []
    missing = []
    for t in wanted:
        try:
            rows.append(events.events_of_task(t))
        except InvalidEventSetError:
            missing.append(t)
    if missing:
        raise InvalidEventSetError(
            f"task ids {missing} are not in this event set; if the set is "
            "a stream's retained tail, they were compacted past the "
            "retention horizon"
        )
    kept = np.concatenate(rows)
    kept.sort()
    return kept


def _build_subset(
    events: EventSet, kept: np.ndarray, queue_order: list[np.ndarray]
) -> EventSet:
    """The shared construction tail: restrict every column to *kept*."""
    return EventSet(
        task=events.task[kept],
        seq=events.seq[kept],
        queue=events.queue[kept],
        arrival=events.arrival[kept],
        departure=events.departure[kept],
        n_queues=events.n_queues,
        state=events.state[kept],
        queue_order=queue_order,
    )


def subset_tasks(events: EventSet, task_ids: Iterable[int]) -> tuple[EventSet, np.ndarray]:
    """Restrict *events* to the given tasks.

    Returns
    -------
    (subset, kept)
        *subset* is a new event set containing exactly the selected tasks
        (original task ids preserved), with the per-queue order equal to
        the original order restricted to kept events.  *kept* maps subset
        row -> original event index.
    """
    kept = _kept_rows(events, task_ids)
    index_of = {int(e): i for i, e in enumerate(kept)}
    queue_order = []
    for q in range(events.n_queues):
        original = events.queue_order(q)
        queue_order.append(
            np.array([index_of[int(e)] for e in original if int(e) in index_of],
                     dtype=np.int64)
        )
    return _build_subset(events, kept, queue_order), kept


class SubsetIndex:
    """Precomputed positions for *repeated* task-subsetting of one event set.

    :func:`subset_tasks` walks every queue's full frozen order per call —
    an O(total events) cost that windowed and streaming estimation would
    otherwise pay again for every window, even though consecutive windows
    differ only by the tasks that arrived and aged out at the edges.
    This index extracts each event's position inside its queue's order
    once; a subset's restricted orders are then recovered by sorting only
    the *kept* events by their cached positions, making every window
    O(window), independent of the trace length behind it.

    The output is bitwise identical to :func:`subset_tasks`
    (``tests/events/test_subset.py`` pins this), so the two paths are
    interchangeable.
    """

    def __init__(self, events: EventSet) -> None:
        #: The event set this index was built over (identity matters:
        #: positions are meaningless against any other set).
        self.events = events
        self._structure_version = events.structure_version
        self._pos_in_queue = np.empty(events.n_events, dtype=np.int64)
        for q in range(events.n_queues):
            order = events.queue_order(q)
            self._pos_in_queue[order] = np.arange(order.size)

    def subset_tasks(self, task_ids: Iterable[int]) -> tuple[EventSet, np.ndarray]:
        """:func:`subset_tasks` against the indexed event set, in O(subset)."""
        events = self.events
        if events.structure_version != self._structure_version:
            raise InvalidEventSetError(
                "the indexed event set was structurally mutated (queue "
                "reassignment) after this SubsetIndex was built; rebuild "
                "the index — its cached queue positions are stale"
            )
        kept = _kept_rows(events, task_ids)
        kept_queue = events.queue[kept]
        queue_order = []
        for q in range(events.n_queues):
            members = np.flatnonzero(kept_queue == q)
            members = members[
                np.argsort(self._pos_in_queue[kept[members]], kind="stable")
            ]
            queue_order.append(members.astype(np.int64))
        return _build_subset(events, kept, queue_order), kept


def subset_trace(
    trace: ObservedTrace,
    task_ids: Iterable[int],
    index: SubsetIndex | None = None,
) -> ObservedTrace:
    """Restrict an observed trace to the given tasks.

    With *index* (a :class:`SubsetIndex` over ``trace.skeleton``) the
    restriction runs in O(subset) instead of O(trace) — the windowed and
    streaming estimators' age-out/arrival hot path; results are bitwise
    identical either way.
    """
    if index is not None:
        if index.events is not trace.skeleton:
            raise InvalidEventSetError(
                "the SubsetIndex was built over a different event set than "
                "this trace's skeleton; its kept-row indices would silently "
                "mis-slice the observation masks"
            )
        skeleton, kept = index.subset_tasks(task_ids)
    else:
        skeleton, kept = subset_tasks(trace.skeleton, task_ids)
    return ObservedTrace(
        skeleton=skeleton,
        arrival_observed=trace.arrival_observed[kept],
        departure_observed=trace.departure_observed[kept],
    )


def merge_task_subsets(
    parts: Sequence[tuple[EventSet, np.ndarray]],
) -> EventSet:
    """Recombine the subsets of a disjoint task partition (inverse of
    :func:`subset_tasks`).

    Parameters
    ----------
    parts:
        ``(subset, kept)`` pairs as returned by :func:`subset_tasks`, one
        per block of a partition of the original tasks.  The ``kept``
        maps must jointly cover ``0 .. n_events - 1`` exactly once.

    Returns
    -------
    EventSet
        An event set equal to the original: columns are scattered back
        through the ``kept`` maps and each queue's order is rebuilt by a
        k-way merge of the per-part orders under the same
        ``(arrival, departure, task, seq)`` sort key the constructor
        uses.  The merge reproduces the original order exactly whenever
        sort keys are unique across parts (always true for simulated
        traces, whose clock times are distinct); exact cross-part ties
        fall back to the constructor's deterministic tie-breaking.

    Raises
    ------
    InvalidEventSetError
        If the kept maps overlap or leave gaps (not a partition), or if
        any time is nan: a censored skeleton's *frozen* queue orders
        cannot be reconstructed by sorting time values, so merging is
        only defined for complete event sets (merge the initialized or
        ground-truth state, not the censored view).
    """
    parts = list(parts)
    if not parts:
        raise InvalidEventSetError("cannot merge an empty list of subsets")
    kept_all = np.concatenate([np.asarray(kept, dtype=np.int64) for _, kept in parts])
    n = kept_all.size
    if np.unique(kept_all).size != n or kept_all.min() != 0 or kept_all.max() != n - 1:
        raise InvalidEventSetError(
            "kept maps must partition the original events exactly once"
        )
    n_queues = parts[0][0].n_queues
    if any(subset.n_queues != n_queues for subset, _ in parts):
        raise InvalidEventSetError("subsets disagree on n_queues")
    task = np.empty(n, dtype=np.int64)
    seq = np.empty(n, dtype=np.int64)
    queue = np.empty(n, dtype=np.int64)
    arrival = np.empty(n, dtype=float)
    departure = np.empty(n, dtype=float)
    state = np.empty(n, dtype=np.int64)
    for subset, kept in parts:
        kept = np.asarray(kept, dtype=np.int64)
        task[kept] = subset.task
        seq[kept] = subset.seq
        queue[kept] = subset.queue
        arrival[kept] = subset.arrival
        departure[kept] = subset.departure
        state[kept] = subset.state
    if np.any(np.isnan(arrival)) or np.any(np.isnan(departure)):
        raise InvalidEventSetError(
            "cannot merge censored subsets: nan times make the frozen "
            "queue orders unrecoverable by sorting — merge complete "
            "(initialized or ground-truth) event sets only"
        )
    queue_order: list[np.ndarray] = []
    for q in range(n_queues):
        streams = [
            np.asarray(kept, dtype=np.int64)[subset.queue_order(q)]
            for subset, kept in parts
        ]
        queue_order.append(_merge_orders(streams, arrival, departure, task, seq))
    return EventSet(
        task=task,
        seq=seq,
        queue=queue,
        arrival=arrival,
        departure=departure,
        n_queues=n_queues,
        state=state,
        queue_order=queue_order,
    )


def _merge_orders(
    streams: list[np.ndarray],
    arrival: np.ndarray,
    departure: np.ndarray,
    task: np.ndarray,
    seq: np.ndarray,
) -> np.ndarray:
    """K-way merge of already-ordered event streams by the constructor's
    ``(arrival, departure, task, seq)`` lexicographic key."""
    populated = [s for s in streams if s.size]
    if not populated:  # a queue no kept task ever visited
        return np.empty(0, dtype=np.int64)
    merged = np.concatenate(populated)
    keys = np.lexsort((seq[merged], task[merged], departure[merged], arrival[merged]))
    return merged[keys].astype(np.int64)
