"""Event-graph data structures (paper Section 2).

An **event** is one queue visit: a task arrives at a queue, waits, receives
service, departs.  The paper represents a whole trace as a set of events
``e = (k_e, sigma_e, q_e, a_e, d_e)`` wired together by two predecessor
pointers — the within-queue predecessor ``rho(e)`` and the within-task
predecessor ``pi(e)`` — plus the deterministic FIFO constraints

    a_e = d_{pi(e)}                and          d_e = s_e + max(a_e, d_{rho(e)}).

:class:`~repro.events.event_set.EventSet` stores a trace in
struct-of-arrays form (NumPy arrays for times, integer arrays for
pointers), exposing exactly the neighborhood lookups the Gibbs sampler
needs in O(1) and whole-trace quantities (service, waiting, response times,
joint density of Eq. 1) as vectorized reductions.
"""

from repro.events.event_set import EventSet
from repro.events.subset import (
    SubsetIndex,
    merge_task_subsets,
    subset_tasks,
    subset_trace,
)
from repro.events.serialization import (
    event_set_from_records,
    event_set_to_records,
    load_jsonl,
    measurement_record,
    save_jsonl,
    validate_measurement_record,
)

__all__ = [
    "EventSet",
    "SubsetIndex",
    "merge_task_subsets",
    "subset_tasks",
    "subset_trace",
    "event_set_to_records",
    "event_set_from_records",
    "save_jsonl",
    "load_jsonl",
    "measurement_record",
    "validate_measurement_record",
]
