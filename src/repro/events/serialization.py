"""Serialization of event sets to plain records and JSONL files.

Traces are exchanged as one flat record per event — the natural shape for
log shipping from an instrumented system — and reassembled into an
:class:`~repro.events.event_set.EventSet` with pointers rebuilt from the
``(task, seq)`` keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import InvalidEventSetError
from repro.events.event_set import EventSet

#: Fields serialized per event, in column order.
RECORD_FIELDS = ("task", "seq", "queue", "state", "arrival", "departure")


def event_set_to_records(events: EventSet) -> list[dict]:
    """Flatten an event set into one dict per event (sorted by task, seq)."""
    records = []
    for task_id in events.task_ids:
        for e in events.events_of_task(task_id):
            records.append(
                {
                    "task": int(events.task[e]),
                    "seq": int(events.seq[e]),
                    "queue": int(events.queue[e]),
                    "state": int(events.state[e]),
                    "arrival": float(events.arrival[e]),
                    "departure": float(events.departure[e]),
                }
            )
    return records


def event_set_from_records(records: Iterable[dict], n_queues: int) -> EventSet:
    """Rebuild an event set from per-event records.

    Records may arrive in any order; pointers are reconstructed from the
    ``(task, seq)`` keys and the arrival order at each queue from the times.
    """
    records = list(records)
    if not records:
        raise InvalidEventSetError("no records to build an event set from")
    missing = [f for f in RECORD_FIELDS if f not in records[0] and f != "state"]
    if missing:
        raise InvalidEventSetError(f"records missing fields: {missing}")
    return EventSet.from_arrays(
        task=[r["task"] for r in records],
        seq=[r["seq"] for r in records],
        queue=[r["queue"] for r in records],
        arrival=[r["arrival"] for r in records],
        departure=[r["departure"] for r in records],
        state=[r.get("state", -1) for r in records],
        n_queues=n_queues,
    )


def save_jsonl(events: EventSet, path: str | Path) -> None:
    """Write an event set as JSON-lines with a leading header record."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {"kind": "repro-event-set", "version": 1, "n_queues": events.n_queues}
        fh.write(json.dumps(header) + "\n")
        for record in event_set_to_records(events):
            fh.write(json.dumps(record) + "\n")


def load_jsonl(path: str | Path) -> EventSet:
    """Read an event set written by :func:`save_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise InvalidEventSetError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("kind") != "repro-event-set":
            raise InvalidEventSetError(f"{path} is not a repro event-set file")
        records = [json.loads(line) for line in fh if line.strip()]
    return event_set_from_records(records, n_queues=int(header["n_queues"]))
