"""Serialization of event sets to plain records and JSONL files.

Traces are exchanged as one flat record per event — the natural shape for
log shipping from an instrumented system — and reassembled into an
:class:`~repro.events.event_set.EventSet` with pointers rebuilt from the
``(task, seq)`` keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import InvalidEventSetError
from repro.events.event_set import EventSet

#: Fields serialized per event, in column order.
RECORD_FIELDS = ("task", "seq", "queue", "state", "arrival", "departure")

#: Fields of one *incremental* measurement record (see
#: :func:`measurement_record`), the unit of live ingestion.
MEASUREMENT_FIELDS = (
    "task", "seq", "queue", "state", "counter", "arrival", "departure", "last"
)


def measurement_record(
    task: int,
    seq: int,
    queue: int,
    counter: int,
    state: int = -1,
    arrival: float | None = None,
    departure: float | None = None,
    last: bool = False,
) -> dict:
    """One event's measurement as a flat, JSON-serializable record.

    This is the unit an instrumented system ships to a live ingestion
    endpoint (:mod:`repro.live`): the event's identity (``task``/``seq``),
    its queue, and — crucially — the queue's event-**counter** value at
    its arrival, which pins the event's position in the frozen per-queue
    order without revealing any time.  Measured times are optional:
    ``arrival`` is ``None`` for an unmeasured (censored) arrival, and
    ``departure`` is only meaningful on a task's ``last`` event (inner
    departures are identical to the successor's arrival and are
    reconstructed, never shipped).
    """
    if seq < 0:
        raise InvalidEventSetError(f"seq must be >= 0, got {seq}")
    if queue < 0:
        raise InvalidEventSetError(f"queue must be >= 0, got {queue}")
    if counter < 0:
        raise InvalidEventSetError(f"counter must be >= 0, got {counter}")
    if (seq == 0) != (queue == 0):
        raise InvalidEventSetError(
            f"queue 0 and seq 0 identify the initial event together; "
            f"got seq={seq}, queue={queue}"
        )
    if departure is not None and not last:
        raise InvalidEventSetError(
            "only a task's last event carries an independent departure; "
            "inner departures equal the successor's arrival"
        )
    return {
        "task": int(task),
        "seq": int(seq),
        "queue": int(queue),
        "state": int(state),
        "counter": int(counter),
        "arrival": None if arrival is None else float(arrival),
        "departure": None if departure is None else float(departure),
        "last": bool(last),
    }


def validate_measurement_record(record: dict) -> dict:
    """Check an inbound record's shape; returns a normalized copy.

    Raises :class:`~repro.errors.InvalidEventSetError` with the missing or
    malformed field named, so a misbehaving reporter is diagnosable from
    the ingestion error alone.
    """
    if not isinstance(record, dict):
        raise InvalidEventSetError(
            f"measurement records are dicts, got {type(record).__name__}"
        )
    missing = [f for f in ("task", "seq", "queue", "counter") if f not in record]
    if missing:
        raise InvalidEventSetError(f"measurement record missing fields: {missing}")
    try:
        return measurement_record(
            task=record["task"],
            seq=record["seq"],
            queue=record["queue"],
            counter=record["counter"],
            state=record.get("state", -1),
            arrival=record.get("arrival"),
            departure=record.get("departure"),
            last=record.get("last", False),
        )
    except (TypeError, ValueError) as exc:
        raise InvalidEventSetError(f"malformed measurement record: {exc}") from None


def event_set_to_records(events: EventSet) -> list[dict]:
    """Flatten an event set into one dict per event (sorted by task, seq)."""
    records = []
    for task_id in events.task_ids:
        for e in events.events_of_task(task_id):
            records.append(
                {
                    "task": int(events.task[e]),
                    "seq": int(events.seq[e]),
                    "queue": int(events.queue[e]),
                    "state": int(events.state[e]),
                    "arrival": float(events.arrival[e]),
                    "departure": float(events.departure[e]),
                }
            )
    return records


def event_set_from_records(records: Iterable[dict], n_queues: int) -> EventSet:
    """Rebuild an event set from per-event records.

    Records may arrive in any order; pointers are reconstructed from the
    ``(task, seq)`` keys and the arrival order at each queue from the times.
    """
    records = list(records)
    if not records:
        raise InvalidEventSetError("no records to build an event set from")
    missing = [f for f in RECORD_FIELDS if f not in records[0] and f != "state"]
    if missing:
        raise InvalidEventSetError(f"records missing fields: {missing}")
    return EventSet.from_arrays(
        task=[r["task"] for r in records],
        seq=[r["seq"] for r in records],
        queue=[r["queue"] for r in records],
        arrival=[r["arrival"] for r in records],
        departure=[r["departure"] for r in records],
        state=[r.get("state", -1) for r in records],
        n_queues=n_queues,
    )


def save_jsonl(events: EventSet, path: str | Path) -> None:
    """Write an event set as JSON-lines with a leading header record."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {"kind": "repro-event-set", "version": 1, "n_queues": events.n_queues}
        fh.write(json.dumps(header) + "\n")
        for record in event_set_to_records(events):
            fh.write(json.dumps(record) + "\n")


def load_jsonl(path: str | Path) -> EventSet:
    """Read an event set written by :func:`save_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise InvalidEventSetError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("kind") != "repro-event-set":
            raise InvalidEventSetError(f"{path} is not a repro event-set file")
        records = [json.loads(line) for line in fh if line.strip()]
    return event_set_from_records(records, n_queues=int(header["n_queues"]))
