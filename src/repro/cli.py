"""Command-line interface: ``python -m repro`` or ``repro-queueing``.

Subcommands
-----------
simulate
    Simulate a built-in topology and write the ground-truth trace as JSONL.
infer
    Load a trace, censor it to a task-sampled observation rate, run StEM +
    Gibbs, and print parameter estimates plus a bottleneck report.
stream
    Replay a trace as an online stream: sliding-window StEM with warm
    cross-window shard workers, printing the per-window rate series and
    any anomalies it reveals.
serve
    Run the live estimation service: a TCP ingestion + query server
    feeding a LiveTraceStream into the streaming estimator, publishing
    window estimates and anomaly flags, with optional checkpointing.
ingest
    Replay a recorded trace into a running `repro serve` instance at a
    configurable speedup — the two-terminal live demo, and the reference
    for what a real reporting agent would ship.
top
    Live ops console for a running `repro serve` or `repro route`
    instance: rate/utilization sparklines, phase-latency bars, worker
    liveness, and stream counters, refreshed in place.
experiment
    Run a reduced-scale version of one of the paper's experiments
    (fig4 / fig5 / variance) and print the result tables.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.events import load_jsonl, save_jsonl
from repro.experiments import (
    quick_fig4_config,
    quick_fig5_config,
    run_fig4,
    run_fig5,
    run_variance_comparison,
    render_table,
)
from repro.inference import (
    MultiChainSampler,
    PosteriorSummary,
    estimate_posterior,
    run_stem,
)
from repro.inference.transport import PipeTransport, SocketTransport
from repro.localization import rank_bottlenecks, render_report
from repro.network import build_tandem_network, build_three_tier_network
from repro.observation import TaskSampling
from repro.online import ReplayTraceStream, detect_anomalies
from repro.simulate import simulate_network
from repro.webapp import WebAppConfig, generate_webapp_trace


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-queueing",
        description="Probabilistic inference in queueing networks (Sutton & Jordan 2008).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a topology to a JSONL trace")
    sim.add_argument(
        "--topology",
        choices=["three-tier", "tandem", "webapp"],
        default="three-tier",
    )
    sim.add_argument("--tasks", type=int, default=1000)
    sim.add_argument("--arrival-rate", type=float, default=10.0)
    sim.add_argument("--service-rate", type=float, default=5.0)
    sim.add_argument(
        "--servers", type=int, nargs="+", default=[1, 2, 4],
        help="servers per tier (three-tier) or station count (tandem)",
    )
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--out", required=True, help="output JSONL path")

    inf = sub.add_parser("infer", help="run StEM + Gibbs on a censored trace")
    inf.add_argument("trace", help="JSONL trace written by `simulate`")
    inf.add_argument("--observe", type=float, default=0.1, help="observed task fraction")
    inf.add_argument("--iterations", type=int, default=100)
    inf.add_argument("--seed", type=int, default=0)
    inf.add_argument(
        "--chains", type=int, default=1,
        help="independent Gibbs chains for the E-steps and the posterior; "
        "more than one adds split-R^hat / ESS convergence diagnostics",
    )
    inf.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the posterior chains (default: serial; "
        "results are identical at any worker count)",
    )
    inf.add_argument(
        "--kernel", choices=["array", "native", "object"], default="array",
        help="Gibbs sweep engine: 'array' (vectorized conflict-free "
        "batches, the fast default), 'native' (the array sweep with "
        "JIT-compiled piecewise loops; falls back to 'array' when numba "
        "is unavailable), or 'object' (the per-move scalar reference "
        "path)",
    )
    inf.add_argument(
        "--threads", type=int, default=1,
        help="threads for the batch kernels' chunked evaluation "
        "(results are bitwise identical at any thread count)",
    )
    inf.add_argument(
        "--shards", type=int, default=1,
        help="partition each chain's sweep across this many task shards "
        "(interior moves sweep per shard, only boundary events are "
        "exchanged between super-steps; same posterior, shards=1 is the "
        "plain kernel); combine with --persistent-workers to distribute "
        "one chain's shards across worker processes",
    )
    inf.add_argument(
        "--persistent-workers", type=int, default=None,
        help="fan StEM E-step chains out over this many persistent worker "
        "processes that keep chain state resident across EM iterations "
        "(default: serial in-process; results are bitwise identical at "
        "any worker count)",
    )

    def _add_estimator_flags(p, sentinel: bool = False) -> None:
        # One flag block shared by stream/serve/route.  With
        # sentinel=True every default is None so the serve --restore
        # branch can tell "explicitly passed" from "defaulted"; real
        # defaults are the EstimatorConfig dataclass defaults, applied
        # at construction time.
        d = (lambda v: None) if sentinel else (lambda v: v)
        p.add_argument(
            "--estimator", choices=["stem", "smc"], default=d("stem"),
            help="estimator flavor: 'stem' reruns windowed StEM per window "
            "(default); 'smc' advances a particle population per poll "
            "batch with ESS-triggered Gibbs rejuvenation — O(arrivals) "
            "between triggers, the win under heavy window overlap",
        )
        p.add_argument(
            "--particles", type=int, default=d(16),
            help="SMC particle count (default: 16; --estimator smc only)",
        )
        p.add_argument(
            "--ess-threshold", type=float, default=d(0.5),
            help="resample + rejuvenate when the effective sample size "
            "falls below this fraction of the particle count "
            "(default: 0.5; --estimator smc only)",
        )
        p.add_argument(
            "--rejuvenation-sweeps", type=int, default=d(1),
            help="Gibbs sweeps per particle per rejuvenation trigger "
            "(default: 1; --estimator smc only)",
        )
        p.add_argument(
            "--worker-retries", type=int, default=d(1),
            help="times a window whose shard worker pool died is re-run "
            "on a relaunched pool before its failure is recorded as data "
            "(default: 1)",
        )

    stream = sub.add_parser(
        "stream",
        help="sliding-window estimation over a replayed trace "
        "(StEM with warm shard workers, or the SMC particle filter)",
    )
    stream.add_argument("trace", help="JSONL trace written by `simulate`")
    stream.add_argument(
        "--observe", type=float, default=0.2, help="observed task fraction"
    )
    stream.add_argument(
        "--windows", type=int, default=8,
        help="number of tumbling windows the trace horizon is split into "
        "(ignored when --window is given)",
    )
    stream.add_argument(
        "--window", type=float, default=None,
        help="window length in trace clock units (overrides --windows)",
    )
    stream.add_argument(
        "--step", type=float, default=None,
        help="window start spacing (default: the window length; smaller "
        "values overlap windows, which maximizes warm-shard reuse)",
    )
    stream.add_argument("--iterations", type=int, default=30,
                        help="StEM iterations per window")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--shards", type=int, default=1,
        help="sharded sweeps per window (clamped to each window's task count)",
    )
    stream.add_argument(
        "--shard-workers", type=int, default=None,
        help="host the shard sweeps on this many worker processes, kept "
        "warm across windows (results identical at any worker count)",
    )
    stream.add_argument(
        "--transport", choices=["pipe", "socket"], default="pipe",
        help="worker transport: OS pipes (default) or loopback TCP "
        "sockets — the same wire protocol remote workers would speak",
    )
    stream.add_argument(
        "--cold", action="store_true",
        help="tear shard workers down after every window instead of "
        "keeping them warm (the rebuild baseline; same results, slower)",
    )
    stream.add_argument(
        "--kernel", choices=["array", "native", "object"], default="array",
        help="sweep kernel for every window's E-step chains ('native' "
        "falls back to 'array' when numba is unavailable)",
    )
    stream.add_argument(
        "--threads", type=int, default=1,
        help="threads for the batch kernels' chunked evaluation "
        "(results are bitwise identical at any thread count)",
    )
    stream.add_argument(
        "--anomaly-threshold", type=float, default=4.0,
        help="robust z-score above which a window's rate shift is flagged",
    )
    _add_estimator_flags(stream)

    serve = sub.add_parser(
        "serve",
        help="run the live estimation service (ingestion server + estimator)",
        description=(
            "Start an always-on estimation service: a TCP server accepts "
            "measurement records, a LiveTraceStream assembles them, and the "
            "streaming estimator publishes per-window rate estimates with "
            "anomaly flags, queryable over the same connection. "
            "Example: `repro serve --queues 3 --window 15 --port 7577 "
            "--authkey secret` then, in another terminal, `repro ingest "
            "trace.jsonl --connect 127.0.0.1:7577 --authkey secret --wait`."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 picks a free one, printed on start)")
    serve.add_argument(
        "--authkey", default=None,
        help="shared handshake secret clients must present "
        "(default: a development-only key; set your own for anything "
        "reachable from an untrusted network)",
    )
    serve.add_argument(
        "--queues", type=int, default=None,
        help="queue count of the monitored network, including entry queue 0 "
        "(required unless --restore)",
    )
    serve.add_argument(
        "--window", type=float, default=None,
        help="estimation window length in trace clock units "
        "(required unless --restore)",
    )
    # Estimator/stream flags use None sentinels so the --restore branch
    # can tell "explicitly passed" from "defaulted" — a checkpoint freezes
    # these, and silently ignoring an explicit value would mislead the
    # operator.  Real defaults are applied in _cmd_serve.
    serve.add_argument("--step", type=float, default=None,
                       help="window start spacing (default: the window length)")
    serve.add_argument("--iterations", type=int, default=None,
                       help="StEM iterations per window (default: 30)")
    serve.add_argument(
        "--min-observed", type=int, default=None,
        help="windows with fewer fully observed tasks are skipped (default: 3)",
    )
    serve.add_argument("--seed", type=int, default=None,
                       help="estimation seed (default: 0)")
    serve.add_argument("--shards", type=int, default=None,
                       help="sharded sweeps per window (default: 1)")
    serve.add_argument("--shard-workers", type=int, default=None,
                       help="worker processes hosting the shard sweeps")
    serve.add_argument(
        "--kernel", choices=["array", "native", "object"], default=None,
        help="sweep kernel for the window E-steps (default: array; "
        "'native' falls back to 'array' when numba is unavailable)",
    )
    serve.add_argument(
        "--threads", type=int, default=None,
        help="threads for the batch kernels' chunked evaluation "
        "(default: 1; results are bitwise identical at any count)",
    )
    serve.add_argument(
        "--lateness", type=float, default=None,
        help="grace interval behind the watermark within which measurements "
        "are still admitted; older ones are dropped as stragglers "
        "(default: 0)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=None,
        help="buffered-record bound before ingestion backpressure "
        "(default: 100000)",
    )
    serve.add_argument(
        "--retain", type=float, default=None,
        help="retention horizon in trace clock units: finished tasks older "
        "than watermark minus this (and out of reach of every future "
        "window) are folded into summary statistics and evicted, bounding "
        "memory and checkpoint size (default: keep full history)",
    )
    serve.add_argument("--checkpoint", default=None,
                       help="snapshot service state to this path")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       help="published windows between snapshots (default: 1)")
    serve.add_argument(
        "--restore", default=None,
        help="resume from a checkpoint written by a previous serve run "
        "(ingestion clients replay the tail; duplicates are ignored)",
    )
    serve.add_argument("--anomaly-threshold", type=float, default=None,
                       help="robust z-score flagging threshold (default: 4)")
    _add_estimator_flags(serve, sentinel=True)

    ing = sub.add_parser(
        "ingest",
        help="replay a recorded trace into a running `repro serve` instance",
        description=(
            "Censor a recorded ground-truth trace to an observed fraction "
            "and ship it to a live server as measurement records, in entry "
            "order with the watermark advanced alongside — at a wall-clock "
            "speedup, or as fast as the server admits. Example: `repro "
            "ingest trace.jsonl --connect 127.0.0.1:7577 --authkey secret "
            "--speedup 20 --wait`."
        ),
    )
    ing.add_argument("trace", help="JSONL trace written by `simulate`")
    ing.add_argument("--connect", default="127.0.0.1:7577",
                     help="host:port of the running server")
    ing.add_argument("--authkey", default=None,
                     help="shared handshake secret (must match the server's)")
    ing.add_argument("--observe", type=float, default=0.2,
                     help="observed task fraction")
    ing.add_argument("--seed", type=int, default=0,
                     help="observation-sampling seed")
    ing.add_argument(
        "--speedup", type=float, default=0.0,
        help="replay trace clock this many times faster than real time "
        "(0 = no pacing, ship as fast as the server admits)",
    )
    ing.add_argument("--batch", type=int, default=32,
                     help="tasks per ingestion batch")
    ing.add_argument("--no-seal", action="store_true",
                     help="leave the stream open after the replay ends")
    ing.add_argument(
        "--wait", action="store_true",
        help="after sealing, block until the service finishes and print "
        "the published window estimates",
    )
    ing.add_argument(
        "--shutdown", action="store_true",
        help="ask the serving process to exit once this client is done",
    )

    top = sub.add_parser(
        "top",
        help="live ops console for a running serve/route instance",
        description=(
            "Poll a running `repro serve` (or a router tier's front "
            "server) and redraw a terminal dashboard each interval: "
            "per-queue rate and utilization sparklines with anomaly "
            "flags, pipeline phase-latency bars, worker liveness, and "
            "stream admission counters. Example: `repro top --connect "
            "127.0.0.1:7577 --authkey secret`."
        ),
    )
    top.add_argument("--connect", default="127.0.0.1:7577",
                     help="host:port of the running server")
    top.add_argument("--authkey", default=None,
                     help="shared handshake secret (must match the server's)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no screen clear)")
    top.add_argument("--windows", type=int, default=64,
                     help="recent windows to chart in the sparklines")

    route = sub.add_parser(
        "route",
        help="run a multi-service estimation tier behind one ingest router",
        description=(
            "Start a shared-nothing estimation tier: N independent "
            "estimator services in their own processes, fronted by an "
            "ingest router that stripes the entry keyspace across them, "
            "merges estimates/anomalies/health, and supervises the "
            "services (a killed service restarts from its checkpoint and "
            "the router replays its spooled tail). Clients speak the "
            "ordinary live protocol — `repro ingest` works unchanged. "
            "Example: `repro route --services 4 --queues 3 --window 15 "
            "--checkpoint-dir ckpts --port 7577 --authkey secret`."
        ),
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=0,
                       help="listen port (0 picks a free one, printed on start)")
    route.add_argument(
        "--authkey", default=None,
        help="shared handshake secret, used both by clients of the router "
        "and on the router's internal links to its partition services",
    )
    route.add_argument("--services", type=int, default=2,
                       help="independent estimator services to run")
    route.add_argument("--queues", type=int, required=True,
                       help="queue count of the monitored network, "
                       "including entry queue 0")
    route.add_argument("--window", type=float, required=True,
                       help="estimation window length in trace clock units")
    route.add_argument("--step", type=float, default=None,
                       help="window start spacing (default: the window length)")
    route.add_argument("--iterations", type=int, default=30,
                       help="StEM iterations per window")
    route.add_argument("--min-observed", type=int, default=3,
                       help="windows with fewer fully observed tasks are "
                       "skipped")
    route.add_argument("--seed", type=int, default=0,
                       help="estimation seed (each service derives its own "
                       "child seed from it)")
    route.add_argument("--shards", type=int, default=1,
                       help="sharded sweeps per window, per service")
    route.add_argument("--shard-workers", type=int, default=None,
                       help="worker processes hosting each service's shards")
    route.add_argument(
        "--kernel", choices=["array", "native", "object"], default="array",
        help="sweep kernel for every service's window E-steps ('native' "
        "falls back to 'array' when numba is unavailable)",
    )
    route.add_argument(
        "--threads", type=int, default=1,
        help="threads for the batch kernels' chunked evaluation, per "
        "service (results are bitwise identical at any count)",
    )
    route.add_argument(
        "--lateness", type=float, default=0.0,
        help="grace interval behind the watermark within which measurements "
        "are still admitted; older ones are dropped as stragglers",
    )
    route.add_argument("--max-pending", type=int, default=100_000,
                       help="per-service buffered-record bound before "
                       "ingestion backpressure")
    route.add_argument(
        "--retain", type=float, default=None,
        help="per-service retention horizon in trace clock units "
        "(default: keep full history)",
    )
    route.add_argument(
        "--block", type=int, default=None,
        help="entry slots per stripe block; tasks entering within one "
        "block land on the same service (default: 32)",
    )
    route.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for per-service snapshots (partition-N.ckpt); "
        "required for crash recovery of a killed service",
    )
    route.add_argument("--checkpoint-every", type=int, default=1,
                       help="published windows between snapshots")
    route.add_argument(
        "--max-spool", type=int, default=100_000,
        help="acked-but-uncheckpointed records the router retains per "
        "service for crash replay before evicting the oldest",
    )
    route.add_argument(
        "--probe-interval", type=float, default=1.0,
        help="seconds between supervisor liveness probes of each service",
    )
    route.add_argument("--anomaly-threshold", type=float, default=4.0,
                       help="robust z-score flagging threshold")
    _add_estimator_flags(route)

    exp = sub.add_parser("experiment", help="run a reduced-scale paper experiment")
    exp.add_argument("which", choices=["fig4", "fig5", "variance"])
    exp.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.topology == "three-tier":
        network = build_three_tier_network(
            arrival_rate=args.arrival_rate,
            servers_per_tier=tuple(args.servers),
            service_rate=args.service_rate,
        )
        sim = simulate_network(network, args.tasks, random_state=args.seed)
    elif args.topology == "tandem":
        network = build_tandem_network(
            arrival_rate=args.arrival_rate,
            service_rates=[args.service_rate] * len(args.servers),
        )
        sim = simulate_network(network, args.tasks, random_state=args.seed)
    else:
        sim = generate_webapp_trace(
            WebAppConfig(n_requests=args.tasks), random_state=args.seed
        )
    save_jsonl(sim.events, args.out)
    print(f"wrote {sim.events.n_events} events ({sim.events.n_tasks} tasks) to {args.out}")
    print(sim.network.describe())
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    events = load_jsonl(args.trace)
    trace = TaskSampling(fraction=args.observe).observe(events, random_state=args.seed)
    print(trace.summary())
    if args.chains < 1:
        raise SystemExit("--chains must be at least 1")
    if args.workers and args.chains == 1:
        print(
            "note: --workers has no effect with a single chain; "
            "pass --chains K to fan out",
            file=sys.stderr,
        )
    if args.persistent_workers is not None and args.persistent_workers < 1:
        raise SystemExit("--persistent-workers must be at least 1")
    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.shards > 1 and args.kernel not in ("array", "native"):
        raise SystemExit(
            "--shards requires the array kernel or its native lowering "
            "(drop --kernel object)"
        )
    if args.threads < 1:
        raise SystemExit("--threads must be at least 1")
    if args.persistent_workers and args.chains == 1:
        print(
            "note: --persistent-workers with a single chain moves the one "
            "E-step chain into a worker process (no speedup expected)",
            file=sys.stderr,
        )
    stem = run_stem(
        trace, n_iterations=args.iterations, random_state=args.seed,
        init_method="heuristic", n_chains=args.chains, kernel=args.kernel,
        persistent_workers=args.persistent_workers, shards=args.shards,
        threads=args.threads,
    )
    print(f"\nestimated arrival rate lambda = {stem.arrival_rate:.4g}")
    if args.chains > 1:
        multi = MultiChainSampler(
            trace, rates=stem.rates, n_chains=args.chains,
            random_state=args.seed + 1, kernel=args.kernel,
            shards=args.shards,
        ).collect(n_samples=25, thin=1, burn_in=10, workers=args.workers)
        posterior = PosteriorSummary.from_samples(stem.rates, multi.pooled())
        r_hat = multi.split_r_hat("waiting")
        ess = multi.ess("waiting")
        rows = [
            (q, f"{stem.rates[q]:.4g}", f"{1.0 / stem.rates[q]:.4g}",
             f"{posterior.waiting_mean[q]:.4g}", f"{r_hat[q]:.3f}", f"{ess[q]:.0f}")
            for q in range(1, events.n_queues)
        ]
        print(render_table(
            ["queue", "mu-hat", "service", "waiting", "split-Rhat", "ESS"],
            rows, title=f"\nper-queue estimates ({args.chains} chains)",
        ))
        print(f"\n{multi.summary()}")
    else:
        posterior = estimate_posterior(
            trace, rates=stem.rates, n_samples=25, burn_in=10,
            state=stem.sampler.state, random_state=args.seed + 1,
            kernel=args.kernel,
        )
        rows = [
            (q, f"{stem.rates[q]:.4g}", f"{1.0 / stem.rates[q]:.4g}",
             f"{posterior.waiting_mean[q]:.4g}")
            for q in range(1, events.n_queues)
        ]
        print(render_table(
            ["queue", "mu-hat", "service", "waiting"], rows,
            title="\nper-queue estimates",
        ))
    print("\nbottleneck ranking:")
    print(render_report(rank_bottlenecks(posterior)))
    return 0


#: CLI flag attribute -> EstimatorConfig field, for the flag block shared
#: by stream/serve/route.  Flags a subcommand lacks, or left at a None
#: sentinel, fall back to the dataclass defaults.
_ESTIMATOR_FLAG_FIELDS = (
    ("step", "step"),
    ("iterations", "stem_iterations"),
    ("min_observed", "min_observed_tasks"),
    ("shards", "shards"),
    ("shard_workers", "shard_workers"),
    ("kernel", "kernel"),
    ("threads", "threads"),
    ("worker_retries", "worker_retries"),
    ("particles", "n_particles"),
    ("ess_threshold", "ess_threshold"),
    ("rejuvenation_sweeps", "rejuvenation_sweeps"),
)


def _estimator_config_from_args(args, window, **overrides):
    from repro.errors import InferenceError
    from repro.online import EstimatorConfig

    kwargs = {"window": window}
    for attr, field in _ESTIMATOR_FLAG_FIELDS:
        value = getattr(args, attr, None)
        if value is not None:
            kwargs[field] = value
    kwargs.update(overrides)
    try:
        return EstimatorConfig(**kwargs)
    except InferenceError as exc:
        raise SystemExit(str(exc))


def _build_estimator(name, stream, *, random_state, config, transport=None):
    from repro.errors import InferenceError
    from repro.online import get_estimator

    try:
        return get_estimator(name)(
            stream,
            random_state=random_state,
            transport=transport,
            config=config,
        )
    except InferenceError as exc:
        raise SystemExit(str(exc))


def _reject_smc_sharding(estimator, shards, shard_workers):
    if estimator == "smc" and (shards > 1 or shard_workers is not None):
        raise SystemExit(
            "--estimator smc rejuvenates every particle in-process; "
            "drop --shards/--shard-workers"
        )


def _cmd_stream(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.shards > 1 and args.kernel not in ("array", "native"):
        raise SystemExit(
            "--shards requires the array kernel or its native lowering "
            "(drop --kernel object)"
        )
    if args.threads < 1:
        raise SystemExit("--threads must be at least 1")
    if args.shard_workers is not None and args.shard_workers < 1:
        raise SystemExit("--shard-workers must be at least 1")
    if args.shard_workers is not None and args.shards == 1:
        raise SystemExit("--shard-workers requires --shards > 1")
    if args.transport != "pipe" and args.shard_workers is None:
        raise SystemExit(
            "--transport selects the worker transport; pass --shard-workers "
            "(with --shards > 1) or drop it"
        )
    if args.cold and args.shard_workers is None:
        raise SystemExit(
            "--cold tears worker pools down per window; pass --shard-workers "
            "(with --shards > 1) or drop it"
        )
    if args.window is not None and args.window <= 0.0:
        raise SystemExit("--window must be positive")
    if args.step is not None and args.step <= 0.0:
        raise SystemExit("--step must be positive")
    if args.windows < 1:
        raise SystemExit("--windows must be at least 1")
    if args.iterations < 1:
        raise SystemExit("--iterations must be at least 1")
    _reject_smc_sharding(args.estimator, args.shards, args.shard_workers)
    events = load_jsonl(args.trace)
    trace = TaskSampling(fraction=args.observe).observe(events, random_state=args.seed)
    print(trace.summary())
    source = ReplayTraceStream(trace)
    window = (
        args.window if args.window is not None else source.horizon / args.windows
    )
    transport = SocketTransport() if args.transport == "socket" else PipeTransport()
    config = _estimator_config_from_args(args, window, warm_workers=not args.cold)
    estimator = _build_estimator(
        args.estimator, source,
        random_state=args.seed, config=config, transport=transport,
    )
    windows = estimator.run()  # closes the pool and the owned transport
    rows = []
    for i, est in enumerate(windows):
        services = (
            " ".join(f"{est.mean_service(q):.4g}" for q in range(1, events.n_queues))
            if est.ok
            else (est.failure or "skipped")
        )
        rows.append((
            i, f"{est.t_start:.1f}", f"{est.t_end:.1f}", est.n_tasks,
            est.n_observed_tasks, est.n_shards,
            f"{est.n_warm_shards}/{est.n_warm_shards + est.n_migrated_shards}",
            services,
        ))
    print(render_table(
        ["win", "t0", "t1", "tasks", "obs", "shards", "warm", "mean service (q1..)"],
        rows, title="\nstreaming window estimates",
    ))
    reports = detect_anomalies(windows, threshold=args.anomaly_threshold)
    if reports:
        print("\nanomalies:")
        for r in reports:
            print(
                f"  window {r.window_index} [{r.t_start:.1f}, {r.t_end:.1f}) "
                f"queue {r.queue}: mean service {r.value:.4g} vs baseline "
                f"{r.baseline:.4g} (z={r.z_score:.1f})"
            )
    else:
        print("\nno anomalies flagged")
    return 0


def _authkey(value: str | None) -> bytes:
    from repro.live import DEFAULT_AUTHKEY

    return DEFAULT_AUTHKEY if value is None else value.encode("utf-8")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import IngestError
    from repro.live import EstimatorService, LiveServer, LiveTraceStream

    if args.restore is not None:
        # Resuming replays the checkpoint's exact configuration; accepting
        # these flags and then ignoring them would let an operator believe
        # the resumed service runs with e.g. different sharding.  The
        # parser uses None sentinels, so "explicitly passed" is detected
        # even when the passed value equals the documented default.
        frozen = (
            "queues", "window", "step", "iterations", "min_observed",
            "seed", "shards", "shard_workers", "kernel", "threads",
            "lateness", "max_pending", "retain", "estimator", "particles",
            "ess_threshold", "rejuvenation_sweeps", "worker_retries",
        )
        rejected = [
            "--" + name.replace("_", "-")
            for name in frozen
            if getattr(args, name) is not None
        ]
        if rejected:
            raise SystemExit(
                "--restore resumes the checkpoint's configuration; drop "
                + "/".join(rejected)
            )
        # Service-level options stay overridable on resume — but only when
        # the operator actually passed them; defaults must not clobber the
        # checkpointed values.
        overrides = {}
        if args.anomaly_threshold is not None:
            overrides["anomaly_threshold"] = args.anomaly_threshold
        if args.checkpoint_every is not None:
            overrides["checkpoint_every"] = args.checkpoint_every
        try:
            service = EstimatorService.from_checkpoint(
                args.restore,
                checkpoint_path=args.checkpoint,
                **overrides,
            )
        except (OSError, IngestError) as exc:
            raise SystemExit(f"cannot restore from {args.restore}: {exc}")
        print(f"restored from {args.restore}: "
              f"{len(service.windows())} windows already published")
    else:
        if args.queues is None or args.window is None:
            raise SystemExit("--queues and --window are required (or --restore)")
        if args.window <= 0.0:
            raise SystemExit("--window must be positive")
        # Fill the documented defaults behind the None sentinels the
        # parser uses for --restore detection.
        shards = 1 if args.shards is None else args.shards
        if shards < 1:
            raise SystemExit("--shards must be at least 1")
        if args.shard_workers is not None and shards == 1:
            raise SystemExit("--shard-workers requires --shards > 1")
        kernel = "array" if args.kernel is None else args.kernel
        if shards > 1 and kernel not in ("array", "native"):
            raise SystemExit(
                "--shards requires the array kernel or its native lowering "
                "(drop --kernel object)"
            )
        threads = 1 if args.threads is None else args.threads
        if threads < 1:
            raise SystemExit("--threads must be at least 1")
        estimator_name = "stem" if args.estimator is None else args.estimator
        _reject_smc_sharding(estimator_name, shards, args.shard_workers)
        stream = LiveTraceStream(
            n_queues=args.queues,
            lateness=0.0 if args.lateness is None else args.lateness,
            max_pending=(
                100_000 if args.max_pending is None else args.max_pending
            ),
            retain=args.retain,
        )
        # The serve parser keeps its historical default of 30 StEM
        # iterations; every other None sentinel falls back to the
        # EstimatorConfig dataclass defaults.
        config = _estimator_config_from_args(
            args, args.window,
            stem_iterations=30 if args.iterations is None else args.iterations,
        )
        estimator = _build_estimator(
            estimator_name, stream,
            random_state=0 if args.seed is None else args.seed,
            config=config,
        )
        service = EstimatorService(
            estimator,
            checkpoint_path=args.checkpoint,
            checkpoint_every=(
                1 if args.checkpoint_every is None else args.checkpoint_every
            ),
            anomaly_threshold=(
                4.0 if args.anomaly_threshold is None else args.anomaly_threshold
            ),
        )
    server = LiveServer(
        service, host=args.host, port=args.port, authkey=_authkey(args.authkey)
    )
    service.start()
    server.start()
    host, port = server.address
    print(f"repro live service listening on {host}:{port}")
    print("ingest with: repro ingest TRACE.jsonl "
          f"--connect {host}:{port}" +
          (" --authkey <key>" if args.authkey else ""))
    try:
        server.wait_for_shutdown()
        print("shutdown requested; draining")
    except KeyboardInterrupt:
        print("\ninterrupted; draining")
    finally:
        server.close()
        service.stop()
    health = service.health()
    print(f"served {health['windows_published']} windows "
          f"({health['anomalies']} anomaly flags); status: {health['status']}")
    if health["status"] == "failed":
        print(f"estimator error: {health['error']}", file=sys.stderr)
        return 1
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.live import DEFAULT_BLOCK, IngestRouter, LiveServer

    if args.services < 1:
        raise SystemExit("--services must be at least 1")
    if args.window <= 0.0:
        raise SystemExit("--window must be positive")
    if args.shards < 1:
        raise SystemExit("--shards must be at least 1")
    if args.shard_workers is not None and args.shards == 1:
        raise SystemExit("--shard-workers requires --shards > 1")
    if args.shards > 1 and args.kernel not in ("array", "native"):
        raise SystemExit(
            "--shards requires the array kernel or its native lowering "
            "(drop --kernel object)"
        )
    if args.threads < 1:
        raise SystemExit("--threads must be at least 1")
    _reject_smc_sharding(args.estimator, args.shards, args.shard_workers)
    service_config = {
        "n_queues": args.queues,
        "window": args.window,
        "estimator": args.estimator,
        "stem_iterations": args.iterations,
        "min_observed_tasks": args.min_observed,
        "random_state": args.seed,
        "shards": args.shards,
        "kernel": args.kernel,
        "threads": args.threads,
        "worker_retries": args.worker_retries,
        "n_particles": args.particles,
        "ess_threshold": args.ess_threshold,
        "rejuvenation_sweeps": args.rejuvenation_sweeps,
        "lateness": args.lateness,
        "max_pending": args.max_pending,
        "checkpoint_every": args.checkpoint_every,
        "anomaly_threshold": args.anomaly_threshold,
    }
    if args.step is not None:
        service_config["step"] = args.step
    if args.shard_workers is not None:
        service_config["shard_workers"] = args.shard_workers
    if args.retain is not None:
        service_config["retain"] = args.retain
    router = IngestRouter(
        args.services,
        service_config,
        block=DEFAULT_BLOCK if args.block is None else args.block,
        checkpoint_dir=args.checkpoint_dir,
        authkey=_authkey(args.authkey),
        max_spool_records=args.max_spool,
        probe_interval=args.probe_interval,
    )
    print(f"starting {args.services} partition services ...")
    router.start()
    # The router implements the full service command surface, so the
    # stock LiveServer fronts the whole tier unchanged.
    server = LiveServer(
        router, host=args.host, port=args.port, authkey=_authkey(args.authkey)
    )
    server.start()
    host, port = server.address
    print(f"repro routing tier ({args.services} services) "
          f"listening on {host}:{port}")
    print("ingest with: repro ingest TRACE.jsonl "
          f"--connect {host}:{port}" +
          (" --authkey <key>" if args.authkey else ""))
    try:
        server.wait_for_shutdown()
        print("shutdown requested; draining")
    except KeyboardInterrupt:
        print("\ninterrupted; draining")
    finally:
        server.close()
        health = router.health()
        router.close()
    print(f"served {health['windows_published']} windows "
          f"({health['anomalies']} anomaly flags) across "
          f"{health['router']['n_partitions']} services; "
          f"status: {health['status']}; "
          f"service restarts: {health['router']['n_restarts']}")
    if health["status"] == "failed":
        print(f"estimator error: {health['error']}", file=sys.stderr)
        return 1
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import time

    from repro.errors import IngestError
    from repro.live import LiveClient, replay_batches

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect must be host:port, got {args.connect!r}")
    if args.speedup < 0.0:
        raise SystemExit("--speedup must be >= 0")
    if args.batch < 1:
        raise SystemExit("--batch must be at least 1")
    from repro.errors import InferenceError

    events = load_jsonl(args.trace)
    trace = TaskSampling(fraction=args.observe).observe(events, random_state=args.seed)
    print(trace.summary())
    try:
        batches = replay_batches(trace, batch_tasks=args.batch)
    except InferenceError as exc:
        raise SystemExit(f"cannot schedule the replay: {exc}")
    try:
        client = LiveClient((host, int(port)), authkey=_authkey(args.authkey))
    except (IngestError, OSError) as exc:
        raise SystemExit(f"cannot connect to {args.connect}: {exc}")
    n_shipped = 0
    t_wall0 = time.perf_counter()
    t_clock0 = batches[0][0]
    with client:
        for watermark, batch in batches:
            if args.speedup > 0.0:
                due = t_wall0 + (watermark - t_clock0) / args.speedup
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            client.advance_watermark(watermark)
            while True:
                try:
                    summary = client.ingest(batch)
                    break
                except IngestError as exc:
                    if "backpressure" not in str(exc):
                        raise SystemExit(f"ingestion refused: {exc}")
                    time.sleep(0.05)  # bounded buffer is draining; retry
            n_shipped += summary["admitted"]
        elapsed = time.perf_counter() - t_wall0
        print(f"shipped {n_shipped} records in {elapsed:.2f}s "
              f"({n_shipped / max(elapsed, 1e-9):.0f} records/s)")
        if not args.no_seal:
            client.seal()
        if args.wait:
            if args.no_seal:
                raise SystemExit("--wait needs the stream sealed; drop --no-seal")
            while True:
                health = client.health()
                if health["status"] in ("finished", "failed", "stopped"):
                    break
                time.sleep(0.2)
            if health["status"] != "finished":
                print(f"service did not finish: {health['status']} "
                      f"({health.get('error')})")
                return 1
            rows = []
            for est in client.estimates():
                services = (
                    " ".join(
                        f"{1.0 / r:.4g}" for r in est["rates"][1:]
                    )
                    if est["rates"] is not None
                    else (est["failure"] or "skipped")
                )
                flags = (
                    ",".join(str(q) for q in est["anomalous_queues"]) or "-"
                )
                rows.append((
                    est["index"], f"{est['t_start']:.1f}", f"{est['t_end']:.1f}",
                    est["n_tasks"], est["n_observed_tasks"], flags, services,
                ))
            print(render_table(
                ["win", "t0", "t1", "tasks", "obs", "anom", "mean service (q1..)"],
                rows, title="\npublished window estimates",
            ))
        if args.shutdown:
            client.shutdown()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.errors import IngestError
    from repro.live import LiveClient
    from repro.telemetry.console import render_top

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect must be host:port, got {args.connect!r}")
    if args.interval <= 0.0:
        raise SystemExit("--interval must be > 0")
    try:
        client = LiveClient((host, int(port)), authkey=_authkey(args.authkey))
    except (IngestError, OSError) as exc:
        raise SystemExit(f"cannot connect to {args.connect}: {exc}")
    with client:
        while True:
            try:
                health = client.health()
                estimates = client.estimates()
                report = client.metrics("snapshot")
                anomalies = client.anomalies()
            except (IngestError, OSError) as exc:
                raise SystemExit(f"lost the server at {args.connect}: {exc}")
            frame = render_top(
                health, estimates[-args.windows:], report, anomalies
            )
            if args.once:
                print(frame)
                return 0
            # Clear + home, then one frame: a flicker-free in-place redraw.
            print(f"\x1b[2J\x1b[H{frame}", flush=True)
            try:
                time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.which == "fig4":
        result = run_fig4(quick_fig4_config(), random_state=args.seed)
        for kind in ("service", "waiting"):
            rows = [
                (f"{frac:.0%}", *(f"{v:.4g}" for v in row.values()))
                for frac, row in result.panel_quartiles(kind).items()
            ]
            print(render_table(
                ["observed", "min", "q1", "median", "q3", "max"],
                rows, title=f"\nFigure 4 ({kind} abs error)",
            ))
    elif args.which == "fig5":
        result = run_fig5(quick_fig5_config(), random_state=args.seed)
        headers = ["queue", *(f"{f:.0%}" for f in result.fractions), "truth"]
        rows = [
            (result.queue_names[q],
             *(f"{result.service[f][q]:.4g}" for f in result.fractions),
             f"{result.true_service[q]:.4g}")
            for q in range(1, len(result.queue_names))
        ]
        print(render_table(headers, rows, title="\nFigure 5 (service estimates)"))
    else:
        comparison = run_variance_comparison(quick_fig4_config(), random_state=args.seed)
        print(render_table(
            ["estimator", "variance", "mean abs error"],
            [
                ("StEM", f"{comparison.stem_variance:.3e}", f"{comparison.stem_mean_error:.4g}"),
                ("observed-mean", f"{comparison.baseline_variance:.3e}",
                 f"{comparison.baseline_mean_error:.4g}"),
            ],
            title="\nSection 5.1 estimator comparison",
        ))
        print(f"variance ratio (StEM / baseline): {comparison.variance_ratio:.3f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "infer":
        return _cmd_infer(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "route":
        return _cmd_route(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "top":
        return _cmd_top(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
