"""Fault injection: simulation with time-varying service rates.

Anomaly-detection experiments need ground truth where a component's
intrinsic speed *changes* mid-run (a failing disk, a lock-convoy
regression after a deploy).  This module simulates FIFO networks whose
exponential service rates are piecewise-constant in time; everything else
matches :func:`repro.simulate.engine.simulate_tasks`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.events import EventSet
from repro.fsm import TaskPath
from repro.network import QueueingNetwork
from repro.rng import RandomState, as_generator
from repro.simulate.arrivals import ArrivalProcess, PoissonArrivals
from repro.simulate.engine import SimulationResult


@dataclass(frozen=True)
class RateChange:
    """A scheduled change of one queue's exponential service rate.

    Attributes
    ----------
    queue:
        Queue index whose rate changes.
    at:
        Clock time of the change (affects services *starting* after it).
    rate:
        The new exponential rate from that point on.
    """

    queue: int
    at: float
    rate: float

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise SimulationError(f"change time must be nonnegative, got {self.at}")
        if not (self.rate > 0.0 and np.isfinite(self.rate)):
            raise SimulationError(f"new rate must be positive, got {self.rate}")


def simulate_with_faults(
    network: QueueingNetwork,
    n_tasks: int,
    faults: list[RateChange],
    arrival_process: ArrivalProcess | None = None,
    random_state: RandomState = None,
) -> SimulationResult:
    """Simulate *network* with scheduled service-rate changes.

    The base rates come from the network (which must be fully
    exponential); each :class:`RateChange` overrides one queue's rate from
    its change time onward (multiple changes to a queue apply in time
    order).  Returns a standard :class:`~repro.simulate.SimulationResult`
    whose ``network`` field holds the *base* (pre-fault) network.
    """
    if n_tasks < 1:
        raise SimulationError(f"need at least one task, got {n_tasks}")
    base_rates = network.rates_vector()
    for fault in faults:
        if not 1 <= fault.queue < network.n_queues:
            raise SimulationError(f"fault references unknown queue {fault.queue}")
    schedule: dict[int, list[RateChange]] = {}
    for fault in faults:
        schedule.setdefault(fault.queue, []).append(fault)
    for changes in schedule.values():
        changes.sort(key=lambda c: c.at)

    def rate_at(q: int, t: float) -> float:
        rate = float(base_rates[q])
        for change in schedule.get(q, ()):
            if t >= change.at:
                rate = change.rate
        return rate

    rng = as_generator(random_state)
    if arrival_process is None:
        arrival_process = PoissonArrivals(rate=network.arrival_rate)
    entries = arrival_process.sample(n_tasks, rng)
    paths = [network.sample_path(rng) for _ in range(n_tasks)]

    heap: list[tuple[float, int, int, int]] = []
    counter = 0
    for k in range(n_tasks):
        if len(paths[k]) == 0:
            raise SimulationError(f"task {k} has an empty path")
        heapq.heappush(heap, (float(entries[k]), counter, k, 0))
        counter += 1
    last_departure = np.full(network.n_queues, -np.inf)
    arrivals: list[list[float]] = [[] for _ in range(n_tasks)]
    departures: list[list[float]] = [[] for _ in range(n_tasks)]
    while heap:
        arrival, _, k, visit = heapq.heappop(heap)
        q = paths[k].queues[visit]
        begin = max(arrival, last_departure[q])
        service = rng.exponential(1.0 / rate_at(q, begin))
        departure = begin + service
        last_departure[q] = departure
        arrivals[k].append(arrival)
        departures[k].append(departure)
        if visit + 1 < len(paths[k]):
            heapq.heappush(heap, (departure, counter, k, visit + 1))
            counter += 1
    events = EventSet.from_task_paths(
        entries=entries.tolist(),
        paths=[list(p.queues) for p in paths],
        arrivals=arrivals,
        departures=departures,
        n_queues=network.n_queues,
        states=[list(p.states) for p in paths],
    )
    return SimulationResult(
        events=events, network=network, paths={k: paths[k] for k in range(n_tasks)}
    )
