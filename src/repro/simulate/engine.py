"""The discrete-event simulation engine.

Single-server FIFO queues admit an exact sweep: if arrivals are processed
in global chronological order, each queue only needs its most recent
departure time, because

    d_e = s_e + max(a_e, d_{rho(e)})

and ``rho(e)`` is simply the previous arrival at the queue.  The engine
therefore keeps a min-heap of pending (arrival, task, visit) tuples and a
``last_departure`` scalar per queue.  The output is a fully valid
:class:`~repro.events.EventSet`, which downstream code treats as ground
truth.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.events import EventSet
from repro.fsm import TaskPath
from repro.network import QueueingNetwork
from repro.rng import RandomState, as_generator
from repro.simulate.arrivals import ArrivalProcess, PoissonArrivals


@dataclass
class SimulationResult:
    """Ground truth produced by one simulation run.

    Attributes
    ----------
    events:
        The complete, feasible event set (including initial events).
    network:
        The network that generated it (true parameters).
    paths:
        The sampled task paths, indexed by task id — the "known FSM paths"
        the inference conditions on.
    """

    events: EventSet
    network: QueueingNetwork
    paths: dict[int, TaskPath] = field(default_factory=dict)

    @property
    def n_tasks(self) -> int:
        """Number of simulated tasks."""
        return self.events.n_tasks

    def true_rates(self) -> np.ndarray:
        """The generating exponential rates (index 0 = arrival rate)."""
        return self.network.rates_vector()


def simulate_tasks(
    network: QueueingNetwork,
    entry_times: np.ndarray,
    paths: list[TaskPath],
    random_state: RandomState = None,
) -> SimulationResult:
    """Simulate given fixed entry times and task paths.

    Parameters
    ----------
    network:
        Supplies each queue's service distribution.
    entry_times:
        Strictly increasing system entry times, one per task.
    paths:
        The queue-visit path of each task (parallel to *entry_times*).
    random_state:
        Seed/generator for service-time draws.

    Returns
    -------
    SimulationResult
        With an event set containing ``sum(len(p) + 1 for p in paths)``
        events.
    """
    entry_times = np.asarray(entry_times, dtype=float)
    if entry_times.ndim != 1 or entry_times.size == 0:
        raise SimulationError("entry_times must be a non-empty 1-D array")
    if np.any(np.diff(entry_times) <= 0.0):
        raise SimulationError("entry_times must be strictly increasing")
    if np.any(entry_times <= 0.0):
        raise SimulationError("entry times must be strictly positive")
    if len(paths) != entry_times.size:
        raise SimulationError(
            f"{len(paths)} paths for {entry_times.size} entry times"
        )
    rng = as_generator(random_state)
    n_tasks = entry_times.size
    services = [network.service_of(q) for q in range(network.n_queues)]

    # Pending heap entries: (arrival_time, tie_breaker, task, visit_index).
    # The tie breaker keeps heap comparisons away from non-comparable types
    # and makes simultaneous arrivals deterministic.
    counter = 0
    heap: list[tuple[float, int, int, int]] = []
    for k in range(n_tasks):
        if len(paths[k]) == 0:
            raise SimulationError(f"task {k} has an empty path; nothing to simulate")
        heapq.heappush(heap, (float(entry_times[k]), counter, k, 0))
        counter += 1

    last_departure = np.zeros(network.n_queues)
    last_departure[:] = -np.inf
    arrivals: list[list[float]] = [[] for _ in range(n_tasks)]
    departures: list[list[float]] = [[] for _ in range(n_tasks)]

    while heap:
        arrival, _, k, visit = heapq.heappop(heap)
        q = paths[k].queues[visit]
        service = float(services[q].sample_one(rng))
        begin = max(arrival, last_departure[q])
        departure = begin + service
        last_departure[q] = departure
        arrivals[k].append(arrival)
        departures[k].append(departure)
        if visit + 1 < len(paths[k]):
            heapq.heappush(heap, (departure, counter, k, visit + 1))
            counter += 1

    events = EventSet.from_task_paths(
        entries=entry_times.tolist(),
        paths=[list(p.queues) for p in paths],
        arrivals=arrivals,
        departures=departures,
        n_queues=network.n_queues,
        states=[list(p.states) for p in paths],
    )
    return SimulationResult(
        events=events, network=network, paths={k: paths[k] for k in range(n_tasks)}
    )


def simulate_network(
    network: QueueingNetwork,
    n_tasks: int,
    arrival_process: ArrivalProcess | None = None,
    random_state: RandomState = None,
) -> SimulationResult:
    """Simulate *n_tasks* tasks through *network*.

    Entry times come from *arrival_process* (default: Poisson at the
    network's arrival rate, i.e. the generative model of paper Eq. 1), and
    each task's route is sampled from the network's FSM.
    """
    if n_tasks < 1:
        raise SimulationError(f"need at least one task, got {n_tasks}")
    rng = as_generator(random_state)
    if arrival_process is None:
        arrival_process = PoissonArrivals(rate=network.arrival_rate)
    entry_times = arrival_process.sample(n_tasks, rng)
    paths = [network.sample_path(rng) for _ in range(n_tasks)]
    return simulate_tasks(network, entry_times, paths, rng)
