"""Arrival (system-entry) processes for the simulator.

The paper's model represents arrivals through the initial queue ``q0``:
interarrival times are q0's "service" times, exponential with rate
``lambda`` in the M/M/1 setting.  The simulator additionally supports
non-Poisson streams — most importantly the linearly ramping workload that
drives the web-application experiment (Section 5.2: "increasing the load
linearly over 30 min") — precisely so we can reproduce the paper's setting
of fitting a homogeneous-``lambda`` model to non-homogeneous reality.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import RandomState, as_generator


class ArrivalProcess(abc.ABC):
    """A point process on the half-line generating task entry times."""

    @abc.abstractmethod
    def sample(self, n_tasks: int, random_state: RandomState = None) -> np.ndarray:
        """Generate *n_tasks* increasing entry times starting after 0."""

    @staticmethod
    def _check_n(n_tasks: int) -> None:
        if n_tasks < 1:
            raise ConfigurationError(f"need at least one task, got {n_tasks}")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process with rate ``rate`` (the paper's default)."""

    rate: float

    def __post_init__(self) -> None:
        if not (self.rate > 0.0 and np.isfinite(self.rate)):
            raise ConfigurationError(f"arrival rate must be positive, got {self.rate}")

    def sample(self, n_tasks: int, random_state: RandomState = None) -> np.ndarray:
        self._check_n(n_tasks)
        rng = as_generator(random_state)
        gaps = rng.exponential(scale=1.0 / self.rate, size=n_tasks)
        return np.cumsum(gaps)


@dataclass(frozen=True)
class LinearRampArrivals(ArrivalProcess):
    """Non-homogeneous Poisson arrivals with linearly increasing rate.

    The instantaneous rate is ``rate(t) = rate0 + slope * t`` over the
    horizon ``[0, duration]``.  Conditioned on the task count, NHPP arrival
    times are i.i.d. draws from the normalized rate density — we exploit
    that to produce exactly *n_tasks* entries over the horizon (the web-app
    experiment fixes the request count at 5 759).
    """

    duration: float
    rate0: float = 0.0
    slope: float = 1.0

    def __post_init__(self) -> None:
        if not (self.duration > 0.0 and np.isfinite(self.duration)):
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.rate0 < 0.0 or self.slope < 0.0 or (self.rate0 == 0.0 and self.slope == 0.0):
            raise ConfigurationError(
                "need rate0 >= 0, slope >= 0, and not both zero "
                f"(got rate0={self.rate0}, slope={self.slope})"
            )

    def sample(self, n_tasks: int, random_state: RandomState = None) -> np.ndarray:
        self._check_n(n_tasks)
        rng = as_generator(random_state)
        u = rng.uniform(size=n_tasks)
        t_max = self.duration
        if self.slope == 0.0:
            times = u * t_max
        else:
            # Invert the normalized cumulative rate
            #   Lambda(t) = rate0*t + slope*t^2/2,  p = Lambda(t)/Lambda(T):
            # solve the quadratic slope/2 t^2 + rate0 t - p*Lambda(T) = 0.
            total = self.rate0 * t_max + 0.5 * self.slope * t_max * t_max
            c = -u * total
            disc = self.rate0 * self.rate0 - 2.0 * self.slope * c
            times = (-self.rate0 + np.sqrt(disc)) / self.slope
        times.sort()
        # Entry times must be strictly increasing for a clean FIFO order at q0.
        eps = 1e-12 * max(1.0, t_max)
        for i in range(1, times.size):
            if times[i] <= times[i - 1]:
                times[i] = times[i - 1] + eps
        return times


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals — the "D" arrival stream, for stress tests."""

    rate: float

    def __post_init__(self) -> None:
        if not (self.rate > 0.0 and np.isfinite(self.rate)):
            raise ConfigurationError(f"arrival rate must be positive, got {self.rate}")

    def sample(self, n_tasks: int, random_state: RandomState = None) -> np.ndarray:
        self._check_n(n_tasks)
        gap = 1.0 / self.rate
        return gap * np.arange(1, n_tasks + 1, dtype=float)


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Markov-modulated Poisson process — bursty arrivals.

    A two-state (or k-state) continuous-time Markov chain modulates the
    instantaneous Poisson rate.  This models workload spikes ("five minutes
    ago, a brief spike in workload occurred" — paper Section 1) and lets
    experiments probe inference quality under bursty load.

    Parameters
    ----------
    rates:
        Poisson rate in each modulating state.
    switch_rates:
        Rate of leaving each modulating state (holding times are
        exponential); the chain moves to a uniformly random other state.
    """

    rates: tuple[float, ...]
    switch_rates: tuple[float, ...]

    def __post_init__(self) -> None:
        rates = tuple(float(r) for r in self.rates)
        switch = tuple(float(s) for s in self.switch_rates)
        if len(rates) < 2 or len(rates) != len(switch):
            raise ConfigurationError(
                "MMPP needs >= 2 states with matching rates/switch_rates lengths"
            )
        if any(r <= 0 for r in rates) or any(s <= 0 for s in switch):
            raise ConfigurationError("MMPP rates and switch rates must be positive")
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "switch_rates", switch)

    def sample(self, n_tasks: int, random_state: RandomState = None) -> np.ndarray:
        self._check_n(n_tasks)
        rng = as_generator(random_state)
        n_states = len(self.rates)
        state = int(rng.integers(n_states))
        t = 0.0
        next_switch = rng.exponential(1.0 / self.switch_rates[state])
        times = np.empty(n_tasks)
        produced = 0
        while produced < n_tasks:
            gap = rng.exponential(1.0 / self.rates[state])
            if t + gap < next_switch:
                t += gap
                times[produced] = t
                produced += 1
            else:
                t = next_switch
                others = [s for s in range(n_states) if s != state]
                state = int(others[rng.integers(len(others))])
                next_switch = t + rng.exponential(1.0 / self.switch_rates[state])
        return times
