"""Discrete-event simulation of FIFO queueing networks.

This substrate generates every dataset used in the reproduction: it plays
the role of the paper's instrumented systems (the synthetic three-tier
networks of Section 5.1 and, via :mod:`repro.webapp`, the Rails
movie-voting application of Section 5.2).

The engine is exact for networks of single-server FIFO queues: arrivals are
processed in global time order, and each queue's departure recursion
``d = s + max(a, d_prev)`` is applied directly, which is the same recursion
the probabilistic model (paper Eq. 1) defines — so simulator output always
validates as a feasible event set.
"""

from repro.simulate.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    LinearRampArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.simulate.engine import SimulationResult, simulate_network, simulate_tasks
from repro.simulate.faults import RateChange, simulate_with_faults

__all__ = [
    "RateChange",
    "simulate_with_faults",
    "ArrivalProcess",
    "PoissonArrivals",
    "LinearRampArrivals",
    "DeterministicArrivals",
    "MMPPArrivals",
    "simulate_network",
    "simulate_tasks",
    "SimulationResult",
]
