"""Posterior predictive checks for fitted queueing networks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.network import QueueingNetwork
from repro.observation import ObservedTrace
from repro.rng import RandomState, spawn
from repro.simulate import simulate_network

#: Statistics computed from the observed portion of a trace.
STATISTIC_NAMES = (
    "response_p50",
    "response_p90",
    "response_p99",
    "interarrival_mean",
    "interarrival_scv",
)


def observed_statistics(trace: ObservedTrace) -> dict[str, float]:
    """Summary statistics of the *observed* portion of a trace.

    Uses only information a real deployment would have: end-to-end
    responses of fully observed tasks and gaps between observed entries.
    """
    skeleton = trace.skeleton
    responses = []
    entries = []
    for task_id in skeleton.task_ids:
        idx = skeleton.events_of_task(task_id)
        non_init = idx[skeleton.seq[idx] != 0]
        if non_init.size == 0 or not np.all(trace.arrival_observed[non_init]):
            continue
        if not trace.departure_is_fixed(int(idx[-1])):
            continue
        entry = float(skeleton.arrival[idx[1]])
        exit_ = float(skeleton.departure[idx[-1]])
        responses.append(exit_ - entry)
        entries.append(entry)
    if len(responses) < 3:
        raise InferenceError(
            "need at least three fully observed tasks for predictive checks"
        )
    responses = np.asarray(responses)
    gaps = np.diff(np.sort(entries))
    gaps = gaps[gaps > 0]
    scv = float(gaps.var() / gaps.mean() ** 2) if gaps.size >= 2 else float("nan")
    return {
        "response_p50": float(np.percentile(responses, 50)),
        "response_p90": float(np.percentile(responses, 90)),
        "response_p99": float(np.percentile(responses, 99)),
        "interarrival_mean": float(gaps.mean()) if gaps.size else float("nan"),
        "interarrival_scv": scv,
    }


@dataclass
class PPCResult:
    """Posterior-predictive comparison of one trace against replicates.

    Attributes
    ----------
    observed:
        Statistic values on the real (censored) trace.
    replicates:
        Statistic values per simulated replicate, keyed by statistic.
    p_values:
        Two-sided tail probabilities ``2 * min(P(rep <= obs), P(rep >= obs))``;
        small values flag statistics the fitted model cannot reproduce.
    """

    observed: dict[str, float]
    replicates: dict[str, np.ndarray]
    p_values: dict[str, float]

    def flagged(self, alpha: float = 0.05) -> list[str]:
        """Statistics whose predictive p-value falls below *alpha*."""
        return [
            name for name, p in self.p_values.items()
            if np.isfinite(p) and p < alpha
        ]

    @property
    def ok(self) -> bool:
        """True when no statistic is flagged at the 5 % level."""
        return not self.flagged()


def posterior_predictive_check(
    trace: ObservedTrace,
    fitted_network: QueueingNetwork,
    observe_fraction: float,
    n_replicates: int = 20,
    n_tasks: int | None = None,
    random_state: RandomState = None,
) -> PPCResult:
    """Compare the observed trace against replicates from the fitted model.

    Parameters
    ----------
    trace:
        The real censored trace.
    fitted_network:
        The network with StEM-estimated rates
        (``original.with_rates(stem.rates)``).
    observe_fraction:
        The observation rate used on the real trace; replicates are
        censored identically.
    n_replicates:
        Simulated replicate traces.
    n_tasks:
        Tasks per replicate (defaults to the real trace's task count).
    """
    from repro.observation import TaskSampling

    if n_tasks is None:
        n_tasks = trace.skeleton.n_tasks
    observed = observed_statistics(trace)
    reps: dict[str, list[float]] = {name: [] for name in STATISTIC_NAMES}
    streams = spawn(random_state, 2 * n_replicates)
    for r in range(n_replicates):
        sim = simulate_network(fitted_network, n_tasks, random_state=streams[2 * r])
        rep_trace = TaskSampling(fraction=observe_fraction).observe(
            sim.events, random_state=streams[2 * r + 1]
        )
        try:
            stats = observed_statistics(rep_trace)
        except InferenceError:
            continue
        for name in STATISTIC_NAMES:
            reps[name].append(stats[name])
    replicates = {name: np.asarray(vals) for name, vals in reps.items()}
    p_values = {}
    for name in STATISTIC_NAMES:
        vals = replicates[name]
        vals = vals[np.isfinite(vals)]
        obs = observed[name]
        if vals.size < 5 or not np.isfinite(obs):
            p_values[name] = float("nan")
            continue
        lo = float(np.mean(vals <= obs))
        hi = float(np.mean(vals >= obs))
        p_values[name] = min(1.0, 2.0 * min(lo, hi))
    return PPCResult(observed=observed, replicates=replicates, p_values=p_values)
