"""Model checking via posterior predictive simulation (paper §6: "model selection").

Did the fitted M/M/1 network actually explain the data?  The generative
view makes this checkable: simulate replicate traces from the fitted
model, censor them with the same observation scheme, and compare summary
statistics of the *observed* portions — response-time quantiles,
interarrival SCV — between reality and replicates.  Statistics far outside
the replicate distribution flag misspecification (wrong service family,
non-homogeneous arrivals, missing queues).
"""

from repro.model_checking.ppc import (
    PPCResult,
    observed_statistics,
    posterior_predictive_check,
)

__all__ = [
    "posterior_predictive_check",
    "observed_statistics",
    "PPCResult",
]
