"""The observed (partial) view of a trace."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ObservationError
from repro.events import EventSet


@dataclass
class ObservedTrace:
    """Everything the inference procedure is allowed to see.

    Attributes
    ----------
    skeleton:
        An :class:`~repro.events.EventSet` carrying the *structure*: tasks,
        seq numbers, queues, FSM states, and the frozen per-queue arrival
        order (from event counters).  Its time arrays hold the ground-truth
        values only at observed positions; unobserved positions contain
        ``nan`` and must be filled by an initializer before sampling.
    arrival_observed:
        Boolean mask per event; True where the arrival time is measured.
        Initial events (seq 0) are always "observed" at clock 0 by the
        paper's convention.
    departure_observed:
        Boolean mask per event; True where the departure time is measured
        *independently* of a successor arrival.  Only the last event of a
        task can be in this set — for every other event the departure is the
        successor's arrival.
    """

    skeleton: EventSet
    arrival_observed: np.ndarray
    departure_observed: np.ndarray
    _latent_arrivals: np.ndarray = field(init=False, repr=False)
    _latent_departures: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.skeleton.n_events
        self.arrival_observed = np.asarray(self.arrival_observed, dtype=bool).copy()
        self.departure_observed = np.asarray(self.departure_observed, dtype=bool).copy()
        if self.arrival_observed.shape != (n,) or self.departure_observed.shape != (n,):
            raise ObservationError("observation masks must have one entry per event")
        init = self.skeleton.seq == 0
        # Initial events arrive at clock 0 by convention: always observed.
        self.arrival_observed[init] = True
        non_last = self.skeleton.pi_inv != -1
        if np.any(self.departure_observed & non_last):
            raise ObservationError(
                "only final events of tasks can have independently observed departures; "
                "inner departures are identical to the successor's arrival"
            )
        # The identity a_e = d_{pi(e)} makes a predecessor's departure known
        # whenever the arrival is observed; no separate bookkeeping needed.
        self._latent_arrivals = np.flatnonzero(~self.arrival_observed & ~init)
        last = self.skeleton.pi_inv == -1
        self._latent_departures = np.flatnonzero(last & ~self.departure_observed)

    # ------------------------------------------------------------------
    # Latent-variable inventory.
    # ------------------------------------------------------------------

    @property
    def latent_arrival_events(self) -> np.ndarray:
        """Indices of events whose arrival must be sampled."""
        return self._latent_arrivals

    @property
    def latent_departure_events(self) -> np.ndarray:
        """Indices of task-final events whose departure must be sampled."""
        return self._latent_departures

    @property
    def n_latent(self) -> int:
        """Total latent scalar count (the quantity the sampler scales in)."""
        return self._latent_arrivals.size + self._latent_departures.size

    @property
    def n_observed_arrivals(self) -> int:
        """Number of measured (non-initial) arrival times."""
        non_init = self.skeleton.seq != 0
        return int(np.count_nonzero(self.arrival_observed & non_init))

    def observed_fraction(self) -> float:
        """Fraction of non-initial arrivals that are observed."""
        non_init = int(np.count_nonzero(self.skeleton.seq != 0))
        if non_init == 0:
            return 1.0
        return self.n_observed_arrivals / non_init

    def departure_is_fixed(self, e: int) -> bool:
        """Whether event *e*'s departure is pinned by an observation.

        True when the within-task successor's arrival is observed, or — for
        a task-final event — when the final departure itself was measured.
        """
        succ = self.skeleton.pi_inv[e]
        if succ >= 0:
            return bool(self.arrival_observed[succ])
        return bool(self.departure_observed[e])

    # ------------------------------------------------------------------
    # Construction from ground truth.
    # ------------------------------------------------------------------

    @classmethod
    def from_ground_truth(
        cls,
        events: EventSet,
        arrival_observed: np.ndarray,
        departure_observed: np.ndarray | None = None,
    ) -> "ObservedTrace":
        """Censor a ground-truth event set down to the observed view.

        Copies the structure (including the true per-queue order — exactly
        what event counters provide), keeps times at observed positions, and
        replaces every unobserved time with ``nan``.
        """
        skeleton = events.copy()
        n = events.n_events
        arrival_observed = np.asarray(arrival_observed, dtype=bool)
        if departure_observed is None:
            departure_observed = np.zeros(n, dtype=bool)
        trace = cls(
            skeleton=skeleton,
            arrival_observed=arrival_observed,
            departure_observed=np.asarray(departure_observed, dtype=bool),
        )
        # Censor: nan-out everything latent so no code can silently peek.
        skeleton.arrival[trace.latent_arrival_events] = np.nan
        for e in trace.latent_arrival_events:
            skeleton.departure[skeleton.pi[e]] = np.nan
        skeleton.departure[trace.latent_departure_events] = np.nan
        return trace

    def summary(self) -> str:
        """One-line description of the observation regime."""
        return (
            f"ObservedTrace: {self.n_observed_arrivals} arrivals observed "
            f"({100.0 * self.observed_fraction():.1f}%), "
            f"{self.n_latent} latent variables, "
            f"{self.skeleton.n_tasks} tasks, {self.skeleton.n_queues} queues"
        )
