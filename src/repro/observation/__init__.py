"""Partial observation of traces (the paper's measurement regime).

The paper's key premise is that full tracing is too expensive (123 GB/day
for the Coral cache), so only a subset of events is actually measured:

* the **arrival times** of an observed subset ``O`` of events — in the
  experiments, all arrivals of a random sample of tasks;
* the **arrival order** at every queue, which is cheap to maintain with a
  per-queue event counter transmitted alongside each observed event;
* the FSM path of every task (known protocol assumption).

:class:`~repro.observation.observed.ObservedTrace` packages exactly this
information: full structural skeleton (tasks, paths, per-queue order) with
time values only where observed.  Everything downstream — initialization,
Gibbs sampling, StEM — consumes this type, never the ground truth.
"""

from repro.observation.counters import counter_stream, unobserved_gap_counts
from repro.observation.observed import ObservedTrace
from repro.observation.scheme import (
    EventSampling,
    ObservationScheme,
    TaskSampling,
    TimeWindowSampling,
)

__all__ = [
    "ObservedTrace",
    "ObservationScheme",
    "TaskSampling",
    "EventSampling",
    "TimeWindowSampling",
    "counter_stream",
    "unobserved_gap_counts",
]
