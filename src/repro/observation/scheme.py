"""Observation schemes: which events get measured.

A scheme maps a ground-truth event set to an
:class:`~repro.observation.observed.ObservedTrace`.  The paper's synthetic
experiment uses task-level sampling ("observe all arrivals for a random
sample of tasks"); event-level and time-window sampling are provided for
the more general regimes the modeling section allows.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ObservationError
from repro.events import EventSet
from repro.observation.observed import ObservedTrace
from repro.rng import RandomState, as_generator


class ObservationScheme(abc.ABC):
    """Strategy deciding which arrivals (and final departures) are measured."""

    @abc.abstractmethod
    def observe(self, events: EventSet, random_state: RandomState = None) -> ObservedTrace:
        """Apply the scheme to ground truth and return the censored view."""

    @staticmethod
    def _check_fraction(fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ObservationError(
                f"observed fraction must lie in (0, 1], got {fraction}"
            )


@dataclass(frozen=True)
class TaskSampling(ObservationScheme):
    """Observe every arrival (and the final departure) of a random task subset.

    This is the paper's regime for both experiments.  With ``min_tasks`` the
    scheme guarantees at least that many observed tasks even at tiny
    fractions (the paper always has at least one observed task).
    """

    fraction: float
    min_tasks: int = 1

    def __post_init__(self) -> None:
        self._check_fraction(self.fraction)
        if self.min_tasks < 1:
            raise ObservationError(f"min_tasks must be >= 1, got {self.min_tasks}")

    def observe(self, events: EventSet, random_state: RandomState = None) -> ObservedTrace:
        rng = as_generator(random_state)
        task_ids = events.task_ids
        n_observe = max(self.min_tasks, int(round(self.fraction * len(task_ids))))
        n_observe = min(n_observe, len(task_ids))
        chosen = set(
            int(t) for t in rng.choice(task_ids, size=n_observe, replace=False)
        )
        arrival_observed = np.zeros(events.n_events, dtype=bool)
        departure_observed = np.zeros(events.n_events, dtype=bool)
        for task_id in chosen:
            idx = events.events_of_task(task_id)
            arrival_observed[idx] = True
            departure_observed[idx[-1]] = True
        return ObservedTrace.from_ground_truth(events, arrival_observed, departure_observed)


@dataclass(frozen=True)
class EventSampling(ObservationScheme):
    """Observe each non-initial arrival independently with probability ``fraction``.

    The most general regime of Section 3 ("we measure the arrival times from
    a subset of events O ⊂ E"): observations scatter across tasks, so most
    tasks are partially observed — the hard case for initialization.
    """

    fraction: float
    observe_final_departures: bool = False

    def __post_init__(self) -> None:
        self._check_fraction(self.fraction)

    def observe(self, events: EventSet, random_state: RandomState = None) -> ObservedTrace:
        rng = as_generator(random_state)
        non_init = events.seq != 0
        arrival_observed = non_init & (rng.uniform(size=events.n_events) < self.fraction)
        if not np.any(arrival_observed):
            # Guarantee at least one real observation so the MLE is defined.
            candidates = np.flatnonzero(non_init)
            arrival_observed[rng.choice(candidates)] = True
        departure_observed = np.zeros(events.n_events, dtype=bool)
        if self.observe_final_departures:
            last = events.pi_inv == -1
            departure_observed = (
                last & (rng.uniform(size=events.n_events) < self.fraction)
            )
        return ObservedTrace.from_ground_truth(events, arrival_observed, departure_observed)


@dataclass(frozen=True)
class TimeWindowSampling(ObservationScheme):
    """Observe all arrivals inside a clock window ``[start, end]``.

    Models retrospective diagnosis ("five minutes ago, a brief spike
    occurred") where detailed tracing was only enabled for a while.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (np.isfinite(self.start) and np.isfinite(self.end) and self.start < self.end):
            raise ObservationError(
                f"need finite start < end, got [{self.start}, {self.end}]"
            )

    def observe(self, events: EventSet, random_state: RandomState = None) -> ObservedTrace:
        non_init = events.seq != 0
        inside = (events.arrival >= self.start) & (events.arrival <= self.end)
        arrival_observed = non_init & inside
        if not np.any(arrival_observed):
            raise ObservationError(
                f"no arrivals fall inside the window [{self.start}, {self.end}]"
            )
        last = events.pi_inv == -1
        departure_observed = last & (events.departure >= self.start) & (
            events.departure <= self.end
        )
        return ObservedTrace.from_ground_truth(events, arrival_observed, departure_observed)
