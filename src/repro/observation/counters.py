"""Per-queue event counters (paper Section 3).

The sampler's fixed-arrival-order assumption "is easy to measure in actual
systems, by maintaining an event counter that is transmitted only when an
event is observed".  These helpers compute exactly what such a counter
stream would contain, and verify that it suffices to reconstruct the
arrival order information the inference uses.
"""

from __future__ import annotations

import numpy as np

from repro.events import EventSet
from repro.observation.observed import ObservedTrace


def counter_stream(trace: ObservedTrace) -> dict[int, list[tuple[int, int]]]:
    """The (counter_value, event_index) pairs a real system would transmit.

    For each queue, an on-host counter increments on every arrival; when an
    observed event arrives, the current counter value is shipped with the
    measurement.  The returned mapping contains, per queue, the transmitted
    ``(counter_value, event)`` pairs in arrival order.
    """
    skeleton = trace.skeleton
    out: dict[int, list[tuple[int, int]]] = {}
    for q in range(skeleton.n_queues):
        pairs = []
        for position, e in enumerate(skeleton.queue_order(q)):
            if trace.arrival_observed[e]:
                pairs.append((position, int(e)))
        out[q] = pairs
    return out


def unobserved_gap_counts(trace: ObservedTrace) -> dict[int, list[int]]:
    """How many unobserved events fall between consecutive observations.

    This is the paper's phrasing of the counter assumption: "between every
    two observed events, we know how many unobserved events occurred".  The
    list for each queue has one more entry than there are observed events at
    that queue (leading and trailing gaps included).
    """
    skeleton = trace.skeleton
    out: dict[int, list[int]] = {}
    for q in range(skeleton.n_queues):
        gaps = []
        run = 0
        for e in skeleton.queue_order(q):
            if trace.arrival_observed[e]:
                gaps.append(run)
                run = 0
            else:
                run += 1
        gaps.append(run)
        out[q] = gaps
    return out


def order_recoverable_from_counters(trace: ObservedTrace, events: EventSet) -> bool:
    """Sanity check: the frozen order matches the ground-truth arrival order.

    Returns True when, at every queue, the skeleton's frozen order equals
    the order of the true arrival times — i.e. the counter mechanism carries
    exactly the information the sampler assumes.
    """
    for q in range(events.n_queues):
        true_members = events.queue_order(q)
        frozen_members = trace.skeleton.queue_order(q)
        if not np.array_equal(true_members, frozen_members):
            return False
    return True
