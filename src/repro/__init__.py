"""repro — Probabilistic Inference in Queueing Networks.

A full reproduction of Sutton & Jordan, "Probabilistic Inference in
Queueing Networks" (2008): networks of M/M/1 FIFO queues viewed as
latent-variable probabilistic models, with a Gibbs sampler over unobserved
arrival/departure times and stochastic EM for parameter estimation from
incomplete traces — plus the substrates the paper relies on (a
discrete-event network simulator, observation schemes, classical queueing
baselines) and the performance-fault-localization application that
motivates it.

Quickstart
----------
>>> from repro import (
...     build_three_tier_network, simulate_network, TaskSampling, run_stem,
... )
>>> net = build_three_tier_network(arrival_rate=10.0, servers_per_tier=(1, 2, 4))
>>> sim = simulate_network(net, n_tasks=200, random_state=0)
>>> trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=1)
>>> result = run_stem(trace, n_iterations=50, random_state=2)
>>> result.mean_service_times().round(2)  # doctest: +SKIP
"""

from repro.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Gamma,
    HyperExponential,
    LogNormal,
    ServiceDistribution,
    TruncatedExponential,
    UniformService,
)
from repro.events import EventSet, load_jsonl, save_jsonl
from repro.fsm import ProbabilisticFSM, TaskPath, chain_fsm, load_balanced_fsm, tiered_fsm
from repro.inference import (
    GibbsSampler,
    MCEMResult,
    MultiChainPosterior,
    MultiChainSampler,
    PiecewiseExponential,
    PosteriorSummary,
    StEMResult,
    estimate_posterior,
    heuristic_initialize,
    lp_initialize,
    mle_rates,
    run_mcem,
    run_stem,
)
from repro.network import (
    QueueingNetwork,
    QueueSpec,
    build_load_balanced_network,
    build_tandem_network,
    build_three_tier_network,
    paper_synthetic_structures,
)
from repro.prediction import (
    predict_response_curve,
    saturation_point,
    simulate_at_load,
)
from repro.observation import (
    EventSampling,
    ObservedTrace,
    TaskSampling,
    TimeWindowSampling,
)
from repro.simulate import (
    LinearRampArrivals,
    MMPPArrivals,
    PoissonArrivals,
    RateChange,
    SimulationResult,
    simulate_network,
    simulate_tasks,
    simulate_with_faults,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # distributions
    "ServiceDistribution",
    "Exponential",
    "TruncatedExponential",
    "Erlang",
    "HyperExponential",
    "Gamma",
    "LogNormal",
    "Deterministic",
    "UniformService",
    "Empirical",
    # fsm
    "ProbabilisticFSM",
    "TaskPath",
    "chain_fsm",
    "tiered_fsm",
    "load_balanced_fsm",
    # network
    "QueueSpec",
    "QueueingNetwork",
    "build_tandem_network",
    "build_three_tier_network",
    "build_load_balanced_network",
    "paper_synthetic_structures",
    # events
    "EventSet",
    "save_jsonl",
    "load_jsonl",
    # simulate
    "simulate_network",
    "simulate_tasks",
    "simulate_with_faults",
    "RateChange",
    "SimulationResult",
    "PoissonArrivals",
    "LinearRampArrivals",
    "MMPPArrivals",
    # observation
    "ObservedTrace",
    "TaskSampling",
    "EventSampling",
    "TimeWindowSampling",
    # inference
    "GibbsSampler",
    "MultiChainPosterior",
    "MultiChainSampler",
    "PiecewiseExponential",
    "run_stem",
    "StEMResult",
    "run_mcem",
    "MCEMResult",
    "estimate_posterior",
    "PosteriorSummary",
    "mle_rates",
    "heuristic_initialize",
    "lp_initialize",
    # prediction
    "predict_response_curve",
    "saturation_point",
    "simulate_at_load",
]
