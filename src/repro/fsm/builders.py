"""Builders for the FSM topologies used in the paper's experiments.

All builders return a :class:`~repro.fsm.state_machine.ProbabilisticFSM`
over ``n_queues`` queues (queue 0 reserved for system arrivals).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.fsm.state_machine import ProbabilisticFSM


def chain_fsm(queue_sequence: Sequence[int], n_queues: int) -> ProbabilisticFSM:
    """A deterministic chain: every task visits *queue_sequence* in order.

    This models a tandem network (e.g. network -> server -> database) with
    no branching; it is the simplest sanity-check topology.
    """
    queue_sequence = [int(q) for q in queue_sequence]
    _check_queue_ids(queue_sequence, n_queues)
    length = len(queue_sequence)
    n_states = length + 2  # initial + one per visit + final
    transition = np.zeros((n_states, n_states))
    emission = np.zeros((n_states, n_queues))
    for i in range(length):
        transition[i, i + 1] = 1.0
        emission[i + 1, queue_sequence[i]] = 1.0
    transition[length, length + 1] = 1.0
    transition[length + 1, length + 1] = 1.0
    return ProbabilisticFSM(
        transition=transition, emission=emission, initial_state=0, final_state=n_states - 1
    )


def tiered_fsm(
    tiers: Sequence[Sequence[int]],
    n_queues: int,
    weights: Sequence[Sequence[float]] | None = None,
) -> ProbabilisticFSM:
    """A multi-tier service: one queue chosen per tier, tiers in order.

    This is the paper's three-tier topology (Figure 1, Section 5.1): each
    tier is a set of replicated servers and a task is dispatched to exactly
    one server per tier.

    Parameters
    ----------
    tiers:
        For each tier, the queue indices of its replicated servers.
    n_queues:
        Total queue count including the reserved initial queue 0.
    weights:
        Optional per-tier dispatch weights (load-balancer behaviour).
        Defaults to uniform within each tier.
    """
    if not tiers or any(len(t) == 0 for t in tiers):
        raise ConfigurationError("every tier needs at least one queue")
    flat = [int(q) for tier in tiers for q in tier]
    _check_queue_ids(flat, n_queues)
    if weights is None:
        weights = [[1.0] * len(tier) for tier in tiers]
    if len(weights) != len(tiers) or any(len(w) != len(t) for w, t in zip(weights, tiers)):
        raise ConfigurationError("weights must mirror the tier structure")
    n_tiers = len(tiers)
    n_states = n_tiers + 2
    transition = np.zeros((n_states, n_states))
    emission = np.zeros((n_states, n_queues))
    for i, (tier, tier_weights) in enumerate(zip(tiers, weights)):
        transition[i, i + 1] = 1.0
        w = np.asarray(tier_weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ConfigurationError(f"tier {i} weights must be nonnegative with positive sum")
        emission[i + 1, list(tier)] = w / w.sum()
    transition[n_tiers, n_tiers + 1] = 1.0
    transition[n_tiers + 1, n_tiers + 1] = 1.0
    return ProbabilisticFSM(
        transition=transition, emission=emission, initial_state=0, final_state=n_states - 1
    )


def load_balanced_fsm(
    server_queues: Sequence[int],
    n_queues: int,
    weights: Sequence[float] | None = None,
    pre_queues: Sequence[int] = (),
    post_queues: Sequence[int] = (),
) -> ProbabilisticFSM:
    """Fixed pre-queues, a weighted choice of server, fixed post-queues.

    This is the web-application topology of paper Section 5.2: a network
    queue, then one of the replicated web servers chosen by the (possibly
    skewed) load balancer, then the database, then the network queue again.
    """
    tiers: list[Sequence[int]] = [[q] for q in pre_queues]
    tier_weights: list[Sequence[float]] = [[1.0] for _ in pre_queues]
    tiers.append(list(server_queues))
    tier_weights.append(
        list(weights) if weights is not None else [1.0] * len(server_queues)
    )
    for q in post_queues:
        tiers.append([q])
        tier_weights.append([1.0])
    return tiered_fsm(tiers, n_queues, weights=tier_weights)


def probabilistic_branch_fsm(
    branch_queues: Sequence[int],
    branch_probs: Sequence[float],
    n_queues: int,
    repeat_prob: float = 0.0,
) -> ProbabilisticFSM:
    """A single dispatch state that picks one branch queue, optionally looping.

    With ``repeat_prob > 0`` a task may visit several branch queues before
    completing — a geometric number of visits, exercising variable-length
    paths (e.g. retry loops or multi-round RPC patterns).  This goes beyond
    the paper's fixed-length experiment paths and stress-tests the event
    graph machinery.
    """
    branch_queues = [int(q) for q in branch_queues]
    _check_queue_ids(branch_queues, n_queues)
    probs = np.asarray(branch_probs, dtype=float)
    if probs.shape != (len(branch_queues),) or np.any(probs < 0) or probs.sum() <= 0:
        raise ConfigurationError("branch_probs must be nonnegative and match branch_queues")
    if not 0.0 <= repeat_prob < 1.0:
        raise ConfigurationError(f"repeat_prob must be in [0, 1), got {repeat_prob}")
    probs = probs / probs.sum()
    # States: 0 initial, 1 dispatch, 2 final.
    transition = np.zeros((3, 3))
    transition[0, 1] = 1.0
    transition[1, 1] = repeat_prob
    transition[1, 2] = 1.0 - repeat_prob
    transition[2, 2] = 1.0
    emission = np.zeros((3, n_queues))
    emission[1, branch_queues] = probs
    return ProbabilisticFSM(transition=transition, emission=emission, initial_state=0, final_state=2)


def _check_queue_ids(queue_ids: Sequence[int], n_queues: int) -> None:
    bad = [q for q in queue_ids if not 1 <= q < n_queues]
    if bad:
        raise ConfigurationError(
            f"queue indices must lie in [1, {n_queues - 1}] (0 is the initial queue); got {bad}"
        )
