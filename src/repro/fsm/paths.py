"""Task paths: the realized (state, queue) sequence of one task."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TaskPath:
    """The sequence of FSM states and queue visits of a single task.

    ``states[i]`` is the FSM state the task entered at its i-th transition
    and ``queues[i]`` the queue that state emitted.  The initial-queue event
    (system entry at ``q0``) and the final absorbing state are *not* part of
    the path; a path of length L corresponds to L real queue visits and
    hence L non-initial events in the event graph.
    """

    states: tuple[int, ...]
    queues: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.states) != len(self.queues):
            raise ConfigurationError(
                f"states and queues must have equal length, got "
                f"{len(self.states)} vs {len(self.queues)}"
            )
        if any(q <= 0 for q in self.queues):
            raise ConfigurationError(
                "queue 0 is the reserved initial queue; path queues must be >= 1"
            )

    def __len__(self) -> int:
        return len(self.states)

    @property
    def n_events(self) -> int:
        """Number of events this path contributes, including the initial event."""
        return len(self.queues) + 1

    @classmethod
    def from_queues(cls, queues: tuple[int, ...] | list[int]) -> "TaskPath":
        """Build a path whose FSM states mirror the queue sequence.

        Convenient when the routing is deterministic and callers only care
        about which queues are visited; state i is synthesized as i + 1
        (state 0 being the conventional initial state).
        """
        queues = tuple(int(q) for q in queues)
        return cls(states=tuple(range(1, len(queues) + 1)), queues=queues)
