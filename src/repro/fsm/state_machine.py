"""The probabilistic FSM that routes tasks through the network.

State conventions
-----------------
* States are integers ``0 .. n_states - 1``.
* State ``initial_state`` is where every task starts; it corresponds to the
  system-entry event at the designated initial queue ``q0`` (queue index 0).
* State ``final_state`` is absorbing; entering it completes the task.
* Emissions map each *non-terminal, non-initial* state to a distribution
  over real queues (indices ``1 .. n_queues - 1``; queue 0 is reserved for
  ``q0`` and is never emitted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.fsm.paths import TaskPath
from repro.rng import RandomState, as_generator

_ATOL = 1e-9


@dataclass(frozen=True)
class ProbabilisticFSM:
    """A finite state machine with stochastic transitions and queue emissions.

    Parameters
    ----------
    transition:
        Row-stochastic array of shape ``(n_states, n_states)``;
        ``transition[s, s']`` is ``p(sigma' = s' | sigma = s)``.  The final
        state's row must be absorbing (all mass on itself).
    emission:
        Array of shape ``(n_states, n_queues)``; ``emission[s, q]`` is
        ``p(q | sigma = s)``.  Column 0 (the initial queue ``q0``) must be
        zero everywhere; rows for the initial and final states are ignored.
    initial_state:
        The state every task starts in.
    final_state:
        The absorbing completion state.
    """

    transition: np.ndarray
    emission: np.ndarray
    initial_state: int = 0
    final_state: int = -1
    _cum_transition: np.ndarray = field(init=False, repr=False, compare=False)
    _cum_emission: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        transition = np.asarray(self.transition, dtype=float)
        emission = np.asarray(self.emission, dtype=float)
        if transition.ndim != 2 or transition.shape[0] != transition.shape[1]:
            raise ConfigurationError(f"transition must be square, got shape {transition.shape}")
        n_states = transition.shape[0]
        if n_states < 2:
            raise ConfigurationError("an FSM needs at least an initial and a final state")
        final = self.final_state % n_states
        initial = self.initial_state % n_states
        object.__setattr__(self, "final_state", final)
        object.__setattr__(self, "initial_state", initial)
        if initial == final:
            raise ConfigurationError("initial and final states must differ")
        if emission.ndim != 2 or emission.shape[0] != n_states:
            raise ConfigurationError(
                f"emission must have shape (n_states={n_states}, n_queues), got {emission.shape}"
            )
        if emission.shape[1] < 2:
            raise ConfigurationError("need at least one real queue besides the initial queue q0")
        if np.any(transition < -_ATOL) or np.any(emission < -_ATOL):
            raise ConfigurationError("probabilities must be nonnegative")
        row_sums = transition.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ConfigurationError(f"transition rows must sum to 1, got sums {row_sums}")
        if transition[final, final] < 1.0 - 1e-9:
            raise ConfigurationError("the final state must be absorbing")
        if np.any(emission[:, 0] > _ATOL):
            raise ConfigurationError("queue 0 is the reserved initial queue and cannot be emitted")
        for s in range(n_states):
            if s in (initial, final):
                continue
            if not np.isclose(emission[s].sum(), 1.0, atol=1e-6):
                raise ConfigurationError(
                    f"emission row for state {s} must sum to 1, got {emission[s].sum()}"
                )
        transition = np.clip(transition, 0.0, None)
        transition /= transition.sum(axis=1, keepdims=True)
        emission = np.clip(emission, 0.0, None)
        object.__setattr__(self, "transition", transition)
        object.__setattr__(self, "emission", emission)
        object.__setattr__(self, "_cum_transition", np.cumsum(transition, axis=1))
        object.__setattr__(self, "_cum_emission", np.cumsum(emission, axis=1))
        if not self._final_state_reachable():
            raise ConfigurationError("the final state is unreachable from the initial state")

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of FSM states."""
        return self.transition.shape[0]

    @property
    def n_queues(self) -> int:
        """Number of queues including the reserved initial queue 0."""
        return self.emission.shape[1]

    def _final_state_reachable(self) -> bool:
        """Check the final state is reachable from the initial state."""
        reached = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            s = frontier.pop()
            for t in np.flatnonzero(self.transition[s] > 0.0):
                t = int(t)
                if t not in reached:
                    reached.add(t)
                    frontier.append(t)
        return self.final_state in reached

    def expected_visits(self) -> np.ndarray:
        """Expected number of visits to each *queue* per task.

        Solves the absorbing-chain visit equations: with ``T`` the transient
        sub-matrix of the transition matrix, expected state visits are
        ``e_init (I - T)^{-1}`` and queue visits follow through the emission
        matrix.  Used by the analytic Jackson-network baseline to compute
        per-queue arrival rates ``lambda_q = lambda * visits_q``.
        """
        transient = [s for s in range(self.n_states) if s != self.final_state]
        idx = {s: i for i, s in enumerate(transient)}
        t_mat = self.transition[np.ix_(transient, transient)]
        start = np.zeros(len(transient))
        start[idx[self.initial_state]] = 1.0
        visits_states = np.linalg.solve((np.eye(len(transient)) - t_mat).T, start)
        queue_visits = np.zeros(self.n_queues)
        for s in transient:
            if s == self.initial_state:
                continue
            queue_visits += visits_states[idx[s]] * self.emission[s]
        return queue_visits

    # ------------------------------------------------------------------
    # Sampling and scoring.
    # ------------------------------------------------------------------

    def sample_path(
        self,
        random_state: RandomState = None,
        max_length: int = 100_000,
    ) -> TaskPath:
        """Sample one task path: a sequence of (state, queue) visits.

        The returned path excludes the initial and final states; its i-th
        entry is the i-th *real* queue visit of the task.

        Raises
        ------
        ConfigurationError
            If the path exceeds *max_length* transitions, which indicates a
            (numerically) non-absorbing FSM.
        """
        rng = as_generator(random_state)
        states: list[int] = []
        queues: list[int] = []
        state = self.initial_state
        for _ in range(max_length):
            u = rng.uniform()
            state = int(np.searchsorted(self._cum_transition[state], u, side="right"))
            state = min(state, self.n_states - 1)
            if state == self.final_state:
                return TaskPath(states=tuple(states), queues=tuple(queues))
            u = rng.uniform()
            queue = int(np.searchsorted(self._cum_emission[state], u, side="right"))
            queue = min(queue, self.n_queues - 1)
            states.append(state)
            queues.append(queue)
        raise ConfigurationError(
            f"path did not reach the final state within {max_length} transitions"
        )

    def path_log_prob(self, path: TaskPath) -> float:
        """Log-probability of a complete task path (including final absorption)."""
        log_p = 0.0
        prev = self.initial_state
        for state, queue in zip(path.states, path.queues):
            p_trans = self.transition[prev, state]
            p_emit = self.emission[state, queue]
            if p_trans <= 0.0 or p_emit <= 0.0:
                return -np.inf
            log_p += float(np.log(p_trans) + np.log(p_emit))
            prev = state
        p_final = self.transition[prev, self.final_state]
        if p_final <= 0.0:
            return -np.inf
        return log_p + float(np.log(p_final))

    def iter_sample_paths(
        self, n: int, random_state: RandomState = None
    ) -> Iterator[TaskPath]:
        """Yield *n* independent task paths from a single stream."""
        rng = as_generator(random_state)
        for _ in range(n):
            yield self.sample_path(rng)
