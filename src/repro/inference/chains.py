"""Parallel multi-chain Gibbs inference with cross-chain diagnostics.

Deterministic dependencies are "known to impair the performance of Gibbs
samplers" (paper Section 3).  The only credible way to detect the resulting
non-convergence — and the cheapest way to use more than one core — is to
run several independent chains from over-dispersed starting points and
compare them.  This module provides exactly that:

* :class:`MultiChainSampler` runs ``K`` independent
  :class:`~repro.inference.gibbs.GibbsSampler` chains, serially or on a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* starting states are over-dispersed by construction — chain 0 starts from
  the heuristic initializer at the given rates, chain 1 from the LP
  initializer (when the trace is small enough for it), and every further
  chain from the heuristic initializer at multiplicatively *jittered*
  rates, which spreads the initial latent times while keeping every start
  feasible;
* every chain derives its generator from one
  :class:`numpy.random.SeedSequence` spawn tree, so results are bitwise
  identical at any worker count — parallelism only changes scheduling;
* the result, :class:`MultiChainPosterior`, stacks the per-chain
  :class:`~repro.inference.gibbs.PosteriorSamples` and exposes per-queue
  split-R̂ and cross-chain ESS from :mod:`repro.inference.diagnostics`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.inference.diagnostics import multichain_ess, split_r_hat
from repro.inference.gibbs import GibbsSampler, PosteriorSamples
from repro.inference.init_heuristic import (
    heuristic_initialize,
    initial_rates_from_observed,
)
from repro.inference.init_lp import lp_initialize
from repro.observation import ObservedTrace
from repro.rng import RandomState, as_seed_sequence

#: Chain summaries R̂ / ESS can be computed over.
_KINDS = ("waiting", "service", "log_joint")


def chain_seed_sequences(
    random_state: RandomState, n_chains: int
) -> list[tuple[np.random.SeedSequence, np.random.SeedSequence]]:
    """Derive each chain's ``(init, sweep)`` seed pair from one master seed.

    The master seed spawns one child per chain and each child spawns an
    initialization stream (rate jitter) and a sweep stream (Gibbs moves).
    Everything any chain ever draws is a pure function of the master seed
    and the chain index, which is what makes multi-chain runs bitwise
    reproducible at any worker count.  A caller-supplied ``Generator`` is
    never drawn from (its seed sequence is spawned instead), so sharing
    one with other components leaves their streams untouched.
    """
    master = as_seed_sequence(random_state)
    return [tuple(child.spawn(2)) for child in master.spawn(n_chains)]


def jittered_rates(
    rates: np.ndarray, jitter: float, init_seed: np.random.SeedSequence
) -> np.ndarray:
    """The over-dispersed chains' initializer rates.

    Multiplies each rate by ``exp(jitter * N(0, 1))`` drawn from the
    chain's dedicated init stream — a different feasible corner of the
    constraint polytope per chain, shared by :class:`MultiChainSampler`
    and the StEM/MCEM multi-chain E-steps.
    """
    rng = np.random.Generator(np.random.PCG64(init_seed))
    return np.asarray(rates, dtype=float) * np.exp(
        jitter * rng.standard_normal(np.asarray(rates).size)
    )


@dataclass
class ChainSpec:
    """Everything one worker needs to run one chain (picklable)."""

    index: int
    trace: ObservedTrace
    rates: np.ndarray
    init_method: str
    init_seed: np.random.SeedSequence
    sweep_seed: np.random.SeedSequence
    jitter: float
    n_samples: int
    thin: int
    burn_in: int
    shuffle: bool
    batch_draws: bool
    kernel: str = "array"
    shards: int = 1


def _initialize_chain(spec: ChainSpec):
    """Build the chain's (possibly jittered) init rates and starting state."""
    rates = np.asarray(spec.rates, dtype=float)
    if spec.init_method == "heuristic":
        return rates, heuristic_initialize(spec.trace, rates)
    if spec.init_method == "lp":
        return rates, lp_initialize(spec.trace, rates)
    if spec.init_method == "heuristic-jitter":
        jittered = jittered_rates(rates, spec.jitter, spec.init_seed)
        return jittered, heuristic_initialize(spec.trace, jittered)
    raise InferenceError(f"unknown chain init method {spec.init_method!r}")


def run_chain(spec: ChainSpec) -> PosteriorSamples:
    """Run one complete chain: initialize, burn in, collect.

    Module-level so a :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; the sampler always samples at ``spec.rates`` — the jitter
    only over-disperses the *starting state*, not the target distribution.
    """
    _, state = _initialize_chain(spec)
    sampler = GibbsSampler(
        spec.trace,
        state,
        spec.rates,
        random_state=spec.sweep_seed,
        shuffle=spec.shuffle,
        batch_draws=spec.batch_draws,
        kernel=spec.kernel,
        shards=spec.shards,
    )
    return sampler.collect(
        n_samples=spec.n_samples, thin=spec.thin, burn_in=spec.burn_in
    )


class MultiChainSampler:
    """Run ``K`` independent Gibbs chains and pool their posteriors.

    Parameters
    ----------
    trace:
        The observed trace (shared, read-only, by every chain).
    rates:
        Fixed rate vector all chains sample at (e.g. a StEM estimate).
        Defaults to the crude observed-response initialization.
    n_chains:
        Number of independent chains ``K``.
    random_state:
        Master seed; see :func:`chain_seed_sequences`.
    jitter:
        Log-normal sigma of the per-chain initializer-rate jitter used for
        the over-dispersed chains (chains 2+, and chain 1 when the trace
        is too large for the LP initializer).
    lp_size_limit:
        Largest trace (in events) for which chain 1 uses the exact LP
        initializer.
    shuffle, batch_draws:
        Passed to every :class:`~repro.inference.gibbs.GibbsSampler`;
        batched draws default on here because the multi-chain stream has
        no historical single-chain run to stay bit-compatible with.
    kernel:
        Sweep engine for every chain (see
        :class:`~repro.inference.gibbs.GibbsSampler`).
    shards:
        Sharded sweeps within every chain (see
        :mod:`repro.inference.shard`): each chain partitions the trace's
        tasks, sweeps shard interiors on restricted array kernels and
        resamples boundary moves in a master pass — same posterior, and
        ``shards=1`` is exactly the plain array kernel.
    """

    def __init__(
        self,
        trace: ObservedTrace,
        rates: np.ndarray | None = None,
        n_chains: int = 4,
        random_state: RandomState = None,
        jitter: float = 0.15,
        lp_size_limit: int = 6000,
        shuffle: bool = True,
        batch_draws: bool = True,
        kernel: str = "array",
        shards: int = 1,
    ) -> None:
        if n_chains < 1:
            raise InferenceError(f"need at least one chain, got {n_chains}")
        if jitter < 0.0:
            raise InferenceError(f"jitter must be nonnegative, got {jitter}")
        self.trace = trace
        if rates is None:
            rates = initial_rates_from_observed(trace)
        self.rates = np.asarray(rates, dtype=float).copy()
        self.n_chains = int(n_chains)
        self.jitter = float(jitter)
        self.shuffle = shuffle
        self.batch_draws = batch_draws
        self.kernel = kernel
        if shards < 1:
            raise InferenceError(f"need at least one shard, got {shards}")
        self.shards = int(shards)
        self.seed_pairs = chain_seed_sequences(random_state, self.n_chains)
        self.init_methods = [
            self._init_method_for(k, trace.skeleton.n_events, lp_size_limit)
            for k in range(self.n_chains)
        ]

    @staticmethod
    def _init_method_for(chain: int, n_events: int, lp_size_limit: int) -> str:
        if chain == 0:
            return "heuristic"
        if chain == 1 and n_events <= lp_size_limit:
            return "lp"
        return "heuristic-jitter"

    def chain_specs(
        self, n_samples: int, thin: int = 1, burn_in: int = 0
    ) -> list[ChainSpec]:
        """The fully resolved per-chain work descriptions."""
        return [
            ChainSpec(
                index=k,
                trace=self.trace,
                rates=self.rates,
                init_method=self.init_methods[k],
                init_seed=init_seed,
                sweep_seed=sweep_seed,
                jitter=self.jitter,
                n_samples=n_samples,
                thin=thin,
                burn_in=burn_in,
                shuffle=self.shuffle,
                batch_draws=self.batch_draws,
                kernel=self.kernel,
                shards=self.shards,
            )
            for k, (init_seed, sweep_seed) in enumerate(self.seed_pairs)
        ]

    def collect(
        self,
        n_samples: int,
        thin: int = 1,
        burn_in: int = 0,
        workers: int | None = None,
    ) -> "MultiChainPosterior":
        """Run every chain and stack the results.

        Parameters
        ----------
        n_samples, thin, burn_in:
            Per-chain schedule (see :meth:`GibbsSampler.collect`).
        workers:
            ``None`` or ``1`` runs the chains serially in-process; larger
            values fan the chains out over a process pool.  The results
            are bitwise identical either way.
        """
        if n_samples < 1 or thin < 1 or burn_in < 0:
            raise InferenceError("need n_samples >= 1, thin >= 1, burn_in >= 0")
        specs = self.chain_specs(n_samples, thin=thin, burn_in=burn_in)
        if workers is not None and workers > 1:
            with ProcessPoolExecutor(max_workers=min(workers, len(specs))) as pool:
                chains = list(pool.map(run_chain, specs))
        else:
            chains = [run_chain(spec) for spec in specs]
        return MultiChainPosterior(chains=chains, init_methods=list(self.init_methods))


@dataclass
class MultiChainPosterior:
    """Stacked posterior draws from ``K`` independent chains.

    Attributes
    ----------
    chains:
        One :class:`~repro.inference.gibbs.PosteriorSamples` per chain,
        all with the same schedule.
    init_methods:
        How each chain's starting state was built (diagnostic provenance).
    """

    chains: list[PosteriorSamples]
    init_methods: list[str]

    @property
    def n_chains(self) -> int:
        """Number of chains ``K``."""
        return len(self.chains)

    @property
    def n_samples(self) -> int:
        """Retained draws per chain."""
        return self.chains[0].n_samples

    @property
    def n_queues(self) -> int:
        """Number of queues (including the arrival pseudo-queue 0)."""
        return self.chains[0].mean_service.shape[1]

    def stacked(self, kind: str = "waiting") -> np.ndarray:
        """Per-chain draws as one array.

        Shape ``(K, n_samples, n_queues)`` for ``"waiting"``/``"service"``
        and ``(K, n_samples)`` for ``"log_joint"``.
        """
        if kind not in _KINDS:
            raise InferenceError(f"kind must be one of {_KINDS}, got {kind!r}")
        if kind == "log_joint":
            return np.stack([c.log_joint for c in self.chains])
        attr = "mean_waiting" if kind == "waiting" else "mean_service"
        return np.stack([getattr(c, attr) for c in self.chains])

    def pooled(self) -> PosteriorSamples:
        """All chains concatenated into one sample set (post-R̂ use only)."""
        return PosteriorSamples(
            mean_service=np.concatenate([c.mean_service for c in self.chains]),
            mean_waiting=np.concatenate([c.mean_waiting for c in self.chains]),
            total_service=np.concatenate([c.total_service for c in self.chains]),
            log_joint=np.concatenate([c.log_joint for c in self.chains]),
            events_per_queue=self.chains[0].events_per_queue,
        )

    def split_r_hat(self, kind: str = "waiting") -> np.ndarray:
        """Per-queue split-R̂ (scalar 0-d array for ``"log_joint"``)."""
        return self._per_queue(split_r_hat, kind)

    def ess(self, kind: str = "waiting") -> np.ndarray:
        """Per-queue cross-chain effective sample size."""
        return self._per_queue(multichain_ess, kind)

    def _per_queue(self, statistic, kind: str) -> np.ndarray:
        stacked = self.stacked(kind)
        if stacked.ndim == 2:
            return np.asarray(statistic(stacked))
        return np.array(
            [statistic(stacked[:, :, q]) for q in range(stacked.shape[2])]
        )

    def max_r_hat(self, kind: str = "waiting") -> float:
        """The worst finite per-queue split-R̂ (the headline statistic)."""
        values = np.atleast_1d(self.split_r_hat(kind))
        finite = values[np.isfinite(values)]
        return float(finite.max()) if finite.size else float("nan")

    def summary(self) -> str:
        """One-line convergence report across all chains."""
        ess = np.atleast_1d(self.ess("waiting"))
        finite_ess = ess[np.isfinite(ess)]
        min_ess = float(finite_ess.min()) if finite_ess.size else float("nan")
        return (
            f"MultiChainPosterior: {self.n_chains} chains x {self.n_samples} "
            f"samples, max split-R^hat(waiting) = {self.max_r_hat('waiting'):.4f}, "
            f"min ESS(waiting) = {min_ess:.1f}"
        )
