"""Array-native vectorized Gibbs sweep kernel.

The object sweep (:mod:`repro.inference.gibbs` with ``kernel="object"``)
spends most of its time on per-move Python work: every single-site move
builds a fresh :class:`~repro.inference.piecewise.PiecewiseExponential`
(lists, a constructor, three scalar ``log``/``expm1`` calls) even though the
conditional of paper Eq. (2)–(4) always has the same shape — at most three
exponential pieces between the constraint bounds ``(L, U)`` with breakpoints
``A, B`` and masses ``Z1, Z2, Z3``.

This module flattens that structure into a struct-of-arrays engine:

* the static neighbor indices of every move (the Markov blankets of paper
  Figure 2) are taken from the PR-1 blanket caches and stored as int64
  columns;
* moves are partitioned once into **conflict-free batches** by greedy
  coloring of the read/write dependency graph, so that within a batch no
  move writes a time any other move reads — updating a batch simultaneously
  is *provably identical* to updating it sequentially, which preserves the
  sequential-scan semantics of the Gibbs kernel exactly (a sweep is a
  systematic scan in batch-concatenation order);
* per batch, the bounds ``L``/``U``, breakpoints, piece slopes, the
  ``Z1..Z3`` log-masses and the inverse-CDF draw are all evaluated with
  vectorized ``numpy`` kernels (``logaddexp``-style reductions,
  ``expm1``/``log1p`` inversions) — no per-move object allocation at all.

The per-move arithmetic reproduces
:func:`~repro.inference.conditional.arrival_conditional` /
:func:`~repro.inference.conditional.final_departure_conditional` formula for
formula (same branch conditions, same ``_FLAT_EPS`` threshold), which is
what the equivalence suite in ``tests/inference/test_kernel.py`` pins to
1e-10 per move.  The random *stream* differs from the object sweep (draws
are batched and batch order is shuffled instead of move order), so the two
kernels agree statistically, not bitwise.

Like the blanket caches, the kernel records the event set's
``structure_version`` and must be rebuilt after a path-MH queue
reassignment; :class:`~repro.inference.gibbs.GibbsSampler` does this
automatically.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import telemetry
from repro.errors import InferenceError
from repro.events import EventSet
from repro.inference.conditional import ArrivalBlanketCache, DepartureBlanketCache
from repro.inference.piecewise import _FLAT_EPS, log_integral_exp

_INF = np.inf

#: Below this many moves a batch is evaluated on the calling thread even in
#: threaded mode — the chunking overhead would dominate the numpy work.
_MIN_ROWS_PER_THREAD = 64

# Per-registry handle cache: sweep() runs per EM iteration, so its
# telemetry must cost a dict read, not registry lookups.  Handles are
# module-level (never instance attributes) so pickled kernels crossing
# to shard workers carry no lock-bearing state.
_KERNEL_METRICS: tuple | None = None


def _kernel_metrics(reg) -> dict:
    global _KERNEL_METRICS
    cached = _KERNEL_METRICS
    if cached is not None and cached[0] is reg:
        return cached[1]
    handles = {
        "sweeps": reg.counter("repro_kernel_sweeps_total"),
        "moves": reg.counter("repro_kernel_moves_total"),
        "seconds": reg.histogram("repro_kernel_sweep_seconds"),
        "batch": reg.histogram("repro_kernel_batch_size"),
        "native": reg.gauge("repro_kernel_native_available"),
    }
    _KERNEL_METRICS = (reg, handles)
    return handles


def _gather(values: np.ndarray, idx: np.ndarray, missing: float) -> np.ndarray:
    """``values[idx]`` with ``idx < 0`` mapped to *missing* (no fancy guards)."""
    return np.where(idx >= 0, values[np.maximum(idx, 0)], missing)


def color_conflict_free_batches(
    write_slots: list[tuple[int, ...]],
    touched_slots: list[tuple[int, ...]],
) -> list[np.ndarray]:
    """Partition moves into batches with no read/write conflicts.

    Two moves conflict when one *writes* a slot the other touches (reads or
    writes).  Greedy first-fit coloring on that graph yields batches
    (color classes) inside which every move's inputs are untouched by every
    other move — so a batch can be evaluated simultaneously while remaining
    exactly equivalent to any sequential order of its moves.  The Markov
    blankets of paper Figure 2 are O(1), so the number of colors is small
    (typically < 10) and batches stay large.

    Parameters
    ----------
    write_slots / touched_slots:
        Per move, the slot ids it writes / touches (touched must include
        the writes).  Slot ids are opaque integers; the caller encodes
        (array, event) pairs.
    """
    n_moves = len(write_slots)
    writers: dict[int, list[int]] = {}
    touchers: dict[int, list[int]] = {}
    for i in range(n_moves):
        for s in write_slots[i]:
            writers.setdefault(s, []).append(i)
        for s in touched_slots[i]:
            touchers.setdefault(s, []).append(i)
    colors = np.full(n_moves, -1, dtype=np.int64)
    n_colors = 0
    empty: list[int] = []
    for i in range(n_moves):
        used = 0  # bitmask of neighbor colors; color count stays small
        for s in touched_slots[i]:
            for j in writers.get(s, empty):
                if colors[j] >= 0:
                    used |= 1 << colors[j]
        for s in write_slots[i]:
            for j in touchers.get(s, empty):
                if colors[j] >= 0:
                    used |= 1 << colors[j]
        c = 0
        while used >> c & 1:
            c += 1
        colors[i] = c
        n_colors = max(n_colors, c + 1)
    return [np.flatnonzero(colors == c) for c in range(n_colors)]


def _piece_log_masses(knots: np.ndarray, slopes: np.ndarray) -> np.ndarray:
    """Per-piece log-masses ``log Z_i`` for rows of piecewise densities.

    ``knots`` has shape ``(m, k+1)`` and ``slopes`` ``(m, k)``; ``phi`` is
    anchored at 0 on each row's left endpoint, exactly as
    :class:`~repro.inference.piecewise.PiecewiseExponential` does.
    """
    widths = np.diff(knots, axis=1)
    seg = slopes * widths
    phi = np.concatenate(
        [np.zeros((seg.shape[0], 1)), np.cumsum(seg[:, :-1], axis=1)], axis=1
    )
    return phi + log_integral_exp(slopes, widths)


def _log_normalizer(log_masses: np.ndarray) -> np.ndarray:
    """Row-wise ``log Z`` via the same max-shifted sum as the object path."""
    m = np.max(log_masses, axis=1)
    with np.errstate(invalid="ignore"):
        return m + np.log(np.sum(np.exp(log_masses - m[:, None]), axis=1))


def _select_pieces(log_masses: np.ndarray, log_z: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Choose a piece per row with probability ``Z_i / Z`` driven by *u*."""
    cum = np.cumsum(np.exp(log_masses - log_z[:, None]), axis=1)
    idx = np.sum(u[:, None] > cum, axis=1)
    return np.minimum(idx, log_masses.shape[1] - 1)


def _invert_pieces(
    knots: np.ndarray, slopes: np.ndarray, idx: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Vectorized within-piece inverse CDF, mirroring ``sample_uv``.

    Decreasing pieces invert the truncated exponential from the left edge,
    increasing pieces from the right edge (*v* mirrored), flat pieces are
    uniform — branch for branch the arithmetic of
    :meth:`~repro.inference.piecewise.PiecewiseExponential.sample_uv`.
    All pieces must be finite; the unbounded departure tail is handled
    separately by the caller.
    """
    rows = np.arange(idx.size)
    lo = knots[rows, idx]
    hi = knots[rows, idx + 1]
    c = slopes[rows, idx]
    width = hi - lo
    z = c * width
    flat = np.abs(z) < _FLAT_EPS
    abs_c = np.where(flat, 1.0, np.abs(c))
    with np.errstate(invalid="ignore", over="ignore"):
        e = -np.expm1(-np.abs(z))
        t = -np.log1p(-v * e) / abs_c
        x = np.where(
            flat,
            lo + v * width,
            np.where(c < 0.0, np.minimum(lo + t, hi), np.maximum(hi - t, lo)),
        )
    return x


class ArraySweepKernel:
    """Vectorized batch evaluation of every Gibbs move of a sweep.

    Parameters
    ----------
    event_set:
        The state the sweeps will mutate (only its *structure* is read
        here: neighbor pointers, queue memberships).
    arrival_cache / departure_cache:
        The PR-1 static blanket caches; their neighbor indices are
        flattened into int64 columns, so building the kernel adds no second
        blanket extraction pass.
    rates:
        Current rate vector; refresh with :meth:`refresh_rates`.
    threads:
        With ``threads > 1`` each conflict-free batch's rows are split into
        that many chunks whose piece construction and inverse-CDF draws run
        on a shared :class:`~concurrent.futures.ThreadPoolExecutor` (the
        numpy kernels release the GIL); the scatter writes are applied
        after every chunk finished.  Chunking changes no arithmetic — rows
        are independent — so draws are bitwise identical to ``threads=1``.
    """

    def __init__(
        self,
        event_set: EventSet,
        arrival_cache: ArrivalBlanketCache,
        departure_cache: DepartureBlanketCache,
        rates: np.ndarray,
        threads: int = 1,
    ) -> None:
        if threads < 1:
            raise InferenceError(f"threads must be at least 1, got {threads}")
        self.threads = int(threads)
        self._executor: ThreadPoolExecutor | None = None
        if (
            arrival_cache.structure_version != event_set.structure_version
            or departure_cache.structure_version != event_set.structure_version
        ):
            raise InferenceError(
                "blanket caches are stale; rebuild them before the kernel"
            )
        self.structure_version = event_set.structure_version
        # --- arrival moves -------------------------------------------------
        self.a_ev = np.asarray(arrival_cache.events, dtype=np.int64)
        self.a_pi = np.asarray(arrival_cache.pi_event, dtype=np.int64)
        self.a_rho_e = np.asarray(arrival_cache.rho_e, dtype=np.int64)
        self.a_rho_inv_e = np.asarray(arrival_cache.rho_inv_e, dtype=np.int64)
        self.a_rho_p = np.asarray(arrival_cache.rho_p, dtype=np.int64)
        self.a_rho_inv_p = np.asarray(arrival_cache.rho_inv_p, dtype=np.int64)
        self.a_self_loop = np.asarray(arrival_cache.self_loop, dtype=bool)
        self._a_queue_e = event_set.queue[self.a_ev]
        self._a_queue_pi = event_set.queue[self.a_pi]
        # --- departure moves ----------------------------------------------
        self.d_ev = np.asarray(departure_cache.events, dtype=np.int64)
        self.d_rho_e = np.asarray(departure_cache.rho_e, dtype=np.int64)
        self.d_rho_inv_e = np.asarray(departure_cache.rho_inv_e, dtype=np.int64)
        self._d_queue_e = event_set.queue[self.d_ev]
        self.refresh_rates(rates)
        self.a_batches = color_conflict_free_batches(*self._arrival_slots())
        self.d_batches = color_conflict_free_batches(*self._departure_slots())
        reg = telemetry.get_registry()
        if reg.enabled:
            # Deferred import: native.py imports this module at its top.
            from repro.inference.native import NativeSweepKernel, native_capability

            metrics = _kernel_metrics(reg)
            for sel in self.a_batches:
                metrics["batch"].observe(sel.size)
            for sel in self.d_batches:
                metrics["batch"].observe(sel.size)
            capability = native_capability()
            metrics["native"].set(
                1.0
                if isinstance(self, NativeSweepKernel) and capability["available"]
                else 0.0
            )

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    def _arrival_slots(self) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
        """(writes, touched) slot lists of every arrival move.

        Slots encode (event, array) pairs: arrival slot ``2e``, departure
        slot ``2e + 1``.  A move writes ``a_e`` and ``d_pi(e)`` (the same
        scalar) and reads the Figure-2 blanket times.
        """
        writes: list[tuple[int, ...]] = []
        touched: list[tuple[int, ...]] = []
        for i in range(self.a_ev.size):
            e = int(self.a_ev[i])
            p = int(self.a_pi[i])
            w = (2 * e, 2 * p + 1)
            reads = [2 * p, 2 * e + 1]
            for n in (int(self.a_rho_e[i]), int(self.a_rho_inv_e[i])):
                if n >= 0:
                    reads += [2 * n, 2 * n + 1]
            for n in (int(self.a_rho_p[i]), int(self.a_rho_inv_p[i])):
                if n >= 0:
                    reads += [2 * n, 2 * n + 1]
            writes.append(w)
            touched.append(w + tuple(reads))
        return writes, touched

    def _departure_slots(self) -> tuple[list[tuple[int, ...]], list[tuple[int, ...]]]:
        """(writes, touched) slot lists of every task-final departure move."""
        writes: list[tuple[int, ...]] = []
        touched: list[tuple[int, ...]] = []
        for i in range(self.d_ev.size):
            e = int(self.d_ev[i])
            w = (2 * e + 1,)
            reads = [2 * e]
            for n in (int(self.d_rho_e[i]), int(self.d_rho_inv_e[i])):
                if n >= 0:
                    reads += [2 * n, 2 * n + 1]
            writes.append(w)
            touched.append(w + tuple(reads))
        return writes, touched

    def refresh_rates(self, rates: np.ndarray) -> None:
        """Re-gather the per-move rate columns after a rate update."""
        rates = np.asarray(rates, dtype=float)
        self.a_mu_e = rates[self._a_queue_e]
        self.a_mu_pi = rates[self._a_queue_pi]
        self.d_mu_e = rates[self._d_queue_e]

    # ------------------------------------------------------------------
    # Shape.
    # ------------------------------------------------------------------

    @property
    def n_arrival_moves(self) -> int:
        """Number of latent-arrival moves per sweep."""
        return self.a_ev.size

    @property
    def n_departure_moves(self) -> int:
        """Number of task-final departure moves per sweep."""
        return self.d_ev.size

    @property
    def n_batches(self) -> tuple[int, int]:
        """(arrival, departure) conflict-free batch counts."""
        return len(self.a_batches), len(self.d_batches)

    # ------------------------------------------------------------------
    # Piece construction (the vectorized Eq. 2-4 builder).
    # ------------------------------------------------------------------

    def arrival_pieces(
        self,
        arrival: np.ndarray,
        departure: np.ndarray,
        sel: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Bounds, knots, slopes and ``log Z1..Z3`` of arrival moves *sel*.

        Exposed for the equivalence suite: every returned column matches the
        object-path :func:`~repro.inference.conditional.arrival_conditional`
        quantity for the same move (zero-width pieces carry ``-inf`` mass
        instead of being dropped).
        """
        if sel is None:
            sel = np.arange(self.a_ev.size)
        ev = self.a_ev[sel]
        pi = self.a_pi[sel]
        a_pi = arrival[pi]
        d_rho_pi = _gather(departure, self.a_rho_p[sel], -_INF)
        a_rho_e = _gather(arrival, self.a_rho_e[sel], -_INF)
        lower = np.maximum(np.maximum(a_pi, d_rho_pi), a_rho_e)
        a_rho_inv_e = _gather(arrival, self.a_rho_inv_e[sel], _INF)
        d_rho_inv_pi = _gather(departure, self.a_rho_inv_p[sel], _INF)
        upper = np.minimum(np.minimum(departure[ev], a_rho_inv_e), d_rho_inv_pi)
        with np.errstate(invalid="ignore"):
            valid = (upper - lower > 0.0) & np.isfinite(lower) & np.isfinite(upper)
        bp_own = np.where(
            self.a_self_loop[sel], -_INF, _gather(departure, self.a_rho_e[sel], -_INF)
        )
        bp_pi = _gather(arrival, self.a_rho_inv_p[sel], _INF)
        # Sanitize skipped rows so the piece arithmetic stays warning-free;
        # their results are never used.
        lo = np.where(valid, lower, 0.0)
        up = np.where(valid, upper, 1.0)
        b_own = np.where(valid, bp_own, -_INF)
        b_pi = np.where(valid, bp_pi, -_INF)
        knots = np.stack(
            [
                lo,
                np.clip(np.minimum(b_own, b_pi), lo, up),
                np.clip(np.maximum(b_own, b_pi), lo, up),
                up,
            ],
            axis=1,
        )
        mids = 0.5 * (knots[:, :-1] + knots[:, 1:])
        mu_e = self.a_mu_e[sel][:, None]
        mu_pi = self.a_mu_pi[sel][:, None]
        slopes = -mu_pi + mu_e * (mids > b_own[:, None]) + mu_pi * (mids > b_pi[:, None])
        log_masses = _piece_log_masses(knots, slopes)
        return {
            "events": ev,
            "lower": lower,
            "upper": upper,
            "valid": valid,
            "knots": knots,
            "slopes": slopes,
            "log_masses": log_masses,
            "log_z": _log_normalizer(log_masses),
        }

    def departure_pieces(
        self,
        arrival: np.ndarray,
        departure: np.ndarray,
        sel: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Bounds/pieces of task-final departure moves (two finite pieces).

        Rows with no later arrival at the queue (``tail``) are a single
        exponential tail from ``lower`` with rate ``mu_e``; they carry no
        finite pieces here and are sampled analytically.
        """
        if sel is None:
            sel = np.arange(self.d_ev.size)
        ev = self.d_ev[sel]
        rho_inv_e = self.d_rho_inv_e[sel]
        lower = np.maximum(arrival[ev], _gather(departure, self.d_rho_e[sel], -_INF))
        tail = rho_inv_e < 0
        upper = _gather(departure, rho_inv_e, _INF)
        bp = _gather(arrival, rho_inv_e, _INF)
        with np.errstate(invalid="ignore"):
            valid = tail | (upper - lower > 0.0)
        bounded = valid & ~tail
        lo = np.where(bounded, lower, 0.0)
        up = np.where(bounded, upper, 1.0)
        b = np.where(bounded, bp, -_INF)
        knots = np.stack([lo, np.clip(b, lo, up), up], axis=1)
        mids = 0.5 * (knots[:, :-1] + knots[:, 1:])
        mu_e = self.d_mu_e[sel]
        slopes = np.where(mids <= b[:, None], -mu_e[:, None], 0.0)
        log_masses = _piece_log_masses(knots, slopes)
        return {
            "events": ev,
            "lower": lower,
            "upper": upper,
            "valid": valid,
            "tail": tail,
            "knots": knots,
            "slopes": slopes,
            "log_masses": log_masses,
            "log_z": _log_normalizer(log_masses),
            "mu_e": mu_e,
        }

    # ------------------------------------------------------------------
    # Sweeping.
    # ------------------------------------------------------------------

    def sweep(
        self, state: EventSet, rng: np.random.Generator, shuffle: bool = True
    ) -> tuple[int, int]:
        """Resample every latent variable once; returns (moves, skipped).

        Batches are processed sequentially (arrival batches, then departure
        batches); *shuffle* permutes the batch order each sweep.  Every move
        in a batch consumes its two uniforms whether it is skipped or not,
        so the draw-to-move alignment is independent of the skip pattern,
        exactly like the object kernel's batched-draw mode.
        """
        if self.structure_version != state.structure_version:
            raise InferenceError(
                "event-set structure changed; rebuild the array kernel"
            )
        reg = telemetry.get_registry()
        t_start = time.perf_counter() if reg.enabled else 0.0
        n_moves = 0
        n_skipped = 0
        arrival = state.arrival
        departure = state.departure
        a_order = np.arange(len(self.a_batches))
        d_order = np.arange(len(self.d_batches))
        if shuffle:
            a_order = rng.permutation(a_order)
            d_order = rng.permutation(d_order)
        for bi in a_order:
            sel = self.a_batches[bi]
            draws = rng.random(2 * sel.size)
            moved = self._apply_arrival_batch(
                state, arrival, departure, sel, draws[: sel.size], draws[sel.size :]
            )
            n_moves += moved
            n_skipped += sel.size - moved
        for bi in d_order:
            sel = self.d_batches[bi]
            draws = rng.random(2 * sel.size)
            moved = self._apply_departure_batch(
                state, arrival, departure, sel, draws[: sel.size], draws[sel.size :]
            )
            n_moves += moved
            n_skipped += sel.size - moved
        if reg.enabled:
            metrics = _kernel_metrics(reg)
            metrics["sweeps"].inc()
            metrics["moves"].inc(n_moves)
            metrics["seconds"].observe(time.perf_counter() - t_start)
        return n_moves, n_skipped

    # ------------------------------------------------------------------
    # Threaded chunk plumbing.
    # ------------------------------------------------------------------

    def _chunk_map(self, evaluate, sel: np.ndarray, u: np.ndarray, v: np.ndarray):
        """Evaluate one batch, chunked over the thread pool when enabled.

        Returns the per-chunk ``(events, values)`` pairs in chunk order —
        concatenating them reproduces the single-chunk result exactly,
        because rows of a batch are arithmetically independent.
        """
        if self.threads <= 1 or sel.size < self.threads * _MIN_ROWS_PER_THREAD:
            return [evaluate(sel, u, v)]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.threads)
        bounds = np.linspace(0, sel.size, self.threads + 1).astype(np.int64)
        futures = [
            self._executor.submit(evaluate, sel[a:b], u[a:b], v[a:b])
            for a, b in zip(bounds[:-1], bounds[1:])
            if b > a
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        """Shut down the lazily created thread pool (idempotent).

        Without this, every kernel rebuild after an event-set structure
        change would leak ``threads`` live threads for the life of the
        process.  The kernel itself stays usable after ``close()`` — a
        later threaded batch simply recreates the pool — so callers may
        release threads whenever a kernel is replaced or parked (sampler
        teardown, blanket-cache rebuilds, shard-worker recall).
        """
        executor = getattr(self, "_executor", None)
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True)

    def __del__(self) -> None:
        # Safety net for kernels dropped without an explicit close();
        # never let teardown-order surprises surface at GC time.
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self):
        # Executors cannot cross process boundaries; rebuild lazily.
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def _eval_arrival_chunk(
        self,
        arrival: np.ndarray,
        departure: np.ndarray,
        sel: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        pieces = self.arrival_pieces(arrival, departure, sel)
        valid = pieces["valid"]
        idx = _select_pieces(pieces["log_masses"], pieces["log_z"], u)
        x = _invert_pieces(pieces["knots"], pieces["slopes"], idx, v)
        return pieces["events"][valid], x[valid]

    def _eval_departure_chunk(
        self,
        arrival: np.ndarray,
        departure: np.ndarray,
        sel: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        pieces = self.departure_pieces(arrival, departure, sel)
        valid = pieces["valid"]
        tail = pieces["tail"]
        idx = _select_pieces(pieces["log_masses"], pieces["log_z"], u)
        x = _invert_pieces(pieces["knots"], pieces["slopes"], idx, v)
        if np.any(tail):
            # Exponential tail with rate mu_e from the left bound, by
            # inverse transform on the same per-move uniform.
            with np.errstate(divide="ignore"):
                x = np.where(
                    tail,
                    pieces["lower"] - np.log1p(-v) / pieces["mu_e"],
                    x,
                )
        return pieces["events"][valid], x[valid]

    def _apply_arrival_batch(
        self,
        state: EventSet,
        arrival: np.ndarray,
        departure: np.ndarray,
        sel: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
    ) -> int:
        def evaluate(s, uu, vv):
            return self._eval_arrival_chunk(arrival, departure, s, uu, vv)

        chunks = self._chunk_map(evaluate, sel, u, v)
        moved = 0
        for events, x in chunks:
            if events.size:
                state.set_arrivals(events, x)
                moved += events.size
        return moved

    def _apply_departure_batch(
        self,
        state: EventSet,
        arrival: np.ndarray,
        departure: np.ndarray,
        sel: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
    ) -> int:
        def evaluate(s, uu, vv):
            return self._eval_departure_chunk(arrival, departure, s, uu, vv)

        chunks = self._chunk_map(evaluate, sel, u, v)
        moved = 0
        for events, x in chunks:
            if events.size:
                state.set_final_departures(events, x)
                moved += events.size
        return moved
