"""Log-space piecewise-exponential densities.

Every local conditional of the Gibbs sampler (paper Eq. 2) has the form

    g(x) = exp(phi(x))      on (L, U),

where ``phi`` is continuous piecewise linear: the two max-terms in Eq. (2)
switch on at the breakpoints ``A = min(a_{rho^{-1}(pi(e))}, d_{rho(e)})``
and ``B = max(...)``, splitting the support into at most three exponential
pieces whose masses are the paper's ``Z1, Z2, Z3``.

This module implements that family in full generality (any number of
pieces, optional unbounded right tail) with log-space normalization, so the
sampler stays exact when ``rate * width`` is extreme in either direction —
the regime where a naive transcription of Eq. (3) overflows ``exp``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import InferenceError
from repro.rng import RandomState, as_generator

#: Slopes with |slope * width| below this are treated as exactly zero
#: (uniform piece); the relative error committed is of the same order.
_FLAT_EPS = 1e-13


def _log_integral_exp(slope: float, width: float) -> float:
    """``log ∫_0^width exp(slope * x) dx`` computed stably.

    Handles the flat case and both signs of the slope without overflow:
    for ``slope > 0`` the integral is written ``exp(slope*width) *
    (1 - exp(-slope*width)) / slope`` so only the log of the leading factor
    grows.

    This is the scalar *reference* implementation; :func:`log_integral_exp`
    is the vectorized equivalent used by the array sweep kernel.  The two
    share ``_FLAT_EPS`` and branch on exactly the same ``slope * width``
    product, so they take the same branch on every input and agree to within
    one ulp everywhere — bitwise at the flat transition, where both reduce
    to ``log(width)`` — which ``tests/inference/test_piecewise_properties.py``
    pins down.
    """
    if width <= 0.0:
        return -math.inf
    if math.isinf(width):
        if slope >= 0.0:
            raise InferenceError("unbounded piece needs a strictly negative slope")
        return -math.log(-slope)
    z = slope * width
    if abs(z) < _FLAT_EPS:
        return math.log(width)
    if slope > 0.0:
        return z + math.log(-math.expm1(-z)) - math.log(slope)
    return math.log(-math.expm1(z)) - math.log(-slope)


def log_integral_exp(slopes: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_log_integral_exp` over parallel slope/width arrays.

    Zero (or negative) widths yield ``-inf``; infinite widths require a
    strictly negative slope and yield ``-log(-slope)``.  Every branch uses
    the same formulas and the same ``_FLAT_EPS`` threshold on the same
    ``slope * width`` product as the scalar reference, so the two
    implementations agree bitwise elementwise.
    """
    slopes = np.asarray(slopes, dtype=float)
    widths = np.asarray(widths, dtype=float)
    slopes, widths = np.broadcast_arrays(slopes, widths)
    unbounded = np.isinf(widths) & (widths > 0.0)
    if np.any(unbounded & (slopes >= 0.0)):
        raise InferenceError("unbounded piece needs a strictly negative slope")
    out = np.full(slopes.shape, -np.inf)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        z = slopes * widths
        positive = widths > 0.0
        bounded = positive & ~unbounded
        flat = bounded & (np.abs(z) < _FLAT_EPS)
        rising = bounded & ~flat & (slopes > 0.0)
        falling = bounded & ~flat & (slopes <= 0.0)
        np.copyto(out, np.log(widths), where=flat)
        np.copyto(
            out,
            z + np.log(-np.expm1(-z)) - np.log(slopes),
            where=rising,
        )
        np.copyto(
            out,
            np.log(-np.expm1(z)) - np.log(-slopes),
            where=falling,
        )
        np.copyto(out, -np.log(-slopes), where=unbounded)
    return out


class PiecewiseExponential:
    """A density proportional to ``exp(phi(x))``, phi continuous piecewise linear.

    Parameters
    ----------
    knots:
        Increasing sequence ``t_0 < t_1 < ... < t_k``; support is
        ``(t_0, t_k)``.  ``t_k`` may be ``+inf`` if the last slope is
        negative.  Zero-width pieces are dropped.
    slopes:
        Slope of ``phi`` on each of the ``k`` pieces.

    Notes
    -----
    ``phi(t_0)`` is fixed at 0; the class normalizes internally.  Piece
    masses are exposed via :attr:`piece_log_masses` and
    :meth:`piece_probabilities` — for the three-piece Gibbs conditional
    these are exactly ``log Z1..Z3`` and ``Z1/Z, Z2/Z, Z3/Z`` of the paper.
    """

    __slots__ = ("knots", "slopes", "_phi_at_knots", "piece_log_masses", "log_z")

    def __init__(self, knots: Sequence[float], slopes: Sequence[float]) -> None:
        knots_arr = [float(t) for t in knots]
        slopes_arr = [float(c) for c in slopes]
        if len(knots_arr) < 2 or len(slopes_arr) != len(knots_arr) - 1:
            raise InferenceError(
                f"need k+1 knots for k slopes, got {len(knots_arr)} knots, "
                f"{len(slopes_arr)} slopes"
            )
        if not math.isfinite(knots_arr[0]):
            raise InferenceError("the left endpoint must be finite")
        # Drop zero-width pieces, keep strictly increasing knots.
        clean_knots = [knots_arr[0]]
        clean_slopes: list[float] = []
        for t, c in zip(knots_arr[1:], slopes_arr):
            if not (t >= clean_knots[-1]):
                raise InferenceError(f"knots must be nondecreasing, got {knots_arr}")
            if t > clean_knots[-1]:
                clean_knots.append(t)
                clean_slopes.append(c)
        if len(clean_knots) < 2:
            raise InferenceError(f"support is empty: knots {knots_arr}")
        if math.isinf(clean_knots[-1]) and clean_slopes[-1] >= 0.0:
            raise InferenceError("an infinite right tail requires a negative final slope")
        self.knots = clean_knots
        self.slopes = clean_slopes
        # phi at each knot, phi(t_0) = 0.
        phi = [0.0]
        for i, c in enumerate(clean_slopes):
            width = clean_knots[i + 1] - clean_knots[i]
            phi.append(phi[-1] + c * width if math.isfinite(width) else -math.inf)
        self._phi_at_knots = phi
        self.piece_log_masses = [
            phi[i] + _log_integral_exp(c, clean_knots[i + 1] - clean_knots[i])
            for i, c in enumerate(clean_slopes)
        ]
        m = max(self.piece_log_masses)
        if not math.isfinite(m):
            raise InferenceError("density has no mass anywhere on its support")
        self.log_z = m + math.log(sum(math.exp(lm - m) for lm in self.piece_log_masses))

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def n_pieces(self) -> int:
        """Number of (positive-width) exponential pieces."""
        return len(self.slopes)

    @property
    def support(self) -> tuple[float, float]:
        """The open interval carrying all the mass."""
        return (self.knots[0], self.knots[-1])

    def piece_probabilities(self) -> np.ndarray:
        """Normalized mass of each piece (the paper's ``Z_i / Z``)."""
        return np.exp(np.asarray(self.piece_log_masses) - self.log_z)

    def log_pdf(self, x: float) -> float:
        """Normalized log-density at *x* (``-inf`` outside the support)."""
        if not self.knots[0] <= x <= self.knots[-1]:
            return -math.inf
        i = self._piece_of(x)
        return self._phi_at_knots[i] + self.slopes[i] * (x - self.knots[i]) - self.log_z

    def cdf(self, x: float) -> float:
        """Exact CDF at *x* — used to validate sampling against Eq. (3)."""
        if x <= self.knots[0]:
            return 0.0
        if x >= self.knots[-1]:
            return 1.0
        i = self._piece_of(x)
        acc = 0.0
        for j in range(i):
            acc += math.exp(self.piece_log_masses[j] - self.log_z)
        partial = self._phi_at_knots[i] + _log_integral_exp(
            self.slopes[i], x - self.knots[i]
        )
        return min(1.0, acc + math.exp(partial - self.log_z))

    def mean(self) -> float:
        """Exact first moment (closed form per piece)."""
        total = 0.0
        for i, c in enumerate(self.slopes):
            lo, hi = self.knots[i], self.knots[i + 1]
            w_log = self.piece_log_masses[i] - self.log_z
            weight = math.exp(w_log)
            if weight == 0.0:
                continue
            width = hi - lo
            if math.isinf(width):
                # Exponential tail with rate -c starting at lo.
                total += weight * (lo + 1.0 / (-c))
                continue
            z = c * width
            if abs(z) < 1e-8:
                local_mean = width / 2.0 + z * width / 12.0
            elif c > 0.0:
                # E[X] for density ∝ e^{cx} on (0, width).
                local_mean = width / (-math.expm1(-z)) - 1.0 / c
            else:
                local_mean = 1.0 / (-c) - width * math.exp(z) / (-math.expm1(z))
            total += weight * (lo + local_mean)
        return total

    def _piece_of(self, x: float) -> int:
        for i in range(len(self.slopes)):
            if x <= self.knots[i + 1]:
                return i
        return len(self.slopes) - 1

    def ppf(self, q: float) -> float:
        """Exact quantile function (inverse of :meth:`cdf`) on ``[0, 1]``.

        Selects the piece containing probability mass *q* and inverts the
        truncated-exponential CDF inside it — the deterministic counterpart
        of :meth:`sample_uv` (which splits the same computation across two
        uniforms).  For an unbounded final piece the tail quantile is
        inverted analytically.
        """
        if not 0.0 <= q <= 1.0:
            raise InferenceError(f"quantile must lie in [0, 1], got {q}")
        if q <= 0.0:
            return self.knots[0]
        if q >= 1.0 and math.isfinite(self.knots[-1]):
            return self.knots[-1]
        probs = self.piece_probabilities()
        # Default to the last piece so that q landing in the float gap
        # between sum(probs) and 1.0 maps to the far tail (v ~ 1), with
        # acc never including the selected piece's own mass.
        i = len(probs) - 1
        acc = 0.0
        for j, p in enumerate(probs[:-1]):
            if q <= acc + p:
                i = j
                break
            acc += p
        p = probs[i]
        v = min((q - acc) / p, 1.0) if p > 0.0 else 0.0
        lo, hi = self.knots[i], self.knots[i + 1]
        if math.isinf(hi):
            # Exponential tail with rate -c: invert 1 - exp(c (x - lo)).
            if v >= 1.0:
                return math.inf
            return lo - math.log1p(-v) / (-self.slopes[i])
        c = self.slopes[i]
        z = c * (hi - lo)
        if abs(z) < _FLAT_EPS or c <= 0.0:
            return self._invert_piece(i, v)
        # Rising piece: _invert_piece measures from the right edge (the
        # mirror convention of :meth:`sample_uv`), so pass the complement.
        return self._invert_piece(i, 1.0 - v)

    def _invert_piece(self, i: int, v: float) -> float:
        """Invert the within-piece CDF of finite piece *i* at ``v in [0, 1]``."""
        lo, hi = self.knots[i], self.knots[i + 1]
        c = self.slopes[i]
        width = hi - lo
        z = c * width
        if abs(z) < _FLAT_EPS:
            return lo + v * width
        if c < 0.0:
            # Decreasing piece: truncated exponential from the left edge.
            x = -math.log1p(-v * -math.expm1(z)) / (-c)
            return min(lo + x, hi)
        # Increasing piece: mirror image from the right edge.
        x = -math.log1p(-v * -math.expm1(-z)) / c
        return max(hi - x, lo)

    # ------------------------------------------------------------------
    # Sampling (the paper's Figure 3, generalized).
    # ------------------------------------------------------------------

    def sample(self, random_state: RandomState = None) -> float:
        """Draw one exact sample via piece selection + inverse CDF.

        This is the generalized form of paper Figure 3: choose a piece with
        probability ``Z_i / Z``, then invert the truncated-exponential CDF
        inside the piece (uniform when the piece is flat).
        """
        rng = as_generator(random_state)
        return self.sample_uv(rng.uniform(), rng.uniform(), rng)

    def sample_uv(
        self, u: float, v: float, random_state: RandomState = None
    ) -> float:
        """:meth:`sample` driven by two externally supplied uniforms.

        *u* selects the piece, *v* inverts the within-piece CDF.  Used by
        the Gibbs sampler's batched-draw sweep, which pre-draws all the
        uniforms of a sweep in one generator call; *random_state* is only
        consulted for the unbounded-tail case (an exponential draw).
        Given the same two uniforms this returns bitwise the same value as
        :meth:`sample`.
        """
        probs = self.piece_probabilities()
        i = 0
        acc = 0.0
        for i, p in enumerate(probs):
            acc += p
            if u <= acc:
                break
        if math.isinf(self.knots[i + 1]):
            c = self.slopes[i]
            return self.knots[i] + as_generator(random_state).exponential(1.0 / (-c))
        return self._invert_piece(i, v)
