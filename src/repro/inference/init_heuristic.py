"""Feasible initialization of the latent times, without an LP.

The Gibbs sampler needs a starting state satisfying every deterministic
constraint (paper Section 3: "initializing the Gibbs sampler requires
finding arrival times for the unobserved events that are feasible...").
The paper solves a linear program (see :mod:`repro.inference.init_lp`);
this module provides a fast constraint-propagation alternative used by
default for large traces and compared against the LP in the ``abl-init``
ablation benchmark.

Approach: every event contributes one *time point* — its departure
``D(e)`` (arrivals are aliases: ``a_e = D(pi(e))``, and initial events
arrive at the constant 0).  The deterministic constraints become a partial
order over the ``D`` variables:

* ``D(pi(e)) <= D(e)``     (service starts after arrival),
* ``D(rho(e)) <= D(e)``    (FIFO departures),
* ``D(pi(rho(e))) <= D(pi(e))``  (the frozen arrival order at e's queue).

Observed variables are constants.  We topologically sort the constraint
DAG, propagate upper bounds backward from the observed anchors, then assign
latent values forward, aiming each event's service time at the current mean
``1 / mu_q`` — the same objective the paper's LP minimizes, greedily.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import InfeasibleInitializationError
from repro.events import EventSet
from repro.observation import ObservedTrace

_TOL = 1e-9


def _departure_anchor(trace: ObservedTrace, e: int) -> float | None:
    """The observed value of ``D(e)``, or ``None`` if latent."""
    skeleton = trace.skeleton
    succ = skeleton.pi_inv[e]
    if succ >= 0:
        if trace.arrival_observed[succ]:
            return float(skeleton.arrival[succ])
        return None
    if trace.departure_observed[e]:
        return float(skeleton.departure[e])
    return None


def constraint_edges(skeleton: EventSet) -> list[tuple[int, int]]:
    """All ``D(u) <= D(v)`` edges implied by the deterministic constraints."""
    edges: list[tuple[int, int]] = []
    n = skeleton.n_events
    for e in range(n):
        p = int(skeleton.pi[e])
        r = int(skeleton.rho[e])
        if p >= 0:
            edges.append((p, e))
        if r >= 0:
            edges.append((r, e))
        if p >= 0 and r >= 0:
            pr = int(skeleton.pi[r])
            if pr >= 0:
                edges.append((pr, p))
    return edges


def _topological_order(n: int, edges: list[tuple[int, int]]) -> np.ndarray:
    """Kahn's algorithm; raises when the constraint graph has a cycle."""
    succs: list[list[int]] = [[] for _ in range(n)]
    indeg = np.zeros(n, dtype=np.int64)
    for u, v in edges:
        succs[u].append(v)
        indeg[v] += 1
    queue = deque(int(i) for i in np.flatnonzero(indeg == 0))
    order = np.empty(n, dtype=np.int64)
    pos = 0
    while queue:
        u = queue.popleft()
        order[pos] = u
        pos += 1
        for v in succs[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if pos != n:
        raise InfeasibleInitializationError(
            "the deterministic constraints contain a cycle; "
            "the trace skeleton is corrupted"
        )
    return order


def heuristic_initialize(
    trace: ObservedTrace,
    rates: np.ndarray,
) -> EventSet:
    """Fill all latent times with a feasible, service-targeted assignment.

    Parameters
    ----------
    trace:
        The observed trace to initialize.
    rates:
        Current exponential rates (index 0 = arrival rate); each latent
        departure is placed so the event's service time is as close to
        ``1 / mu_q`` as the constraints allow.

    Returns
    -------
    EventSet
        A fresh, fully valid event set ready for Gibbs sampling.

    Raises
    ------
    InfeasibleInitializationError
        If the observations are mutually inconsistent.
    """
    skeleton = trace.skeleton
    rates = np.asarray(rates, dtype=float)
    n = skeleton.n_events
    anchors: list[float | None] = [_departure_anchor(trace, e) for e in range(n)]
    edges = constraint_edges(skeleton)
    order = _topological_order(n, edges)
    preds: list[list[int]] = [[] for _ in range(n)]
    succs: list[list[int]] = [[] for _ in range(n)]
    for u, v in edges:
        preds[v].append(u)
        succs[u].append(v)

    # Backward pass: tightest upper bound reachable from observed anchors.
    hi = np.full(n, np.inf)
    for e in order[::-1]:
        anchor = anchors[e]
        if anchor is not None:
            if anchor > hi[e] + _TOL:
                raise InfeasibleInitializationError(
                    f"observed departure of event {e} ({anchor:.6g}) exceeds "
                    f"an upper bound ({hi[e]:.6g}) implied by later observations"
                )
            hi[e] = anchor
        for u in preds[e]:
            hi[u] = min(hi[u], hi[e])

    # Forward pass: assign values in topological order.
    values = np.empty(n)
    for e in order:
        lower = 0.0
        for u in preds[e]:
            lower = max(lower, values[u])
        anchor = anchors[e]
        if anchor is not None:
            if anchor < lower - _TOL:
                raise InfeasibleInitializationError(
                    f"observed departure of event {e} ({anchor:.6g}) precedes "
                    f"a lower bound ({lower:.6g}) implied by earlier observations"
                )
            values[e] = max(anchor, lower)
            continue
        target = 1.0 / rates[skeleton.queue[e]]
        upper = hi[e]
        if np.isinf(upper):
            values[e] = lower + target
        elif upper <= lower:
            values[e] = lower
        else:
            values[e] = lower + min(target, 0.5 * (upper - lower))

    state = skeleton.copy()
    state.departure[:] = values
    init_mask = skeleton.seq == 0
    state.arrival[init_mask] = 0.0
    non_init = np.flatnonzero(~init_mask)
    state.arrival[non_init] = values[skeleton.pi[non_init]]
    state.validate(atol=1e-6)
    return state


def _observed_throughput(trace: ObservedTrace, q: int) -> float:
    """Busy-average processing rate of queue *q* from observed departures.

    Uses the frozen queue order: between the first and last event at *q*
    with an observation-pinned departure there are a known number of
    events, so ``(# events between) / (time between)`` estimates the rate
    at which the server turned events around.  Returns 0 when fewer than
    two departures are pinned (the caller falls back to the other proxy).
    """
    skeleton = trace.skeleton
    order = skeleton.queue_order(q)
    pinned = [
        (pos, float(skeleton.departure[e]))
        for pos, e in enumerate(order)
        if trace.departure_is_fixed(int(e))
    ]
    if len(pinned) < 2:
        return 0.0
    (pos_a, dep_a), (pos_b, dep_b) = pinned[0], pinned[-1]
    if dep_b <= dep_a or pos_b <= pos_a:
        return 0.0
    return (pos_b - pos_a) / (dep_b - dep_a)


def initial_rates_from_observed(
    trace: ObservedTrace, service_quantile: float = 0.25
) -> np.ndarray:
    """A crude but safe starting rate vector from observed data alone.

    Per queue we take a *low quantile* of the observed response times
    (arrival observed and departure pinned by an observation) as the
    service-time proxy and invert it.  Responses are service + waiting, so
    the mean response wildly overestimates service on loaded queues (and a
    mean-based initialization starts StEM so far off that the chain takes
    hundreds of sweeps to drain the bias); the lower tail of the response
    distribution — requests that arrived at a momentarily idle server — is
    a far better proxy.  The arrival rate is estimated from the span of
    observed system entries.  Queues without any observed pair fall back to
    the global statistic.
    """
    skeleton = trace.skeleton
    n_queues = skeleton.n_queues
    responses: list[list[float]] = [[] for _ in range(n_queues)]
    entry_times: list[float] = []
    for e in range(skeleton.n_events):
        if not trace.arrival_observed[e]:
            continue
        if skeleton.seq[e] == 1:
            entry_times.append(float(skeleton.arrival[e]))
        if not trace.departure_is_fixed(e):
            continue
        q = int(skeleton.queue[e])
        if q == 0:
            continue
        r = float(skeleton.departure[e] - skeleton.arrival[e])
        if r > 0.0:
            responses[q].append(r)
    all_responses = [r for rs in responses for r in rs]
    global_proxy = (
        float(np.quantile(all_responses, service_quantile)) if all_responses else 1.0
    )
    rates = np.empty(n_queues)
    for q in range(1, n_queues):
        if responses[q]:
            proxy = float(np.quantile(responses[q], service_quantile))
        else:
            proxy = global_proxy
        quantile_rate = 1.0 / max(proxy, 1e-12)
        # Second proxy: the queue's observed processing *throughput*.  The
        # event counters tell us how many events sit between two observed
        # departures, so (position gap) / (departure time gap) estimates the
        # busy-average service rate — nearly exact for a saturated queue,
        # where the response-quantile proxy is hopeless because every
        # response is waiting-dominated.  Both proxies underestimate mu, so
        # take the larger.
        throughput_rate = _observed_throughput(trace, q)
        rates[q] = max(quantile_rate, throughput_rate)
    if len(entry_times) >= 2:
        entry_times.sort()
        span = entry_times[-1] - entry_times[0]
        # The observed entries are a subsample; the *total* task count over
        # roughly the same span gives a better rate estimate.
        rates[0] = max(skeleton.n_tasks - 1, 1) / max(span, 1e-12)
    else:
        rates[0] = 1.0 / max(global_mean, 1e-12)
    return rates
