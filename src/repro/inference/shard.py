"""Sharded single-chain sweeps: partition a trace, exchange only boundaries.

The paper names online, distributed inference as its most useful future
direction; the scaling gap it leaves open is that a *single chain's* sweep
is bounded by one process even though the conflict-free batches of
:mod:`repro.inference.kernel` are embarrassingly parallel.  This module
closes that gap with the "isolate first, then share" decomposition of
datacenter-scale systems: partition the state into isolated units and let
them interact only through a narrow boundary interface.

Decomposition
-------------
* :func:`partition_tasks` splits the tasks into ``S`` shards — contiguous
  blocks in system-entry order, refined by a min-cut-flavored greedy pass
  over the task-interaction graph (tasks interact when their events are
  within-queue neighbors, the only coupling the Markov blankets of paper
  Figure 2 create).  The residual coupling is reported as ``cut_size``.
* :func:`build_shard_plan` classifies every latent move:

  - **interior** — its Markov blanket lies entirely inside one shard.
    Interior moves of *different* shards never read or write a common
    time, so whole shards can sweep concurrently (across worker
    processes, or batch-threaded within one) while remaining exactly
    equivalent to some sequential scan.
  - **boundary** — its blanket crosses a shard cut.  Boundary moves are
    frozen while shards sweep and are resampled by a scalar master pass
    between super-steps, reading times that the shards exchange.

  Every move still draws from its exact full conditional, so the stitched
  chain targets *the same posterior* as an unsharded sweep; sharding only
  reorders the scan.  With ``S=1`` there are no boundary moves and the
  engine reduces bitwise to the plain array kernel.

Execution modes
---------------
:class:`ShardedSweepEngine` runs the sharded scan either **in-process**
(per-shard restricted array kernels over the full state — the default for
``GibbsSampler(shards=S)``) or **on persistent workers**
(:class:`ShardWorkerPool`): each worker holds its shards' sub-traces
(built by the generalized :func:`~repro.events.subset.subset_tasks`, plus
frozen *ghost* tasks that carry cross-shard ``rho`` neighbors) resident
across super-steps, and only boundary-region times plus per-queue
sufficient statistics cross the process boundary.  The two modes are
bitwise identical at any worker count because every shard's draws are a
pure function of its spawned random stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InferenceError
from repro.events import EventSet
from repro.events.subset import subset_tasks
from repro.inference.conditional import (
    ArrivalBlanketCache,
    DepartureBlanketCache,
    arrival_conditional_cached,
    final_departure_conditional_cached,
)
from repro.inference.kernel import ArraySweepKernel
from repro.inference.native import make_sweep_kernel
from repro.inference.pool import PersistentWorkerPool
from repro.inference.transport import WorkerTransport
from repro.observation import ObservedTrace
from repro.rng import RandomState, as_seed_sequence

#: Feasibility tolerance shared with the M-step statistics.
_SERVICE_ATOL = -1e-9


# ----------------------------------------------------------------------
# Task partitioning.
# ----------------------------------------------------------------------


def task_interaction_graph(events: EventSet) -> dict[tuple[int, int], int]:
    """Weighted task-interaction graph from within-queue adjacency.

    Two tasks interact exactly when some queue's frozen arrival order
    places their events next to each other — the only way one task's times
    enter another task's Markov blankets.  The weight counts the adjacent
    event pairs; a partition's cut size is the total weight of cross-shard
    interactions.
    """
    weights: dict[tuple[int, int], int] = {}
    for q in range(events.n_queues):
        order = events.queue_order(q)
        if order.size < 2:
            continue
        t = events.task[order]
        for a, b in zip(t[:-1].tolist(), t[1:].tolist()):
            if a != b:
                key = (a, b) if a < b else (b, a)
                weights[key] = weights.get(key, 0) + 1
    return weights


@dataclass(frozen=True)
class TaskPartition:
    """A disjoint assignment of tasks to shards.

    Attributes
    ----------
    shards:
        Sorted task ids per shard; every task appears in exactly one.
    assignment:
        ``task id -> shard`` map (the same information, keyed).
    cut_size:
        Total weight of task interactions crossing a shard cut — the
        min-cut objective the greedy refinement minimizes, and a direct
        upper bound on how many moves can be boundary moves.
    """

    shards: tuple[tuple[int, ...], ...]
    assignment: dict[int, int]
    cut_size: int

    @property
    def n_shards(self) -> int:
        """Number of (non-empty) shards."""
        return len(self.shards)

    def event_shards(self, events: EventSet) -> np.ndarray:
        """Per-event shard index under this partition."""
        lookup = np.full(int(events.task.max()) + 1, -1, dtype=np.int64)
        for task, shard in self.assignment.items():
            lookup[task] = shard
        sv = lookup[events.task]
        if np.any(sv < 0):
            raise InferenceError("partition does not cover every task of the trace")
        return sv


def partition_tasks(
    events: EventSet,
    n_shards: int,
    balance: float = 0.3,
    refine_passes: int = 2,
) -> TaskPartition:
    """Partition tasks into shards, greedily minimizing the interaction cut.

    Starts from contiguous blocks in system-entry order (tasks that enter
    the system far apart rarely share queue neighbors, so entry-contiguous
    blocks already cut little) and runs *refine_passes* greedy passes over
    the task→queue interaction graph: a task moves to the neighboring
    shard holding most of its interaction weight whenever that strictly
    shrinks the cut and keeps every shard within ``±balance`` of the even
    size.  Deterministic: ties break toward the lower shard index.

    ``n_shards`` is clamped to the number of tasks.
    """
    if n_shards < 1:
        raise InferenceError(f"need at least one shard, got {n_shards}")
    if not 0.0 <= balance < 1.0:
        raise InferenceError(f"balance must lie in [0, 1), got {balance}")
    # Tasks in system-entry order = queue 0's frozen order.
    entry_tasks = [int(events.task[e]) for e in events.queue_order(0)]
    n = len(entry_tasks)
    n_shards = max(1, min(int(n_shards), n))
    assignment: dict[int, int] = {}
    for s, block in enumerate(np.array_split(np.arange(n), n_shards)):
        for i in block.tolist():
            assignment[entry_tasks[i]] = s
    weights = task_interaction_graph(events)
    if n_shards > 1 and refine_passes > 0 and weights:
        neighbors = _neighbor_lists(weights)
        sizes = np.zeros(n_shards, dtype=np.int64)
        for s in assignment.values():
            sizes[s] += 1
        lo, hi = _balance_bounds(n, n_shards, balance)
        _refine_assignment(
            entry_tasks, assignment, neighbors, sizes, n_shards, lo, hi,
            refine_passes,
        )
    cut = sum(
        w for (a, b), w in weights.items() if assignment[a] != assignment[b]
    )
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    for task in sorted(assignment):
        shards[assignment[task]].append(task)
    shards = [block for block in shards if block]  # drop emptied shards
    assignment = {t: s for s, block in enumerate(shards) for t in block}
    return TaskPartition(
        shards=tuple(tuple(block) for block in shards),
        assignment=assignment,
        cut_size=int(cut),
    )


def _neighbor_lists(
    weights: dict[tuple[int, int], int]
) -> dict[int, list[tuple[int, int]]]:
    """Adjacency lists of the task-interaction graph."""
    neighbors: dict[int, list[tuple[int, int]]] = {}
    for (a, b), w in weights.items():
        neighbors.setdefault(a, []).append((b, w))
        neighbors.setdefault(b, []).append((a, w))
    return neighbors


def _balance_bounds(n: int, n_shards: int, balance: float) -> tuple[int, int]:
    """Allowed shard sizes ``±balance`` around the even split."""
    lo = max(1, int(np.floor((1.0 - balance) * n / n_shards)))
    hi = max(lo, int(np.ceil((1.0 + balance) * n / n_shards)))
    return lo, hi


def _refine_assignment(
    entry_tasks: list[int],
    assignment: dict[int, int],
    neighbors: dict[int, list[tuple[int, int]]],
    sizes: np.ndarray,
    n_shards: int,
    lo: int,
    hi: int,
    refine_passes: int,
) -> None:
    """Greedy min-cut passes over *assignment*, in place.

    A task moves to the shard holding most of its interaction weight
    whenever that strictly shrinks the cut and keeps every shard within
    the ``[lo, hi]`` size band.  Deterministic: ties break toward the
    lower shard index.  Shared by the cold partitioner
    (:func:`partition_tasks`) and the incremental one
    (:func:`refresh_partition`).
    """
    for _ in range(refine_passes):
        moved = False
        for task in entry_tasks:
            s = assignment[task]
            if sizes[s] <= lo:
                continue
            pull = np.zeros(n_shards)
            for other, w in neighbors.get(task, ()):
                pull[assignment[other]] += w
            best, best_gain = s, 0.0
            for r in range(n_shards):
                if r == s or sizes[r] >= hi:
                    continue
                gain = pull[r] - pull[s]
                if gain > best_gain:
                    best, best_gain = r, gain
            if best != s:
                assignment[task] = best
                sizes[s] -= 1
                sizes[best] += 1
                moved = True
        if not moved:
            break


def refresh_partition(
    events: EventSet,
    assignment: dict[int, int],
    n_shards: int,
    balance: float = 0.3,
    refine_passes: int = 1,
) -> TaskPartition:
    """Incrementally update a previous task partition to cover *events*.

    The streaming estimator's re-partition step: instead of rebuilding
    entry-contiguous blocks from scratch (which shifts *every* shard as
    the window slides), surviving tasks keep their previous shard, aged-out
    tasks are dropped, and newly arrived tasks join the shard holding most
    of their interaction weight (falling back to the entry-order
    predecessor's shard, the contiguity heuristic).  A bounded greedy
    refinement then migrates only tasks whose interaction pull moved —
    the "diff the interaction graph against the previous plan" step — so
    shards away from the window edges keep identical task sets and their
    worker residents can be reused wholesale.

    Shard *indices* are stable by construction (an emptied shard is
    refilled from the largest one rather than renumbered), because warm
    worker residency is keyed by shard index.  The result targets the
    same posterior as any other partition — sharding only reorders the
    Gibbs scan — so this is a performance choice, never a correctness
    one.

    Parameters
    ----------
    events:
        The new window's event set (its frozen queue orders define the
        interaction graph).
    assignment:
        The previous window's ``task id -> shard`` map (not mutated).
        Tasks mapped to shards ``>= n_shards`` are treated as new.
    n_shards:
        Shard count; clamped to the task count.
    balance / refine_passes:
        As in :func:`partition_tasks`.
    """
    if n_shards < 1:
        raise InferenceError(f"need at least one shard, got {n_shards}")
    if not 0.0 <= balance < 1.0:
        raise InferenceError(f"balance must lie in [0, 1), got {balance}")
    entry_tasks = [int(events.task[e]) for e in events.queue_order(0)]
    n = len(entry_tasks)
    n_shards = max(1, min(int(n_shards), n))
    current = set(entry_tasks)
    weights = task_interaction_graph(events)
    neighbors = _neighbor_lists(weights)
    new_assignment: dict[int, int] = {
        t: s for t, s in assignment.items() if t in current and 0 <= s < n_shards
    }
    sizes = np.zeros(n_shards, dtype=np.int64)
    for s in new_assignment.values():
        sizes[s] += 1
    lo, hi = _balance_bounds(n, n_shards, balance)
    last_shard = 0
    for task in entry_tasks:
        if task in new_assignment:
            last_shard = new_assignment[task]
            continue
        pull = np.zeros(n_shards)
        for other, w in neighbors.get(task, ()):
            s = new_assignment.get(other)
            if s is not None:
                pull[s] += w
        best: int | None = None
        if pull.any():
            # Most-attached shard with room; ties toward the lower index.
            for s in np.argsort(-pull, kind="stable"):
                if sizes[s] < hi:
                    best = int(s)
                    break
        elif sizes[last_shard] < hi:
            best = last_shard
        if best is None:
            best = int(np.argmin(sizes))
        new_assignment[task] = best
        sizes[best] += 1
        last_shard = best
    # A shard whose tasks all aged out must stay live (worker residency is
    # keyed by shard index): refill it from the largest shard.
    for s in range(n_shards):
        while sizes[s] == 0:
            donor = int(np.argmax(sizes))
            for task in reversed(entry_tasks):
                if new_assignment[task] == donor:
                    new_assignment[task] = s
                    sizes[donor] -= 1
                    sizes[s] += 1
                    break
    if n_shards > 1 and refine_passes > 0 and weights:
        _refine_assignment(
            entry_tasks, new_assignment, neighbors, sizes, n_shards, lo, hi,
            refine_passes,
        )
    cut = sum(
        w for (a, b), w in weights.items()
        if new_assignment[a] != new_assignment[b]
    )
    blocks: list[list[int]] = [[] for _ in range(n_shards)]
    for task in sorted(new_assignment):
        blocks[new_assignment[task]].append(task)
    return TaskPartition(
        shards=tuple(tuple(block) for block in blocks),
        assignment=dict(new_assignment),
        cut_size=int(cut),
    )


def boundary_event_sets(
    events: EventSet, partition: TaskPartition
) -> dict[tuple[int, int], np.ndarray]:
    """Events of shard *a* that are within-queue neighbors of shard *b*.

    The queue-neighbor relation is symmetric, so the boundary is too: an
    event appears in the ``(a, b)`` set exactly when one of its neighbors
    appears in ``(b, a)`` — the property the hypothesis suite pins.
    """
    sv = partition.event_shards(events)
    pairs: dict[tuple[int, int], set[int]] = {}
    for q in range(events.n_queues):
        order = events.queue_order(q)
        if order.size < 2:
            continue
        for e, f in zip(order[:-1].tolist(), order[1:].tolist()):
            a, b = int(sv[e]), int(sv[f])
            if a != b:
                pairs.setdefault((a, b), set()).add(e)
                pairs.setdefault((b, a), set()).add(f)
    return {
        key: np.array(sorted(members), dtype=np.int64)
        for key, members in sorted(pairs.items())
    }


# ----------------------------------------------------------------------
# Move classification.
# ----------------------------------------------------------------------


@dataclass
class ShardPlan:
    """Every latent move of a trace, classified under a task partition.

    Interior moves are grouped per shard (preserving the trace's move
    order, which keeps shard kernels deterministic); boundary moves are
    kept in trace order for the master pass.  ``boundary_reads`` /
    ``boundary_writes`` are the full-trace event indices whose times the
    boundary pass reads / may rewrite — exactly the state that crosses
    the master↔shard interface each super-step.
    """

    partition: TaskPartition
    shard_of_event: np.ndarray
    interior_arrivals: list[np.ndarray]
    interior_departures: list[np.ndarray]
    boundary_arrivals: np.ndarray
    boundary_departures: np.ndarray
    boundary_reads: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    boundary_writes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def n_shards(self) -> int:
        """Number of shards the plan covers."""
        return len(self.interior_arrivals)

    @property
    def n_interior(self) -> int:
        """Latent moves whose blankets stay inside one shard."""
        return sum(a.size for a in self.interior_arrivals) + sum(
            d.size for d in self.interior_departures
        )

    @property
    def n_boundary(self) -> int:
        """Latent moves whose blankets cross a shard cut."""
        return self.boundary_arrivals.size + self.boundary_departures.size

    def frontier(self, shard: int) -> np.ndarray:
        """Shard-owned events whose times the master must see post-sweep."""
        reads = self.boundary_reads
        return reads[self.shard_of_event[reads] == shard]


def _same_shard_mask(
    sv: np.ndarray, moves: np.ndarray, partners: list[np.ndarray]
) -> np.ndarray:
    """True where every existing partner shares the move's shard."""
    ok = np.ones(moves.size, dtype=bool)
    own = sv[moves]
    for partner in partners:
        exists = partner >= 0
        same = sv[np.maximum(partner, 0)] == own
        ok &= ~exists | same
    return ok


def build_shard_plan(
    trace: ObservedTrace, state: EventSet, partition: TaskPartition
) -> ShardPlan:
    """Classify every latent move of *trace* against *partition*.

    The classification reads the *current* structure of ``state`` (its
    ``rho`` pointers move under path-MH queue reassignment), so the plan
    must be rebuilt whenever ``state.structure_version`` moves — the
    engine does this automatically.
    """
    sv = partition.event_shards(state)
    n_shards = partition.n_shards
    la = trace.latent_arrival_events
    pa = state.pi[la]
    a_partners = [
        state.rho[la],
        state.rho_inv[la],
        state.rho[pa],
        state.rho_inv[pa],
    ]
    a_interior = _same_shard_mask(sv, la, a_partners)
    ld = trace.latent_departure_events
    d_partners = [state.rho[ld], state.rho_inv[ld]]
    d_interior = _same_shard_mask(sv, ld, d_partners)
    interior_arrivals = [
        la[a_interior & (sv[la] == s)] for s in range(n_shards)
    ]
    interior_departures = [
        ld[d_interior & (sv[ld] == s)] for s in range(n_shards)
    ]
    ba = la[~a_interior]
    bd = ld[~d_interior]
    bp = state.pi[ba]
    read_members = [
        ba, bp, state.rho[ba], state.rho_inv[ba], state.rho[bp], state.rho_inv[bp],
        bd, state.rho[bd], state.rho_inv[bd],
    ]
    reads = np.concatenate(read_members) if read_members else np.empty(0, np.int64)
    reads = np.unique(reads[reads >= 0])
    writes = np.unique(np.concatenate([ba, bp, bd])) if ba.size + bd.size else (
        np.empty(0, dtype=np.int64)
    )
    return ShardPlan(
        partition=partition,
        shard_of_event=sv,
        interior_arrivals=interior_arrivals,
        interior_departures=interior_departures,
        boundary_arrivals=ba,
        boundary_departures=bd,
        boundary_reads=reads.astype(np.int64),
        boundary_writes=writes.astype(np.int64),
    )


# ----------------------------------------------------------------------
# Shard residents (the worker-side unit).
# ----------------------------------------------------------------------


@dataclass
class ShardResident:
    """Everything one worker needs to host one shard, picklable.

    ``sub_state`` is the shard's sub-trace: its own tasks plus frozen
    *ghost* tasks carrying the cross-shard within-queue ``rho`` neighbors
    its service times depend on.  All index columns are in sub-trace
    coordinates; ``own_rows`` selects the shard's own events (ghosts are
    never swept and never counted in statistics).
    """

    shard: int
    sub_state: EventSet
    interior_arrivals: np.ndarray
    interior_departures: np.ndarray
    own_rows: np.ndarray
    inbound: np.ndarray
    frontier: np.ndarray
    rates: np.ndarray
    rng: np.random.Generator
    shuffle: bool
    threads: int
    #: Batch sweep engine for the shard's interior moves: ``"array"`` or
    #: its compiled lowering ``"native"`` (default keeps old pickles and
    #: call sites working).
    kernel: str = "array"


def _validate_rates(rates: np.ndarray, n_queues: int) -> np.ndarray:
    rates = np.asarray(rates, dtype=float)
    if rates.shape != (n_queues,):
        raise InferenceError(
            f"expected {n_queues} rates, got shape {rates.shape}"
        )
    if np.any(~np.isfinite(rates)) or np.any(rates <= 0.0):
        raise InferenceError("all rates must be positive and finite")
    return rates


def _own_service_totals(
    state: EventSet, services: np.ndarray, own_rows: np.ndarray, label: str
) -> np.ndarray:
    """Clamped per-queue service totals over one shard's own events."""
    svc = services[own_rows]
    if svc.size and np.any(svc < _SERVICE_ATOL):
        raise InferenceError(
            f"{label} became infeasible (min service {svc.min():.3e})"
        )
    totals = np.zeros(state.n_queues)
    np.add.at(totals, state.queue[own_rows], np.maximum(svc, 0.0))
    return totals


def _build_resident(r: ShardResident):
    """Build one shard's worker-side unit: caches plus the batch kernel."""
    acache = ArrivalBlanketCache(r.sub_state, r.interior_arrivals, r.rates)
    dcache = DepartureBlanketCache(r.sub_state, r.interior_departures, r.rates)
    kernel = make_sweep_kernel(
        r.kernel, r.sub_state, acache, dcache, r.rates, threads=r.threads
    )
    return (r, kernel, acache, dcache)


def same_shard_structure(a: ShardResident, b: ShardResident) -> bool:
    """Whether two residents for the same shard share every *static* input.

    The blanket caches and the array kernel's conflict-free batches are
    pure functions of the sub-trace structure, the move lists, and the
    threading/shuffle flags — times are read live from the state arrays
    and rates are re-synced on every sweep command.  When this returns
    True a warm worker can keep its built kernel and adopt only the new
    window's time arrays and random stream, producing bitwise the draws a
    cold rebuild would.
    """
    if a.shuffle != b.shuffle or a.threads != b.threads or a.kernel != b.kernel:
        return False
    sa, sb = a.sub_state, b.sub_state
    if sa.n_events != sb.n_events or sa.n_queues != sb.n_queues:
        return False
    if not (
        np.array_equal(sa.task, sb.task)
        and np.array_equal(sa.seq, sb.seq)
        and np.array_equal(sa.queue, sb.queue)
    ):
        return False
    for q in range(sa.n_queues):
        if not np.array_equal(sa.queue_order(q), sb.queue_order(q)):
            return False
    for x, y in (
        (a.interior_arrivals, b.interior_arrivals),
        (a.interior_departures, b.interior_departures),
        (a.own_rows, b.own_rows),
        (a.inbound, b.inbound),
        (a.frontier, b.frontier),
    ):
        if not np.array_equal(x, y):
            return False
    return True


def _shard_worker_main(conn, residents: list[ShardResident]) -> None:
    """Entry point of one shard worker: build kernels, then serve sweeps.

    Messages (tuples, first element is the command):

    * ``("sweep", rates, n_sweeps, inbound)`` — per resident shard: apply
      the master's boundary-region time updates, refresh rates, run
      *n_sweeps* interior sweeps on the resident array kernel, and reply
      with the frontier times, the shard's per-queue service totals, and
      the move counts.
    * ``("adopt", updates)`` — replace / refresh resident shards for a new
      estimation window while the process stays warm.  Per shard the
      payload is ``("resident", r)`` (full rebuild: new structure),
      ``("times", arrivals, departures, rng)`` (same structure: overwrite
      the time arrays in place, adopt the new stream, keep the built
      kernel and caches), or ``("drop",)``.
    * ``("recall",)`` — ship every shard's own times and its evolved
      random stream back but *stay alive* with the residents in place
      (cross-window warm pools); the next ``adopt`` supersedes them.
    * ``("finish",)`` — ship every shard's own times and its evolved
      random stream back, then exit.
    * ``("close",)`` — exit.

    Any exception is reported as ``("error", description)`` and ends the
    worker so the master can shut the pool down cleanly.
    """
    try:
        built = {r.shard: _build_resident(r) for r in residents}
        conn.send(("ready", sorted(built)))
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "sweep":
                _, rates, n_sweeps, inbound = msg
                out = {}
                for shard in sorted(built):
                    r, kernel, acache, dcache = built[shard]
                    rates = _validate_rates(rates, r.sub_state.n_queues)
                    arr_in, dep_in = inbound[shard]
                    r.sub_state.arrival[r.inbound] = arr_in
                    r.sub_state.departure[r.inbound] = dep_in
                    acache.refresh_rates(r.sub_state, rates)
                    dcache.refresh_rates(r.sub_state, rates)
                    kernel.refresh_rates(rates)
                    moves = skipped = 0
                    for _ in range(int(n_sweeps)):
                        m, k = kernel.sweep(r.sub_state, r.rng, shuffle=r.shuffle)
                        moves += m
                        skipped += k
                    totals = _own_service_totals(
                        r.sub_state,
                        r.sub_state.service_times(),
                        r.own_rows,
                        f"shard {shard}",
                    )
                    out[shard] = (
                        r.sub_state.arrival[r.frontier].copy(),
                        r.sub_state.departure[r.frontier].copy(),
                        totals,
                        moves,
                        skipped,
                    )
                conn.send(("ok", out))
            elif cmd == "adopt":
                _, updates = msg
                out = {}
                for shard, payload in updates.items():
                    kind = payload[0]
                    if kind == "resident":
                        superseded = built.get(shard)
                        built[shard] = _build_resident(payload[1])
                        if superseded is not None:
                            # The replaced kernel's thread pool must not
                            # outlive it — rebuilds used to leak threads.
                            superseded[1].close()
                    elif kind == "times":
                        r = built[shard][0]
                        _, arr, dep, rng = payload
                        # In place: the built kernel and caches alias these
                        # arrays.
                        r.sub_state.arrival[:] = arr
                        r.sub_state.departure[:] = dep
                        r.rng = rng
                    else:  # "drop"
                        dropped = built.pop(shard, None)
                        if dropped is not None:
                            dropped[1].close()
                    out[shard] = kind
                conn.send(("ok", out))
            elif cmd in ("finish", "recall"):
                out = {
                    shard: (
                        r.sub_state.arrival[r.own_rows].copy(),
                        r.sub_state.departure[r.own_rows].copy(),
                        r.rng,
                    )
                    for shard, (r, _, _, _) in built.items()
                }
                conn.send(("ok", out))
                if cmd == "finish":
                    return
                # Recalled residents may idle until the next window's
                # adopt; park their kernels' thread pools (the kernels
                # stay built — a later sweep respawns threads lazily).
                for unit in built.values():
                    unit[1].close()
            else:  # "close"
                return
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        for unit in built.values():
            unit[1].close()
        conn.close()


class ShardWorkerPool(PersistentWorkerPool):
    """Persistent worker processes holding resident shard sub-traces.

    Shards are assigned to workers round-robin and never migrate within a
    window; a shard's draws are a pure function of its resident random
    stream, so results are bitwise identical at any worker count and over
    any transport (including the in-process engine built from the same
    plan and streams).
    """

    _failure_label = "shard sweep worker"

    def __init__(
        self,
        residents: list[ShardResident] | None,
        workers: int | None = None,
        transport: WorkerTransport | None = None,
    ):
        super().__init__(residents, workers, _shard_worker_main, transport)

    def sweep(self, rates: np.ndarray, n_sweeps: int, inbound: dict) -> list:
        """One super-step on every shard; returns per-shard replies.

        *inbound* maps shard → ``(arrival_values, departure_values)`` for
        that shard's boundary-region events (the master's writes since the
        last exchange).  Replies are ``(frontier_arrivals,
        frontier_departures, service_totals, n_moves, n_skipped)`` in
        shard order.
        """
        return self._broadcast(
            ("sweep", np.asarray(rates, dtype=float), int(n_sweeps), inbound)
        )

    def finish(self) -> list:
        """Retrieve every shard's own times and random stream, then close."""
        replies = self._broadcast(("finish",))
        self.close()
        return replies


class WarmShardWorkerPool(ShardWorkerPool):
    """A shard worker pool that stays warm *across* estimation windows.

    The streaming estimator's cross-window substrate: worker processes
    (and their transport connections) are spawned once and then serve a
    sequence of windows.  Per window the engine hands the pool its freshly
    built residents via :meth:`adopt`; the pool diffs each shard against
    what its worker currently hosts and ships the minimal update — shards
    whose structure is unchanged (the common case away from the window
    edges under incremental re-partitioning) receive only new time arrays
    and a new random stream, keeping their built blanket caches and
    conflict-free kernel batches.  Because the adopted state is identical
    either way, warm windows are bitwise indistinguishable from cold
    rebuilds — only faster.

    Parameters
    ----------
    workers:
        Worker process count (fixed for the pool's lifetime; shards are
        hosted by worker ``shard % workers``).
    transport:
        Worker transport; defaults to local processes over OS pipes.
    """

    def __init__(self, workers: int, transport: WorkerTransport | None = None):
        super().__init__(None, workers, transport)
        self._hosted: dict[int, ShardResident] = {}
        #: Per-shard update kind shipped by the last :meth:`adopt`
        #: (``"resident"`` = full rebuild, ``"times"`` = warm reuse).
        self.last_adoption: dict[int, str] = {}

    def adopt(self, residents: list[ShardResident]) -> dict[int, str]:
        """Install a new window's residents, shipping only what changed."""
        updates: list[dict[int, tuple]] = [{} for _ in range(self.n_workers)]
        kinds: dict[int, str] = {}
        hosted: dict[int, ShardResident] = {}
        for r in residents:
            worker = r.shard % self.n_workers
            prev = self._hosted.get(r.shard)
            if prev is not None and same_shard_structure(prev, r):
                updates[worker][r.shard] = (
                    "times",
                    r.sub_state.arrival,
                    r.sub_state.departure,
                    r.rng,
                )
                kinds[r.shard] = "times"
            else:
                updates[worker][r.shard] = ("resident", r)
                kinds[r.shard] = "resident"
            hosted[r.shard] = r
        for shard in self._hosted:
            if shard not in hosted:
                updates[shard % self.n_workers][shard] = ("drop",)
        self._hosted = hosted
        self._exchange([("adopt", u) for u in updates])
        self.last_adoption = kinds
        return kinds

    def recall(self) -> list:
        """Pull every shard's own times and stream home; workers stay warm.

        Residents remain hosted so the next window's :meth:`adopt` can
        still diff against them (a tumbling window over a stable region
        reuses everything).
        """
        return self._broadcast(("recall",))

    def probe(self) -> dict:
        """Liveness snapshot of the pool's worker peers.

        The supervision hook for an always-on deployment: a periodic
        probe that sees ``n_alive < n_workers`` on an open pool knows a
        worker was killed before the next sweep trips over the dead
        connection, and the pids let an operator (or a fault-injection
        test) name the victim.
        """
        return {
            "closed": self.closed,
            "n_workers": self.n_workers,
            "n_alive": self.n_alive(),
            "pids": self.worker_pids(),
            "n_hosted_shards": len(self._hosted),
        }

    def close(self) -> None:
        """Shut the pool down and forget hosted residents; idempotent."""
        super().close()
        self._hosted = {}


# ----------------------------------------------------------------------
# The engine.
# ----------------------------------------------------------------------


class ShardedSweepEngine:
    """The sharded systematic scan: boundary pass, then per-shard kernels.

    A sweep is the exact-Gibbs scan ``[boundary moves (scalar master
    pass), shard 0 interior (array kernel), ..., shard S-1 interior]``.
    Interior moves of different shards touch disjoint times, so the shard
    segments may execute concurrently (worker processes) without changing
    any draw; with ``n_shards == 1`` the scan *is* the plain array-kernel
    sweep, driven by the caller's generator for bitwise equivalence.

    Parameters
    ----------
    trace / state / rates:
        As in :class:`~repro.inference.gibbs.GibbsSampler`; the engine
        mutates ``state`` in place (in worker mode, only its boundary
        region — see :meth:`finish_workers`).
    n_shards:
        Requested shard count; clamped to the task count by the
        partitioner.
    random_state:
        Seed material for the boundary stream and the per-shard streams
        (spawned, never drawn from).  Unused when the effective shard
        count is 1.
    kernel:
        Batch kernel for every shard's interior sweep: ``"array"``
        (default) or its JIT-compiled lowering ``"native"`` (see
        :mod:`repro.inference.native`); shipped to workers with each
        resident.
    threads:
        Thread count for every shard kernel's batch evaluation; draws
        are bitwise invariant to it.
    workers:
        ``None`` runs shards in-process; a positive count attaches a
        :class:`ShardWorkerPool` over that many processes.
    pool:
        An externally owned :class:`WarmShardWorkerPool` to adopt the
        shards instead of spawning a dedicated pool — the streaming
        estimator's cross-window path.  The engine never closes an
        external pool; :meth:`finish_workers` recalls state and leaves
        the workers warm for the next window.  Ignored when the effective
        shard count is 1 (tiny windows fall back to the plain kernel).
    transport:
        Worker transport for a dedicated pool (see
        :mod:`repro.inference.transport`); pipes by default.
    """

    def __init__(
        self,
        trace: ObservedTrace,
        state: EventSet,
        rates: np.ndarray,
        n_shards: int,
        random_state: RandomState = None,
        shuffle: bool = True,
        kernel: str = "array",
        threads: int = 1,
        workers: int | None = None,
        partition: TaskPartition | None = None,
        pool: "WarmShardWorkerPool | None" = None,
        transport: WorkerTransport | None = None,
    ) -> None:
        self.trace = trace
        self.shuffle = bool(shuffle)
        self.kernel = str(kernel)
        self.threads = int(threads)
        self._rates = np.asarray(rates, dtype=float).copy()
        if partition is None:
            partition = partition_tasks(state, n_shards)
        self.partition = partition
        self.n_shards = partition.n_shards
        self.plan = build_shard_plan(trace, state, partition)
        self.structure_version = state.structure_version
        if self.n_shards == 1:
            # Bitwise passthrough: the single shard consumes the caller's
            # generator exactly like the plain array kernel would.
            self._boundary_rng = None
            self._shard_rngs = None
        else:
            children = as_seed_sequence(random_state).spawn(self.n_shards + 1)
            self._boundary_rng = np.random.Generator(np.random.PCG64(children[0]))
            self._shard_rngs = [
                np.random.Generator(np.random.PCG64(child)) for child in children[1:]
            ]
        self._own_full = [
            np.flatnonzero(self.plan.shard_of_event == s)
            for s in range(self.n_shards)
        ]
        self._pool: ShardWorkerPool | None = None
        self._owns_pool = True
        self._last_shard_totals: np.ndarray | None = None
        #: Per-shard adoption kinds when attached to an external warm pool
        #: (``"times"`` entries mark shards whose kernels were reused).
        self.adoption: dict[int, str] = {}
        if pool is not None and self.n_shards > 1:
            self._build_master(state, build_kernels=False)
            self._pool = pool
            self._owns_pool = False
            self.adoption = pool.adopt(self._build_residents(state))
        elif workers is not None and self.n_shards > 1:
            self._build_master(state, build_kernels=False)
            self._attach_workers(state, int(workers), transport)
        else:
            self._build_master(state, build_kernels=True)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build_master(self, state: EventSet, build_kernels: bool) -> None:
        """Boundary caches always; per-shard kernels for in-process mode."""
        plan = self.plan
        self._boundary_acache = ArrivalBlanketCache(
            state, plan.boundary_arrivals, self._rates
        )
        self._boundary_dcache = DepartureBlanketCache(
            state, plan.boundary_departures, self._rates
        )
        self._ba_slots = np.arange(plan.boundary_arrivals.size)
        self._bd_slots = np.arange(plan.boundary_departures.size)
        old = getattr(self, "_kernels", None)
        if old is not None:
            for kernel in old:
                kernel.close()
        self._kernels: list[ArraySweepKernel] | None = None
        if build_kernels:
            self._build_shard_kernels(state)

    def _build_shard_kernels(self, state: EventSet) -> None:
        """Per-shard restricted caches + batch kernels (in-process sweeps)."""
        plan = self.plan
        self._kernels = []
        for s in range(self.n_shards):
            acache = ArrivalBlanketCache(
                state, plan.interior_arrivals[s], self._rates
            )
            dcache = DepartureBlanketCache(
                state, plan.interior_departures[s], self._rates
            )
            self._kernels.append(
                make_sweep_kernel(
                    self.kernel, state, acache, dcache, self._rates,
                    threads=self.threads,
                )
            )

    def _ghost_tasks(self, state: EventSet, shard: int) -> set[int]:
        """Foreign tasks whose events are ``rho`` predecessors of own events.

        A shard's own service times read ``d_rho(e)``; keeping these
        cross-shard predecessors around as frozen ghost tasks makes the
        sub-trace's restricted ``rho`` pointers agree with the full trace
        on every own event, so worker-side statistics are exact.
        """
        own = self._own_full[shard]
        preds = state.rho[own]
        preds = preds[preds >= 0]
        foreign = preds[self.plan.shard_of_event[preds] != shard]
        return {int(t) for t in state.task[foreign]}

    def _build_residents(self, state: EventSet) -> list[ShardResident]:
        """One picklable resident per shard, plus the master's index maps."""
        plan = self.plan
        residents = []
        self._frontier_full = []
        self._inbound_full = []
        for s in range(self.n_shards):
            own_tasks = set(plan.partition.shards[s])
            tasks = sorted(own_tasks | self._ghost_tasks(state, s))
            sub_state, kept = subset_tasks(state, tasks)
            submap = np.full(state.n_events, -1, dtype=np.int64)
            submap[kept] = np.arange(kept.size)
            frontier_full = plan.frontier(s)
            inbound_full = np.intersect1d(plan.boundary_writes, kept)
            self._frontier_full.append(frontier_full)
            self._inbound_full.append(inbound_full)
            residents.append(
                ShardResident(
                    shard=s,
                    sub_state=sub_state,
                    interior_arrivals=submap[plan.interior_arrivals[s]],
                    interior_departures=submap[plan.interior_departures[s]],
                    own_rows=submap[self._own_full[s]],
                    inbound=submap[inbound_full],
                    frontier=submap[frontier_full],
                    rates=self._rates.copy(),
                    rng=self._shard_rngs[s],
                    shuffle=self.shuffle,
                    threads=self.threads,
                    kernel=self.kernel,
                )
            )
        # The masters' copies of the shard streams go stale the moment the
        # workers draw from theirs; finish_workers() restores them.
        self._shard_rngs = None
        return residents

    def _attach_workers(
        self, state: EventSet, workers: int,
        transport: WorkerTransport | None = None,
    ) -> None:
        self._pool = ShardWorkerPool(
            self._build_residents(state), workers=workers, transport=transport
        )

    # ------------------------------------------------------------------
    # Parameters and structure.
    # ------------------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Whether shard workers are currently attached."""
        return self._pool is not None

    def refresh_rates(self, state: EventSet, rates: np.ndarray) -> None:
        """Adopt a new rate vector (the StEM M-step hook)."""
        self._rates = np.asarray(rates, dtype=float).copy()
        self._boundary_acache.refresh_rates(state, self._rates)
        self._boundary_dcache.refresh_rates(state, self._rates)
        if self._kernels is not None:
            for kernel in self._kernels:
                kernel.refresh_rates(self._rates)
        # Workers receive the rates with the next sweep command.

    def _ensure_fresh(self, state: EventSet) -> None:
        if state.structure_version == self.structure_version:
            return
        if self.pooled:
            raise InferenceError(
                "event-set structure changed while shard workers were "
                "attached; path-MH moves require the in-process engine"
            )
        self.plan = build_shard_plan(self.trace, state, self.partition)
        self._own_full = [
            np.flatnonzero(self.plan.shard_of_event == s)
            for s in range(self.n_shards)
        ]
        self._build_master(state, build_kernels=True)
        self.structure_version = state.structure_version

    # ------------------------------------------------------------------
    # Sweeping.
    # ------------------------------------------------------------------

    def sweep(self, state: EventSet, rng: np.random.Generator) -> tuple[int, int]:
        """One full systematic scan; returns ``(n_moves, n_skipped)``.

        *rng* drives the scan only when ``n_shards == 1`` (the bitwise
        passthrough); otherwise the boundary and shard streams spawned at
        construction are used, which makes the scan deterministic at a
        fixed seed for any shard count and any worker count.
        """
        self._ensure_fresh(state)
        if self.pooled:
            return self._pooled_sweep(state)
        return self._serial_sweep(state, rng)

    def _ensure_kernels(self, state: EventSet) -> None:
        """Build the per-shard master kernels on first in-process use.

        :meth:`finish_workers` defers this: a streaming window ends with
        a finish but never sweeps in-process again, so eagerly rebuilding
        every shard's caches and conflict-free batches there would pay
        the exact cost the warm workers just avoided.
        """
        if self._kernels is None:
            self._build_shard_kernels(state)

    def _serial_sweep(
        self, state: EventSet, rng: np.random.Generator
    ) -> tuple[int, int]:
        self._ensure_kernels(state)
        moves, skipped = self._boundary_pass(state, self._boundary_rng or rng)
        for s in range(self.n_shards):
            shard_rng = self._shard_rngs[s] if self._shard_rngs is not None else rng
            m, k = self._kernels[s].sweep(state, shard_rng, shuffle=self.shuffle)
            moves += m
            skipped += k
        return moves, skipped

    def _pooled_sweep(self, state: EventSet) -> tuple[int, int]:
        moves, skipped = self._boundary_pass(state, self._boundary_rng)
        inbound = {
            s: (
                state.arrival[self._inbound_full[s]].copy(),
                state.departure[self._inbound_full[s]].copy(),
            )
            for s in range(self.n_shards)
        }
        replies = self._pool.sweep(self._rates, 1, inbound)
        totals = np.zeros(state.n_queues)
        for s, (f_arr, f_dep, part, m, k) in enumerate(replies):
            idx = self._frontier_full[s]
            state.arrival[idx] = f_arr
            state.departure[idx] = f_dep
            totals = totals + part
            moves += m
            skipped += k
        self._last_shard_totals = totals
        return moves, skipped

    def _boundary_pass(
        self, state: EventSet, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Resample every boundary move from its exact full conditional.

        The scalar mirror of the blanket-cached object sweep: arrival
        moves first, then task-final departures, each slot order shuffled
        by the boundary stream when *shuffle* is set.
        """
        if self._ba_slots.size == 0 and self._bd_slots.size == 0:
            return 0, 0
        moves = skipped = 0
        arrival = state.arrival
        departure = state.departure
        a_order = self._ba_slots
        d_order = self._bd_slots
        if self.shuffle:
            a_order = rng.permutation(a_order)
            d_order = rng.permutation(d_order)
        acache = self._boundary_acache
        dcache = self._boundary_dcache
        for i in a_order:
            dist = arrival_conditional_cached(arrival, departure, acache, int(i))
            if dist is None:
                skipped += 1
                continue
            state.set_arrival(acache.events[i], dist.sample(rng))
            moves += 1
        for i in d_order:
            dist = final_departure_conditional_cached(
                arrival, departure, dcache, int(i)
            )
            if dist is None:
                skipped += 1
                continue
            departure[dcache.events[i]] = dist.sample(rng)
            moves += 1
        return moves, skipped

    def profile_sweep(
        self, state: EventSet, rng: np.random.Generator
    ) -> dict[str, object]:
        """One in-process sweep with a wall-clock breakdown.

        Returns ``{"boundary": seconds, "shards": [seconds, ...]}`` for
        the scan segments that an attached worker pool would overlap —
        ``boundary + max(shards)`` is the critical path of a perfectly
        parallel super-step, the quantity
        ``benchmarks/bench_shard_scaling.py`` reports as the modeled
        parallel speedup.
        """
        if self.pooled:
            raise InferenceError("profiling runs on the in-process engine")
        self._ensure_fresh(state)
        self._ensure_kernels(state)
        t0 = time.perf_counter()
        self._boundary_pass(state, self._boundary_rng or rng)
        boundary = time.perf_counter() - t0
        shard_times = []
        for s in range(self.n_shards):
            shard_rng = self._shard_rngs[s] if self._shard_rngs is not None else rng
            t0 = time.perf_counter()
            self._kernels[s].sweep(state, shard_rng, shuffle=self.shuffle)
            shard_times.append(time.perf_counter() - t0)
        return {"boundary": boundary, "shards": shard_times}

    # ------------------------------------------------------------------
    # Statistics and lifecycle.
    # ------------------------------------------------------------------

    def service_totals(self, state: EventSet) -> np.ndarray:
        """Per-queue service totals, accumulated shard by shard.

        In-process: computed from the full state with the same per-shard
        association (partial sums in shard order) the worker pool uses, so
        the two modes agree bitwise.  Pooled: the totals shipped with the
        last super-step's replies.
        """
        if self.pooled:
            if self._last_shard_totals is None:
                raise InferenceError(
                    "no shard statistics yet; run at least one sweep"
                )
            return self._last_shard_totals.copy()
        services = state.service_times()
        totals = np.zeros(state.n_queues)
        for s in range(self.n_shards):
            totals = totals + _own_service_totals(
                state, services, self._own_full[s], f"shard {s}"
            )
        return totals

    def finish_workers(self, state: EventSet) -> None:
        """Pull worker state back, detach the pool, go in-process.

        Every shard's own times are scattered into ``state`` (making it
        the complete stitched chain state) and the evolved per-shard
        generators are adopted, so subsequent in-process sweeps continue
        the exact random streams — a pooled run followed by
        ``finish_workers`` is bitwise indistinguishable from a run that
        was in-process all along.  A dedicated pool is closed; an external
        warm pool is only *recalled* — its processes stay alive for the
        next window.
        """
        if not self.pooled:
            return
        if self._owns_pool:
            replies = self._pool.finish()
        else:
            replies = self._pool.recall()
        self._pool = None
        rngs = []
        for s, (arr, dep, rng) in enumerate(replies):
            own = self._own_full[s]
            state.arrival[own] = arr
            state.departure[own] = dep
            rngs.append(rng)
        self._shard_rngs = rngs
        self._last_shard_totals = None
        # Boundary caches are rebuilt now (cheap, and needed by any
        # subsequent set_rates); the per-shard kernels are deferred to the
        # first in-process sweep — a streaming window that finishes and is
        # discarded never pays for them.
        self._build_master(state, build_kernels=False)

    def close(self) -> None:
        """Drop any attached workers without syncing state; idempotent.

        Never closes an externally owned warm pool — its owner decides
        when the cross-window workers die.  In-process shard kernels shut
        down their thread pools so repeated engine rebuilds cannot leak
        executor threads.
        """
        if self._pool is not None:
            if self._owns_pool:
                self._pool.close()
            self._pool = None
        kernels = getattr(self, "_kernels", None)
        if kernels is not None:
            for kernel in kernels:
                kernel.close()
