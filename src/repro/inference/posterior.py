"""Posterior summaries of per-queue service and waiting times.

Paper Section 4: "Once a point estimate mu-hat of the mean service times is
available, an estimate of the waiting time can be obtained by running the
Gibbs sampler with mu-hat fixed."  This module packages exactly that:
posterior means (and spreads) of the realized per-queue mean waiting and
service times under fixed parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inference.gibbs import GibbsSampler, PosteriorSamples
from repro.inference.init_heuristic import initial_rates_from_observed
from repro.inference.stem import initialize_state
from repro.observation import ObservedTrace
from repro.rng import RandomState, as_generator


@dataclass
class PosteriorSummary:
    """Queue-level posterior estimates at fixed parameters.

    Attributes
    ----------
    rates:
        The (fixed) parameter vector used during sampling.
    service_mean / service_std:
        Posterior mean/std of the realized per-queue mean service time.
        Note the *model* mean service time is ``1 / rates``; the realized
        mean over the finite trace differs by sampling noise.
    waiting_mean / waiting_std:
        Posterior mean/std of the realized per-queue mean waiting time —
        the quantity used to localize load-induced bottlenecks.
    samples:
        The raw :class:`~repro.inference.gibbs.PosteriorSamples`.
    """

    rates: np.ndarray
    service_mean: np.ndarray
    service_std: np.ndarray
    waiting_mean: np.ndarray
    waiting_std: np.ndarray
    samples: PosteriorSamples

    @property
    def n_queues(self) -> int:
        """Number of queues (including the arrival pseudo-queue 0)."""
        return self.rates.size

    @classmethod
    def from_samples(
        cls, rates: np.ndarray, samples: PosteriorSamples
    ) -> "PosteriorSummary":
        """Summarize an existing sample set (single- or pooled multi-chain)."""
        return cls(
            rates=np.asarray(rates, dtype=float).copy(),
            service_mean=samples.posterior_mean_service(),
            service_std=samples.posterior_std_service(),
            waiting_mean=samples.posterior_mean_waiting(),
            waiting_std=samples.posterior_std_waiting(),
            samples=samples,
        )


def estimate_posterior(
    trace: ObservedTrace,
    rates: np.ndarray | None = None,
    n_samples: int = 50,
    burn_in: int = 20,
    thin: int = 1,
    init_method: str = "auto",
    state=None,
    random_state: RandomState = None,
    kernel: str = "array",
) -> PosteriorSummary:
    """Run the Gibbs sampler at fixed rates and summarize the posterior.

    Parameters
    ----------
    trace:
        The observed trace.
    rates:
        Fixed parameter vector (e.g. a StEM estimate).  Defaults to the
        crude observed-response initialization — only sensible for smoke
        tests; real callers should pass a StEM/MCEM estimate.
    n_samples, burn_in, thin:
        Chain schedule (see :meth:`~repro.inference.gibbs.GibbsSampler.collect`).
    init_method:
        Latent-time initializer when *state* is not supplied.
    state:
        Optional pre-initialized (e.g. warm) event set; mutated in place.
    random_state:
        Seed or generator.
    kernel:
        Sweep engine (see :class:`~repro.inference.gibbs.GibbsSampler`).
    """
    rng = as_generator(random_state)
    if rates is None:
        rates = initial_rates_from_observed(trace)
    rates = np.asarray(rates, dtype=float)
    if state is None:
        state = initialize_state(trace, rates, method=init_method)
    sampler = GibbsSampler(trace, state, rates, random_state=rng, kernel=kernel)
    samples = sampler.collect(n_samples=n_samples, thin=thin, burn_in=burn_in)
    return PosteriorSummary.from_samples(rates, samples)
