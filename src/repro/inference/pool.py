"""Persistent worker processes for multi-chain EM E-steps.

Naive per-iteration pooling of StEM/MCEM E-steps loses: shipping every
chain's full latent state to a fresh worker each round costs more than the
sweep itself.  The fix — the standard long-lived-worker design of
datacenter services — is to make the chain state *resident*: each worker
process builds its chains once, keeps them warm across EM iterations, and
per round receives only the current rate vector and returns only the
per-queue sufficient statistics (a ``total_service_by_queue`` vector per
chain).  The master never touches chain state until the final iterate,
when the evolved samplers are shipped back once.

Determinism: a chain's trajectory is a pure function of its
:class:`ChainRecipe` (trace, init method, seed material), never of the
worker that hosts it, so ``run_stem``/``run_mcem`` produce **bitwise
identical** rate histories serially and at any worker count —
``tests/inference/test_pool.py`` pins this.

This module is also the single home of E-step chain *construction*
(:func:`chain_recipes` / :func:`build_chain_sampler`): the serial paths of
:mod:`repro.inference.stem` and :mod:`repro.inference.mcem` build their
in-process samplers from the same recipes the workers consume, which is
what makes the serial/persistent equivalence an identity rather than a
hope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.events import EventSet
from repro.inference.chains import chain_seed_sequences, jittered_rates
from repro.inference.gibbs import GibbsSampler
from repro.inference.init_heuristic import heuristic_initialize
from repro.inference.init_lp import lp_initialize
from repro.inference.transport import PipeTransport, WorkerTransport
from repro.observation import ObservedTrace
from repro.rng import RandomState, as_generator


def initialize_state(
    trace: ObservedTrace,
    rates: np.ndarray,
    method: str = "auto",
    lp_size_limit: int = 6000,
) -> EventSet:
    """Build a feasible starting state with the requested initializer.

    ``method`` is ``"lp"``, ``"heuristic"``, or ``"auto"`` (LP when the
    trace has at most *lp_size_limit* events, else the heuristic — the LP is
    exact but its solve time grows superlinearly).
    """
    if method == "auto":
        method = "lp" if trace.skeleton.n_events <= lp_size_limit else "heuristic"
    if method == "lp":
        return lp_initialize(trace, rates)
    if method == "heuristic":
        return heuristic_initialize(trace, rates)
    raise InferenceError(f"unknown initialization method {method!r}")


@dataclass
class ChainRecipe:
    """Everything needed to (re)build one E-step chain, picklable.

    Chain 0 carries ``init_seed=None`` (it initializes at the base rates
    with the caller's generator, exactly like the historical single-chain
    run); chains 1+ carry dedicated seed-sequence spawns and jitter their
    initializer rates.  ``shards`` selects the sharded sweep engine of
    :mod:`repro.inference.shard` for the chain's sweeps.
    """

    index: int
    trace: ObservedTrace
    rates: np.ndarray
    init_method: str
    init_seed: np.random.SeedSequence | None
    sweep_state: RandomState
    jitter: float
    shuffle: bool
    kernel: str
    shards: int = 1
    #: Threaded batch evaluation inside every array/native kernel the
    #: chain builds (bitwise invariant to the thread count).
    threads: int = 1
    #: Optional pre-computed task partition for the sharded engine (the
    #: streaming estimator's incremental re-partition path); ``None``
    #: lets the engine run :func:`~repro.inference.shard.partition_tasks`.
    partition: object | None = None


def chain_recipes(
    trace: ObservedTrace,
    rates: np.ndarray,
    init_method: str,
    n_chains: int,
    jitter: float,
    random_state: RandomState,
    shuffle: bool,
    kernel: str = "array",
    shards: int = 1,
    partition=None,
    threads: int = 1,
) -> list[ChainRecipe]:
    """One recipe per E-step chain, over-dispersed past chain 0.

    Chain 0's starting state (initialized at the given rates) and
    generator (exactly ``as_generator(random_state)``) match the
    historical single-chain run, so ``n_chains=1`` reproduces it
    bit-for-bit; extra chains initialize at jittered rates and sample from
    independent seed-sequence spawns that never draw from a
    caller-supplied generator.
    """
    recipes = [
        ChainRecipe(
            index=0,
            trace=trace,
            rates=rates,
            init_method=init_method,
            init_seed=None,
            sweep_state=as_generator(random_state),
            jitter=jitter,
            shuffle=shuffle,
            kernel=kernel,
            shards=shards,
            partition=partition,
            threads=threads,
        )
    ]
    if n_chains == 1:
        return recipes
    for k, (init_seed, sweep_seed) in enumerate(
        chain_seed_sequences(random_state, n_chains)[1:], start=1
    ):
        recipes.append(
            ChainRecipe(
                index=k,
                trace=trace,
                rates=rates,
                init_method=init_method,
                init_seed=init_seed,
                sweep_state=sweep_seed,
                jitter=jitter,
                shuffle=shuffle,
                kernel=kernel,
                shards=shards,
                partition=partition,
                threads=threads,
            )
        )
    return recipes


def build_chain_sampler(
    recipe: ChainRecipe,
    shard_workers: int | None = None,
    shard_pool=None,
    shard_transport: WorkerTransport | None = None,
) -> GibbsSampler:
    """Materialize one warm E-step chain from its recipe.

    *shard_workers* optionally attaches a shard worker pool to a sharded
    chain (``recipe.shards > 1``) — the distributed-sweep path of
    :func:`~repro.inference.stem.run_stem`; serial and pooled chains are
    built from the same recipe either way, and *shard_transport* selects
    that pool's worker transport.  *shard_pool* instead adopts an
    externally owned warm pool
    (:class:`~repro.inference.shard.WarmShardWorkerPool`) whose processes
    outlive this chain — the streaming estimator's cross-window path.
    """
    if recipe.init_seed is None:
        init_rates = recipe.rates
    else:
        init_rates = jittered_rates(recipe.rates, recipe.jitter, recipe.init_seed)
    state = initialize_state(recipe.trace, init_rates, method=recipe.init_method)
    return GibbsSampler(
        recipe.trace,
        state,
        recipe.rates,
        random_state=recipe.sweep_state,
        shuffle=recipe.shuffle,
        kernel=recipe.kernel,
        shards=recipe.shards,
        shard_workers=shard_workers if recipe.shards > 1 else None,
        shard_partition=recipe.partition,
        shard_pool=shard_pool if recipe.shards > 1 else None,
        shard_transport=shard_transport if recipe.shards > 1 else None,
        threads=recipe.threads,
    )


# ----------------------------------------------------------------------
# Worker protocol.
# ----------------------------------------------------------------------


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _pool_worker_main(conn, recipes: list[ChainRecipe]) -> None:
    """Entry point of one persistent worker: build chains, then serve steps.

    Messages (tuples, first element is the command):

    * ``("step", rates, burn_in, n_keep, accumulate)`` — for each resident
      chain: ``set_rates``, run *burn_in* sweeps, then *n_keep* sweeps;
      reply ``("ok", {chain_index: stats})`` where stats is the per-sweep
      stacked totals (*accumulate*) or the final-state totals.
    * ``("finish", rates)`` — set the final rates and ship the evolved
      samplers back, then exit.
    * ``("close",)`` — exit.

    Any exception is reported as ``("error", description)`` and ends the
    worker, so the master can shut the pool down cleanly.
    """
    try:
        samplers = {r.index: build_chain_sampler(r) for r in recipes}
        conn.send(("ready", sorted(samplers)))
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe
        conn.send(("error", _describe_error(exc)))
        conn.close()
        return
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "step":
                _, rates, burn_in, n_keep, accumulate = msg
                out = {}
                for index in sorted(samplers):
                    sampler = samplers[index]
                    sampler.set_rates(rates)
                    sampler.run(burn_in)
                    if accumulate:
                        kept = np.empty((n_keep, sampler.state.n_queues))
                        for i in range(n_keep):
                            sampler.sweep()
                            kept[i] = sampler.state.total_service_by_queue()
                        out[index] = kept
                    else:
                        sampler.run(n_keep)
                        # service_totals == chain_service_totals for
                        # unsharded chains, and matches the serial sharded
                        # accumulation order for sharded ones.
                        out[index] = sampler.service_totals()
                conn.send(("ok", out))
            elif cmd == "finish":
                _, rates = msg
                for sampler in samplers.values():
                    sampler.set_rates(rates)
                conn.send(("ok", samplers))
                return
            else:  # "close"
                return
    except BaseException as exc:  # noqa: BLE001 — must cross the pipe
        try:
            conn.send(("error", _describe_error(exc)))
        except OSError:
            pass
    finally:
        conn.close()


class PersistentWorkerPool:
    """Worker-lifecycle core shared by the chain and shard worker pools.

    Payload items (chain recipes, shard residents) are assigned to worker
    processes round-robin at construction and never migrate, so the
    hosting worker is always an implementation detail.  Workers are
    started through a :class:`~repro.inference.transport.WorkerTransport`
    (OS pipes by default, sockets for cross-machine pools) — the message
    protocol is transport-agnostic.  With ``items=None`` the pool starts
    *empty* workers that wait for payloads shipped later over the
    protocol (the warm cross-window pools of
    :mod:`repro.online.streaming`).  Use as a context manager; on error
    or exit every worker is joined (and terminated if it does not exit
    promptly).
    """

    #: Prefix of surfaced worker failures; subclasses override.
    _failure_label = "persistent worker"

    def __init__(
        self,
        items: list | None,
        workers: int | None,
        worker_main,
        transport: WorkerTransport | None = None,
    ) -> None:
        if items is None:
            if workers is None or int(workers) < 1:
                raise InferenceError(
                    f"an empty (warm) pool needs an explicit worker count, got {workers}"
                )
            n_workers = int(workers)
            payloads: list[list] = [[] for _ in range(n_workers)]
            self.n_items = 0
        else:
            if not items:
                raise InferenceError("need at least one worker payload")
            n_workers = len(items) if workers is None else int(workers)
            if n_workers < 1:
                raise InferenceError(f"need at least one worker, got {workers}")
            n_workers = min(n_workers, len(items))
            payloads = [items[w::n_workers] for w in range(n_workers)]
            self.n_items = len(items)
        self.n_workers = n_workers
        self.transport = transport if transport is not None else PipeTransport()
        self._handles = []
        self._closed = False
        try:
            for payload in payloads:
                self._handles.append(self.transport.launch(worker_main, payload))
            for handle in self._handles:
                self._expect_ok(handle.recv())
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Protocol plumbing.
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the pool has been shut down (voluntarily or on error)."""
        return self._closed

    def worker_pids(self) -> list[int | None]:
        """PID per worker (``None`` for remote peers the master never
        spawned) — what a supervisor's liveness probe, or a fault-injection
        test picking a victim, needs to see."""
        return [
            getattr(handle.process, "pid", None) for handle in self._handles
        ]

    def n_alive(self) -> int:
        """Locally spawned worker processes still running.

        A remote peer (``process is None``) is not counted — its liveness
        is only observable through the conversation (keepalive turns a
        vanished peer into an :class:`EOFError` on the next exchange).
        """
        return sum(1 for handle in self._handles if handle.is_alive())

    def _expect_ok(self, reply):
        if reply[0] == "error":
            self.close()
            raise InferenceError(f"{self._failure_label} failed: {reply[1]}")
        return reply[1]

    def _exchange(self, messages: list) -> list:
        """Send one message *per worker*; merge keyed replies in order.

        Any worker-side error (or a dead connection) shuts the whole pool
        down and surfaces as :class:`~repro.errors.InferenceError`.
        """
        if self._closed:
            raise InferenceError("the worker pool is closed")
        merged: dict[int, object] = {}
        failure: str | None = None
        delivered = []
        for handle, message in zip(self._handles, messages, strict=True):
            try:
                handle.send(message)
            except (BrokenPipeError, EOFError, OSError):
                failure = failure or "worker connection died before the request"
                continue
            delivered.append(handle)
        for handle in delivered:
            try:
                reply = handle.recv()
            except (EOFError, OSError):
                failure = failure or "worker exited without replying"
                continue
            if reply[0] == "error":
                failure = failure or reply[1]
            else:
                merged.update(reply[1])
        if failure is not None:
            self.close()
            raise InferenceError(f"{self._failure_label} failed: {failure}")
        return [merged[index] for index in sorted(merged)]

    def _broadcast(self, message) -> list:
        """Send the same message to every worker; merge keyed replies."""
        return self._exchange([message] * len(self._handles))

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut every worker down; idempotent, never raises."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.send(("close",))
            except (BrokenPipeError, EOFError, OSError):
                pass
        for handle in self._handles:
            handle.join(timeout=5.0)
            if handle.is_alive():
                handle.terminate()
                handle.join(timeout=5.0)
        for handle in self._handles:
            handle.close_endpoint()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PersistentChainPool(PersistentWorkerPool):
    """Long-lived worker processes holding warm E-step chains.

    Chains never migrate between workers, so results are bitwise identical
    at any ``workers`` count (including the serial in-process path built
    from the same recipes).

    Parameters
    ----------
    recipes:
        Output of :func:`chain_recipes`.
    workers:
        Worker process count; clamped to the number of chains.  Defaults
        to one worker per chain.
    transport:
        Worker transport (see :mod:`repro.inference.transport`); defaults
        to local processes over OS pipes.
    """

    _failure_label = "persistent E-step worker"

    def __init__(
        self,
        recipes: list[ChainRecipe],
        workers: int | None = None,
        transport: WorkerTransport | None = None,
    ) -> None:
        super().__init__(recipes, workers, _pool_worker_main, transport)
        self.n_chains = self.n_items

    # ------------------------------------------------------------------
    # E-step operations.
    # ------------------------------------------------------------------

    def step(
        self,
        rates: np.ndarray,
        burn_in: int = 0,
        n_keep: int = 1,
        accumulate: bool = False,
    ) -> list[np.ndarray]:
        """One E-step round on every chain; returns per-chain statistics.

        With ``accumulate=False`` each chain runs ``burn_in + n_keep``
        sweeps and returns its final-state per-queue totals (the StEM
        E-step).  With ``accumulate=True`` it returns the ``(n_keep,
        n_queues)`` stack of post-burn-in per-sweep totals (the MCEM
        E-step), letting the master reduce them in exact serial order.
        """
        rates = np.asarray(rates, dtype=float)
        return self._broadcast(("step", rates, int(burn_in), int(n_keep), accumulate))

    def finish(self, rates: np.ndarray) -> list[GibbsSampler]:
        """Set the final rates and retrieve the evolved samplers, once."""
        rates = np.asarray(rates, dtype=float)
        samplers = self._broadcast(("finish", rates))
        self.close()
        return samplers
