"""The paper's contribution: posterior inference for M/M/1 queueing networks.

Layout
------
* :mod:`repro.inference.piecewise` — log-space piecewise-exponential
  densities (the family every Gibbs conditional belongs to).
* :mod:`repro.inference.conditional` — builds the local conditional
  ``p(a_e | E \\ e)`` of paper Eq. (2)–(4) and the analogous final-departure
  conditional, as piecewise-exponential objects.
* :mod:`repro.inference.gibbs` — the Gibbs sampler over unobserved times
  (paper Section 3).
* :mod:`repro.inference.init_heuristic` / :mod:`repro.inference.init_lp` —
  feasible initialization (paper Section 3, last paragraph).
* :mod:`repro.inference.mstep` / :mod:`repro.inference.stem` /
  :mod:`repro.inference.mcem` — parameter estimation (paper Section 4).
* :mod:`repro.inference.posterior` — posterior summaries of service and
  waiting times with fixed parameters.
* :mod:`repro.inference.kernel` — the array-native vectorized sweep
  engine (conflict-free move batches, numpy log-mass and inverse-CDF
  kernels); selected with ``GibbsSampler(kernel="array")``, the default.
* :mod:`repro.inference.chains` — parallel multi-chain runs from
  over-dispersed starts, with cross-chain convergence diagnostics.
* :mod:`repro.inference.pool` — persistent worker processes holding warm
  E-step chains across StEM/MCEM iterations (only rate vectors and
  sufficient statistics cross the process boundary).
* :mod:`repro.inference.shard` — sharded single-chain sweeps: the trace's
  tasks are partitioned (min-cut-flavored greedy over the
  task-interaction graph), shard interiors sweep concurrently on
  restricted array kernels, and only boundary events — moves whose
  Markov blanket crosses a shard cut — are exchanged between super-steps.
* :mod:`repro.inference.transport` — pluggable master↔worker message
  transports for the persistent pools (local pipes by default, TCP
  sockets for cross-machine workers; identical protocol and draws).
* :mod:`repro.inference.diagnostics` — MCMC convergence diagnostics
  (within-chain and cross-chain).
"""

from repro.inference.chains import (
    ChainSpec,
    MultiChainPosterior,
    MultiChainSampler,
    chain_seed_sequences,
)
from repro.inference.conditional import (
    ArrivalBlanketCache,
    ArrivalNeighborhood,
    DepartureBlanketCache,
    arrival_conditional,
    arrival_neighborhood,
    final_departure_conditional,
    markov_blanket,
)
from repro.inference.diagnostics import (
    autocorrelation,
    effective_sample_size,
    geweke_z,
    multichain_ess,
    split_r_hat,
)
from repro.inference.gibbs import KERNELS, GibbsSampler, PosteriorSamples
from repro.inference.init_heuristic import heuristic_initialize, initial_rates_from_observed
from repro.inference.init_lp import lp_initialize
from repro.inference.kernel import ArraySweepKernel, color_conflict_free_batches
from repro.inference.mcem import MCEMResult, run_mcem
from repro.inference.mstep import mle_rates, mle_rates_from_stats, mle_rates_pooled
from repro.inference.pool import (
    ChainRecipe,
    PersistentChainPool,
    build_chain_sampler,
    chain_recipes,
)
from repro.inference.paths_mh import (
    PathResampler,
    PathSweepStats,
    tier_candidates_from_fsm,
)
from repro.inference.piecewise import PiecewiseExponential
from repro.inference.posterior import PosteriorSummary, estimate_posterior
from repro.inference.shard import (
    ShardPlan,
    ShardWorkerPool,
    ShardedSweepEngine,
    TaskPartition,
    WarmShardWorkerPool,
    boundary_event_sets,
    build_shard_plan,
    partition_tasks,
    refresh_partition,
    task_interaction_graph,
)
from repro.inference.stem import StEMResult, run_stem
from repro.inference.transport import (
    PipeTransport,
    SocketTransport,
    WorkerTransport,
    serve_worker,
)

__all__ = [
    "PiecewiseExponential",
    "ArrivalBlanketCache",
    "ArrivalNeighborhood",
    "DepartureBlanketCache",
    "arrival_neighborhood",
    "arrival_conditional",
    "final_departure_conditional",
    "markov_blanket",
    "GibbsSampler",
    "PosteriorSamples",
    "KERNELS",
    "ArraySweepKernel",
    "color_conflict_free_batches",
    "ChainRecipe",
    "PersistentChainPool",
    "build_chain_sampler",
    "chain_recipes",
    "ShardPlan",
    "ShardWorkerPool",
    "ShardedSweepEngine",
    "TaskPartition",
    "WarmShardWorkerPool",
    "boundary_event_sets",
    "build_shard_plan",
    "partition_tasks",
    "refresh_partition",
    "task_interaction_graph",
    "WorkerTransport",
    "PipeTransport",
    "SocketTransport",
    "serve_worker",
    "ChainSpec",
    "MultiChainPosterior",
    "MultiChainSampler",
    "chain_seed_sequences",
    "heuristic_initialize",
    "lp_initialize",
    "initial_rates_from_observed",
    "mle_rates",
    "mle_rates_from_stats",
    "mle_rates_pooled",
    "PathResampler",
    "PathSweepStats",
    "tier_candidates_from_fsm",
    "run_stem",
    "StEMResult",
    "run_mcem",
    "MCEMResult",
    "estimate_posterior",
    "PosteriorSummary",
    "effective_sample_size",
    "autocorrelation",
    "geweke_z",
    "multichain_ess",
    "split_r_hat",
]
