"""LP-based initialization (paper Section 3, last paragraph).

"Given an initial setting mu of the mean service times, we use a linear
program to minimize ``sum_e |s_e - mu_{q_e}|`` subject to the deterministic
constraints."

Formulation
-----------
One variable ``D_e`` per event with an unobserved departure time (arrival
times are aliases ``a_e = D_{pi(e)}``; observed times are constants).  For
every event whose service time involves a latent variable we add a
service-start variable ``B_e`` with the linearized FIFO constraints

    B_e >= a_e,     B_e >= d_{rho(e)},     D_e >= B_e,

and an absolute-value epigraph variable ``T_e`` with

    T_e >= (D_e - B_e) - mean_q,     T_e >= mean_q - (D_e - B_e),

minimizing ``sum_e T_e``.  The frozen arrival order adds
``d_{pi(rho(e))} <= d_{pi(e)}`` for consecutive arrivals at each queue.
Any feasible point of this LP maps to a valid event set (the true service
time ``D_e - max(a_e, d_rho(e)) >= D_e - B_e >= 0``).

Solved with SciPy's HiGHS backend on sparse matrices.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.errors import InfeasibleInitializationError
from repro.events import EventSet
from repro.inference.init_heuristic import _departure_anchor
from repro.observation import ObservedTrace


def lp_initialize(trace: ObservedTrace, rates: np.ndarray) -> EventSet:
    """Fill latent times by solving the paper's initialization LP.

    Parameters
    ----------
    trace:
        The observed trace to initialize.
    rates:
        Current exponential rates; the LP targets service times
        ``1 / mu_q`` (and interarrival times ``1 / lambda`` at queue 0).

    Returns
    -------
    EventSet
        A fully valid event set ready for Gibbs sampling.

    Raises
    ------
    InfeasibleInitializationError
        If HiGHS reports the constraints infeasible.
    """
    skeleton = trace.skeleton
    rates = np.asarray(rates, dtype=float)
    n = skeleton.n_events

    anchors = [_departure_anchor(trace, e) for e in range(n)]
    latent = [e for e in range(n) if anchors[e] is None]
    if not latent:
        state = skeleton.copy()
        state.departure[:] = [float(a) for a in anchors]
        non_init = np.flatnonzero(skeleton.seq != 0)
        state.arrival[non_init] = state.departure[skeleton.pi[non_init]]
        state.validate(atol=1e-6)
        return state
    d_var = {e: i for i, e in enumerate(latent)}
    n_d = len(latent)

    def dep_term(e: int) -> tuple[int, float]:
        """(variable index or -1, constant) decomposition of D_e."""
        if anchors[e] is None:
            return d_var[e], 0.0
        return -1, float(anchors[e])

    # Events whose service involves at least one latent variable get B/T vars.
    active: list[int] = []
    for e in range(n):
        p = int(skeleton.pi[e])
        r = int(skeleton.rho[e])
        involves_latent = anchors[e] is None
        if p >= 0 and anchors[p] is None:
            involves_latent = True
        if r >= 0 and anchors[r] is None:
            involves_latent = True
        if involves_latent:
            active.append(e)
    b_var = {e: n_d + i for i, e in enumerate(active)}
    t_var = {e: n_d + len(active) + i for i, e in enumerate(active)}
    n_vars = n_d + 2 * len(active)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    rhs: list[float] = []
    row = 0

    def add_geq(terms: list[tuple[int, float]], constant: float) -> None:
        """Add ``sum coef * x >= constant`` as ``-sum <= -constant``."""
        nonlocal row
        for idx, coef in terms:
            if idx >= 0:
                rows.append(row)
                cols.append(idx)
                vals.append(-coef)
        rhs.append(-constant)
        row += 1

    for e in active:
        p = int(skeleton.pi[e])
        r = int(skeleton.rho[e])
        mean_q = 1.0 / rates[skeleton.queue[e]]
        be = b_var[e]
        te = t_var[e]
        # B_e >= a_e  (a_e = D_pi or the constant 0 for initial events).
        if p >= 0:
            pi_idx, pi_const = dep_term(p)
            add_geq([(be, 1.0), (pi_idx, -1.0)], pi_const)
        else:
            add_geq([(be, 1.0)], 0.0)
        # B_e >= d_rho(e).
        if r >= 0:
            r_idx, r_const = dep_term(r)
            add_geq([(be, 1.0), (r_idx, -1.0)], r_const)
        # D_e >= B_e.
        e_idx, e_const = dep_term(e)
        add_geq([(e_idx, 1.0), (be, -1.0)], -e_const)
        # T_e >= (D_e - B_e) - mean_q  and  T_e >= mean_q - (D_e - B_e),
        # with D_e = x_{e_idx} + e_const folded into the right-hand side.
        add_geq([(te, 1.0), (e_idx, -1.0), (be, 1.0)], -mean_q + e_const)
        add_geq([(te, 1.0), (e_idx, 1.0), (be, -1.0)], mean_q - e_const)

    # Frozen arrival order: d_pi(e) >= d_pi(rho(e)) whenever either is latent.
    for e in range(n):
        p = int(skeleton.pi[e])
        r = int(skeleton.rho[e])
        if p < 0 or r < 0:
            continue
        pr = int(skeleton.pi[r])
        if pr < 0:
            continue
        if anchors[p] is None or anchors[pr] is None:
            p_idx, p_const = dep_term(p)
            pr_idx, pr_const = dep_term(pr)
            add_geq([(p_idx, 1.0), (pr_idx, -1.0)], pr_const - p_const)

    c = np.zeros(n_vars)
    for e in active:
        c[t_var[e]] = 1.0
    a_ub = sparse.coo_matrix(
        (vals, (rows, cols)), shape=(row, n_vars)
    ).tocsr()
    bounds = [(0.0, None)] * n_vars
    result = linprog(c, A_ub=a_ub, b_ub=np.asarray(rhs), bounds=bounds, method="highs")
    if not result.success:
        raise InfeasibleInitializationError(
            f"initialization LP failed: {result.message}"
        )

    values = np.empty(n)
    for e in range(n):
        values[e] = result.x[d_var[e]] if anchors[e] is None else float(anchors[e])
    state = skeleton.copy()
    state.departure[:] = values
    init_mask = skeleton.seq == 0
    state.arrival[init_mask] = 0.0
    non_init = np.flatnonzero(~init_mask)
    state.arrival[non_init] = values[skeleton.pi[non_init]]
    state.validate(atol=1e-6)
    return state
