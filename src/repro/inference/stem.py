"""Stochastic EM (paper Section 4).

StEM alternates

* **E-step**: replace the unobserved times with the output of *one* Gibbs
  sweep at the current parameters (not a full posterior expectation), and
* **M-step**: the closed-form exponential MLE of :mod:`repro.inference.mstep`.

Unlike Monte-Carlo EM, the iterates do not converge pointwise — they
converge to a stationary *distribution* concentrated near the MLE — so the
returned point estimate averages the post-burn-in iterates, the standard
practice for SEM-type algorithms [Celeux & Diebolt 1985; Celeux 1992].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.telemetry import phase as _phase
from repro.inference.gibbs import GibbsSampler
from repro.inference.init_heuristic import initial_rates_from_observed
from repro.inference.mstep import mle_rates_from_stats
from repro.inference.pool import (
    PersistentChainPool,
    build_chain_sampler,
    chain_recipes,
    initialize_state,
)
from repro.observation import ObservedTrace
from repro.rng import RandomState

__all__ = ["StEMResult", "initialize_state", "run_stem"]


@dataclass
class StEMResult:
    """Output of a stochastic-EM run.

    Attributes
    ----------
    rates:
        The point estimate: post-burn-in average of the rate iterates
        (index 0 = arrival rate ``lambda``).
    rates_history:
        All iterates, shape ``(n_iterations + 1, n_queues)``; row 0 is the
        initialization.
    sampler:
        The Gibbs sampler in its final state — reusable for posterior
        summaries at the estimated parameters.
    burn_in:
        Number of leading iterates excluded from the average.
    samplers:
        All E-step chains (``samplers[0] is sampler``); more than one when
        the run pooled sufficient statistics across ``n_chains`` chains.
    """

    rates: np.ndarray
    rates_history: np.ndarray
    sampler: GibbsSampler
    burn_in: int
    samplers: list[GibbsSampler] | None = None

    @property
    def n_chains(self) -> int:
        """Number of parallel E-step chains the run used."""
        return len(self.samplers) if self.samplers else 1

    @property
    def arrival_rate(self) -> float:
        """Estimated system arrival rate ``lambda``."""
        return float(self.rates[0])

    def mean_service_times(self) -> np.ndarray:
        """Estimated mean service time per queue, ``1 / mu_q``."""
        return 1.0 / self.rates

    def iterate_std(self) -> np.ndarray:
        """Std of the post-burn-in iterates (a stability diagnostic)."""
        return self.rates_history[self.burn_in :].std(axis=0)


def run_stem(
    trace: ObservedTrace,
    n_iterations: int = 200,
    burn_in: int | None = None,
    initial_rates: np.ndarray | None = None,
    init_method: str = "auto",
    sweeps_per_iteration: int = 1,
    random_state: RandomState = None,
    shuffle: bool = True,
    n_chains: int = 1,
    jitter: float = 0.15,
    kernel: str = "array",
    persistent_workers: int | None = None,
    shards: int = 1,
    shard_pool=None,
    shard_partition=None,
    shard_transport=None,
    threads: int = 1,
) -> StEMResult:
    """Estimate ``lambda`` and all ``mu_q`` from an incomplete trace.

    Parameters
    ----------
    trace:
        The observed trace.
    n_iterations:
        Number of StEM iterations (each = E-sweep + M-step).
    burn_in:
        Iterates discarded before averaging; defaults to ``n_iterations // 2``.
    initial_rates:
        Starting rates; default derives them from observed responses via
        :func:`~repro.inference.init_heuristic.initial_rates_from_observed`.
    init_method:
        Latent-time initializer: ``"lp"``, ``"heuristic"``, or ``"auto"``.
    sweeps_per_iteration:
        Gibbs sweeps per E-step.  The paper's StEM uses 1; larger values
        interpolate toward Monte-Carlo EM.
    random_state, shuffle:
        Randomness controls (see :class:`~repro.inference.gibbs.GibbsSampler`).
    n_chains:
        Number of parallel E-step chains.  With more than one chain every
        M-step divides the shared event counts by the cross-chain *mean*
        of the sampled total service times
        (:func:`~repro.inference.mstep.mle_rates_pooled`), which damps the
        sweep-to-sweep noise of the rate iterates; chains beyond the first
        start from jittered initializations and independent seed-sequence
        spawns.  ``n_chains=1`` reproduces the historical single-chain
        stream exactly.
    jitter:
        Log-normal sigma of the extra chains' initializer-rate jitter.
    kernel:
        Sweep engine for every E-step chain (see
        :class:`~repro.inference.gibbs.GibbsSampler`).
    persistent_workers:
        ``None`` (default) runs the E-step chains serially in-process.  A
        positive count fans them out over that many *persistent* worker
        processes (:class:`~repro.inference.pool.PersistentChainPool`):
        chains stay resident in their worker across EM iterations and only
        rate vectors and per-queue sufficient statistics cross the process
        boundary each round.  Results are bitwise identical to the serial
        run at any worker count.
    shards:
        With ``shards > 1`` every E-step chain's sweep itself is sharded
        (:mod:`repro.inference.shard`): the trace's tasks are partitioned,
        interior moves sweep per shard and only boundary events are
        exchanged between super-steps.  Combined with
        ``persistent_workers`` and a single chain, the shards of that
        chain are distributed across the workers (sub-traces stay
        resident; only boundary times and per-queue statistics cross the
        process boundary) — bitwise identical to the in-process sharded
        run at any worker count.  With multiple chains, each worker hosts
        whole (sharded) chains as usual.
    shard_pool:
        An externally owned
        :class:`~repro.inference.shard.WarmShardWorkerPool` that hosts
        the (single) chain's shards for this run and stays alive
        afterwards — the streaming estimator's cross-window warm path.
        Requires ``n_chains == 1`` and is mutually exclusive with
        ``persistent_workers``; results are bitwise identical to every
        other execution mode at the same seed.
    shard_partition:
        Optional pre-computed task partition for the sharded sweeps (the
        incremental re-partition of :mod:`repro.online.streaming`);
        ``None`` partitions from scratch.
    shard_transport:
        Worker transport for the dedicated shard pool of the
        ``persistent_workers``-with-``shards`` path (see
        :mod:`repro.inference.transport`); pipes by default.  An external
        ``shard_pool`` carries its own transport instead.
    threads:
        Threaded batch evaluation inside every chain's array/native sweep
        kernel (see :class:`~repro.inference.gibbs.GibbsSampler`); draws
        are bitwise invariant to the thread count.
    """
    if n_iterations < 1:
        raise InferenceError(f"need at least one iteration, got {n_iterations}")
    if n_chains < 1:
        raise InferenceError(f"need at least one chain, got {n_chains}")
    if shards < 1:
        raise InferenceError(f"need at least one shard, got {shards}")
    if shard_pool is not None and persistent_workers:
        raise InferenceError(
            "pass either persistent_workers or an external shard_pool, not both"
        )
    if shard_pool is not None and n_chains != 1:
        raise InferenceError(
            "an external shard pool hosts exactly one chain's shards; "
            f"got n_chains={n_chains}"
        )
    if shard_pool is not None and shards == 1:
        raise InferenceError(
            "an external shard pool requires shards > 1 — with a single "
            "shard the sweep runs in-process and the pool would idle"
        )
    if burn_in is None:
        burn_in = n_iterations // 2
    if not 0 <= burn_in < n_iterations:
        raise InferenceError(
            f"burn_in must lie in [0, n_iterations), got {burn_in}/{n_iterations}"
        )
    rates = (
        np.asarray(initial_rates, dtype=float).copy()
        if initial_rates is not None
        else initial_rates_from_observed(trace)
    )
    recipes = chain_recipes(
        trace, rates, init_method, n_chains, jitter, random_state, shuffle, kernel,
        shards=shards, partition=shard_partition, threads=threads,
    )
    counts = trace.skeleton.events_per_queue().astype(float)
    history = np.empty((n_iterations + 1, trace.skeleton.n_queues))
    history[0] = rates
    shard_pool_run = bool(persistent_workers) and shards > 1 and n_chains == 1
    if persistent_workers and not shard_pool_run:
        with PersistentChainPool(recipes, workers=persistent_workers) as pool:
            for it in range(1, n_iterations + 1):
                with _phase("sweeps"):
                    totals = pool.step(rates, n_keep=sweeps_per_iteration)
                with _phase("m-step"):
                    rates = mle_rates_from_stats(counts, totals)
                history[it] = rates
            estimate = history[burn_in:].mean(axis=0)
            samplers = pool.finish(estimate)
    else:
        # Serial chains — or one chain whose *shards* fan out over the
        # persistent workers.  Both build from the same recipes and use
        # the same statistic accumulation, so the three paths (serial,
        # chain-pooled, shard-pooled) stay bitwise aligned.
        samplers = [
            build_chain_sampler(
                recipe,
                shard_workers=persistent_workers if shard_pool_run else None,
                shard_pool=shard_pool,
                shard_transport=shard_transport if shard_pool_run else None,
            )
            for recipe in recipes
        ]
        try:
            for it in range(1, n_iterations + 1):
                with _phase("sweeps"):
                    for sampler in samplers:
                        sampler.run(sweeps_per_iteration)
                with _phase("m-step"):
                    rates = mle_rates_from_stats(
                        counts, [s.service_totals() for s in samplers]
                    )
                    for sampler in samplers:
                        sampler.set_rates(rates)
                history[it] = rates
            estimate = history[burn_in:].mean(axis=0)
            for sampler in samplers:
                sampler.set_rates(estimate)
                # Pull shard-worker state home so the returned sampler holds
                # the complete stitched chain and owns no processes.
                sampler.finish_shards()
        except BaseException:
            for sampler in samplers:
                sampler.close()
            raise
    return StEMResult(
        rates=estimate,
        rates_history=history,
        sampler=samplers[0],
        burn_in=burn_in,
        samplers=samplers,
    )
