"""JIT-lowered (Numba) implementations of the sweep-kernel hot loops.

:mod:`repro.inference.kernel` evaluates each conflict-free batch with
vectorized numpy — a dozen temporaries per batch for bounds, knots, slopes,
``Z1..Z3`` log-masses and the inverse-CDF draw.  The arithmetic is already
exact (the paper's Eq. 2-4 in log space); what remains is allocation and
dispatch overhead.  This module lowers those loops to compiled code with
``numba.njit``: one fused pass per batch builds each move's pieces, selects
a piece and inverts the within-piece CDF without materializing any
intermediate array.

Correctness contract
--------------------
Every compiled branch shares ``_FLAT_EPS`` with the scalar reference
:func:`repro.inference.piecewise._log_integral_exp` and branches on the
same ``slope * width`` product, so the native, array and object backends
take the same branch on every input and agree to 1e-10 per move (pinned by
``tests/inference/test_kernel.py`` and the fuzz suite in
``tests/inference/test_native.py``).  The compiled loops mirror the numpy
helpers operation for operation — including summation order in the
max-shifted normalizer and the cumulative piece selector — so agreement is
typically bitwise, not merely within tolerance.

Fallback contract
-----------------
numba is optional.  When it cannot be imported, ``NUMBA_AVAILABLE`` is
False, the ``@njit`` decoration is skipped (the loop functions stay plain
Python, which keeps them unit-testable everywhere), and
:class:`NativeSweepKernel` transparently evaluates batches through the
inherited pure-numpy path — ``kernel="native"`` then behaves exactly like
``kernel="array"`` and reports ``native_active = False``.  Use
:func:`native_capability` to see which backend a process will actually run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InferenceError
from repro.inference.kernel import ArraySweepKernel
from repro.inference.piecewise import _FLAT_EPS

try:  # pragma: no cover - absence path is what CI's no-numba lane covers
    import numba as _numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised when numba is missing
    _numba = None
    NUMBA_AVAILABLE = False

_INF = math.inf


def _jit(func):
    """``numba.njit`` when numba is importable, the plain function otherwise.

    ``nogil=True`` lets the kernel's thread-chunked batches run compiled
    code concurrently, matching the numpy path's GIL-releasing behavior.
    """
    if NUMBA_AVAILABLE:
        return _numba.njit(cache=False, nogil=True)(func)
    return func


def py_func(func):
    """The pure-python implementation behind a (possibly) jitted function.

    With numba present this is the dispatcher's ``py_func``; without it the
    function *is* plain Python already.  Tests use this to pin the lowered
    arithmetic on every platform, jitted or not.
    """
    return getattr(func, "py_func", func)


def native_capability() -> dict[str, object]:
    """Report whether ``kernel="native"`` will actually run compiled code."""
    return {
        "available": NUMBA_AVAILABLE,
        "numba_version": _numba.__version__ if NUMBA_AVAILABLE else None,
        "fallback": None if NUMBA_AVAILABLE else "array",
    }


# ---------------------------------------------------------------------------
# Scalar core + lowered mirrors of the kernel-module helpers.
# ---------------------------------------------------------------------------


@_jit
def _lie(slope: float, width: float) -> float:
    """Scalar ``log ∫_0^width exp(slope*x) dx`` — the compiled core.

    Branch for branch :func:`repro.inference.piecewise._log_integral_exp`
    minus its unbounded-slope validation (callers validate; every compiled
    loop only ever passes unbounded widths with negative slopes).
    """
    if width <= 0.0:
        return -_INF
    if math.isinf(width):
        return -math.log(-slope)
    z = slope * width
    if abs(z) < _FLAT_EPS:
        return math.log(width)
    if slope > 0.0:
        return z + math.log(-math.expm1(-z)) - math.log(slope)
    return math.log(-math.expm1(z)) - math.log(-slope)


@_jit
def _log_integral_exp_loop(
    slopes: np.ndarray, widths: np.ndarray, out: np.ndarray
) -> None:
    for i in range(slopes.shape[0]):
        out[i] = _lie(slopes[i], widths[i])


def log_integral_exp(slopes: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Drop-in :func:`repro.inference.piecewise.log_integral_exp` lowering.

    Same validation, same ``-inf``/flat/rising/falling/unbounded branches on
    the same ``slope * width`` products.
    """
    slopes = np.asarray(slopes, dtype=float)
    widths = np.asarray(widths, dtype=float)
    slopes, widths = np.broadcast_arrays(slopes, widths)
    if np.any(np.isinf(widths) & (widths > 0.0) & (slopes >= 0.0)):
        raise InferenceError("unbounded piece needs a strictly negative slope")
    flat_s = np.ascontiguousarray(slopes, dtype=np.float64).ravel()
    flat_w = np.ascontiguousarray(widths, dtype=np.float64).ravel()
    out = np.empty(flat_s.shape[0])
    _log_integral_exp_loop(flat_s, flat_w, out)
    return out.reshape(slopes.shape)


@_jit
def _piece_log_masses(knots: np.ndarray, slopes: np.ndarray, out: np.ndarray) -> None:
    """Lowered :func:`repro.inference.kernel._piece_log_masses` (same
    left-to-right ``phi`` accumulation as the numpy ``cumsum``)."""
    m, k = slopes.shape
    for i in range(m):
        phi = 0.0
        for j in range(k):
            width = knots[i, j + 1] - knots[i, j]
            out[i, j] = phi + _lie(slopes[i, j], width)
            phi += slopes[i, j] * width


@_jit
def _log_normalizer(log_masses: np.ndarray, out: np.ndarray) -> None:
    """Lowered :func:`repro.inference.kernel._log_normalizer` (max-shifted
    row sum in index order, matching ``np.sum`` on short rows)."""
    m, k = log_masses.shape
    for i in range(m):
        mx = log_masses[i, 0]
        for j in range(1, k):
            if log_masses[i, j] > mx:
                mx = log_masses[i, j]
        if mx == -_INF:
            # All-empty row: the numpy path's -inf - -inf propagates nan.
            out[i] = math.nan
            continue
        s = 0.0
        for j in range(k):
            s += math.exp(log_masses[i, j] - mx)
        out[i] = mx + math.log(s)


@_jit
def _select_pieces(
    log_masses: np.ndarray, log_z: np.ndarray, u: np.ndarray, out: np.ndarray
) -> None:
    """Lowered :func:`repro.inference.kernel._select_pieces`."""
    m, k = log_masses.shape
    for i in range(m):
        cum = 0.0
        idx = 0
        for j in range(k):
            cum += math.exp(log_masses[i, j] - log_z[i])
            if u[i] > cum:
                idx += 1
        if idx > k - 1:
            idx = k - 1
        out[i] = idx


@_jit
def _invert_piece(lo: float, hi: float, c: float, v: float) -> float:
    """Scalar within-piece inverse CDF, branch for branch
    :func:`repro.inference.kernel._invert_pieces`."""
    width = hi - lo
    z = c * width
    if abs(z) < _FLAT_EPS:
        return lo + v * width
    e = -math.expm1(-abs(z))
    t = -math.log1p(-v * e) / abs(c)
    if c < 0.0:
        x = lo + t
        if x > hi:
            x = hi
        return x
    x = hi - t
    if x < lo:
        x = lo
    return x


@_jit
def _invert_pieces(
    knots: np.ndarray, slopes: np.ndarray, idx: np.ndarray, v: np.ndarray,
    out: np.ndarray,
) -> None:
    """Lowered :func:`repro.inference.kernel._invert_pieces`."""
    for i in range(idx.shape[0]):
        j = idx[i]
        out[i] = _invert_piece(knots[i, j], knots[i, j + 1], slopes[i, j], v[i])


# ---------------------------------------------------------------------------
# Fused per-batch loops: piece build + select + invert, no temporaries.
# ---------------------------------------------------------------------------


@_jit
def _fused_arrival(
    a_ev: np.ndarray,
    a_pi: np.ndarray,
    a_rho_e: np.ndarray,
    a_rho_inv_e: np.ndarray,
    a_rho_p: np.ndarray,
    a_rho_inv_p: np.ndarray,
    a_self_loop: np.ndarray,
    mu_e_col: np.ndarray,
    mu_pi_col: np.ndarray,
    arrival: np.ndarray,
    departure: np.ndarray,
    sel: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    x: np.ndarray,
    valid: np.ndarray,
) -> None:
    """One pass over an arrival batch: Eq. 2-4 pieces, select, invert.

    Mirrors ``ArraySweepKernel.arrival_pieces`` + ``_select_pieces`` +
    ``_invert_pieces`` in the numpy module, preserving operation order so
    the draws match the array backend bitwise on every move.
    """
    for i in range(sel.shape[0]):
        r = sel[i]
        ev = a_ev[r]
        # Constraint bounds L/U from the Figure-2 blanket.
        lower = arrival[a_pi[r]]
        j = a_rho_p[r]
        if j >= 0 and departure[j] > lower:
            lower = departure[j]
        j = a_rho_e[r]
        if j >= 0 and arrival[j] > lower:
            lower = arrival[j]
        upper = departure[ev]
        j = a_rho_inv_e[r]
        if j >= 0 and arrival[j] < upper:
            upper = arrival[j]
        j = a_rho_inv_p[r]
        if j >= 0 and departure[j] < upper:
            upper = departure[j]
        ok = upper - lower > 0.0 and math.isfinite(lower) and math.isfinite(upper)
        valid[i] = ok
        if not ok:
            x[i] = 0.0
            continue
        # Breakpoints A/B and the three-piece knot grid.
        j = a_rho_e[r]
        if a_self_loop[r] or j < 0:
            b_own = -_INF
        else:
            b_own = departure[j]
        j = a_rho_inv_p[r]
        b_pi = arrival[j] if j >= 0 else _INF
        bmin = b_own if b_own < b_pi else b_pi
        bmax = b_own if b_own > b_pi else b_pi
        k1 = min(max(bmin, lower), upper)
        k2 = min(max(bmax, lower), upper)
        mu_e = mu_e_col[r]
        mu_pi = mu_pi_col[r]
        # Slopes at piece midpoints (same -mu_pi + indicator sums as numpy).
        m0 = 0.5 * (lower + k1)
        m1 = 0.5 * (k1 + k2)
        m2 = 0.5 * (k2 + upper)
        c0 = -mu_pi
        if m0 > b_own:
            c0 += mu_e
        if m0 > b_pi:
            c0 += mu_pi
        c1 = -mu_pi
        if m1 > b_own:
            c1 += mu_e
        if m1 > b_pi:
            c1 += mu_pi
        c2 = -mu_pi
        if m2 > b_own:
            c2 += mu_e
        if m2 > b_pi:
            c2 += mu_pi
        # Z1..Z3 log-masses with phi anchored at 0 on the left endpoint.
        w0 = k1 - lower
        w1 = k2 - k1
        w2 = upper - k2
        lm0 = _lie(c0, w0)
        phi = c0 * w0
        lm1 = phi + _lie(c1, w1)
        phi += c1 * w1
        lm2 = phi + _lie(c2, w2)
        mx = lm0
        if lm1 > mx:
            mx = lm1
        if lm2 > mx:
            mx = lm2
        log_z = mx + math.log(
            math.exp(lm0 - mx) + math.exp(lm1 - mx) + math.exp(lm2 - mx)
        )
        # Piece selection by cumulative mass, then within-piece inversion.
        cum = math.exp(lm0 - log_z)
        idx = 0
        if u[i] > cum:
            idx += 1
        cum += math.exp(lm1 - log_z)
        if u[i] > cum:
            idx += 1
        cum += math.exp(lm2 - log_z)
        if u[i] > cum:
            idx += 1
        if idx > 2:
            idx = 2
        if idx == 0:
            x[i] = _invert_piece(lower, k1, c0, v[i])
        elif idx == 1:
            x[i] = _invert_piece(k1, k2, c1, v[i])
        else:
            x[i] = _invert_piece(k2, upper, c2, v[i])


@_jit
def _fused_departure(
    d_ev: np.ndarray,
    d_rho_e: np.ndarray,
    d_rho_inv_e: np.ndarray,
    mu_e_col: np.ndarray,
    arrival: np.ndarray,
    departure: np.ndarray,
    sel: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    x: np.ndarray,
    valid: np.ndarray,
) -> None:
    """One pass over a departure batch (two finite pieces or the
    analytic exponential tail), mirroring ``departure_pieces`` +
    ``_eval_departure_chunk``."""
    for i in range(sel.shape[0]):
        r = sel[i]
        lower = arrival[d_ev[r]]
        j = d_rho_e[r]
        if j >= 0 and departure[j] > lower:
            lower = departure[j]
        k = d_rho_inv_e[r]
        mu = mu_e_col[r]
        if k < 0:
            # No later arrival at the queue: exponential tail with rate
            # mu_e from the left bound, inverse transform on v.
            valid[i] = True
            x[i] = lower - math.log1p(-v[i]) / mu
            continue
        upper = departure[k]
        ok = upper - lower > 0.0
        valid[i] = ok
        if not ok:
            x[i] = 0.0
            continue
        bp = arrival[k]
        k1 = min(max(bp, lower), upper)
        m0 = 0.5 * (lower + k1)
        m1 = 0.5 * (k1 + upper)
        c0 = -mu if m0 <= bp else 0.0
        c1 = -mu if m1 <= bp else 0.0
        w0 = k1 - lower
        w1 = upper - k1
        lm0 = _lie(c0, w0)
        lm1 = c0 * w0 + _lie(c1, w1)
        mx = lm0
        if lm1 > mx:
            mx = lm1
        log_z = mx + math.log(math.exp(lm0 - mx) + math.exp(lm1 - mx))
        cum = math.exp(lm0 - log_z)
        idx = 0
        if u[i] > cum:
            idx += 1
        cum += math.exp(lm1 - log_z)
        if u[i] > cum:
            idx += 1
        if idx > 1:
            idx = 1
        if idx == 0:
            x[i] = _invert_piece(lower, k1, c0, v[i])
        else:
            x[i] = _invert_piece(k1, upper, c1, v[i])


# ---------------------------------------------------------------------------
# The kernel subclass behind kernel="native".
# ---------------------------------------------------------------------------


class NativeSweepKernel(ArraySweepKernel):
    """``ArraySweepKernel`` with batch evaluation lowered to compiled loops.

    Construction, conflict-free batching, the random stream, threading and
    the ``arrival_pieces``/``departure_pieces`` introspection API are all
    inherited unchanged — only the per-batch evaluate step is swapped for
    the fused compiled loops, so draws are interchangeable with the array
    backend move for move.

    When numba is not importable the instance degrades to the inherited
    pure-numpy evaluation (``native_active`` is False); nothing else
    changes, so ``kernel="native"`` is always safe to request.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.native_active = NUMBA_AVAILABLE

    def _eval_arrival_chunk(self, arrival, departure, sel, u, v):
        if not self.native_active:
            return super()._eval_arrival_chunk(arrival, departure, sel, u, v)
        x = np.empty(sel.size)
        valid = np.empty(sel.size, dtype=np.bool_)
        _fused_arrival(
            self.a_ev, self.a_pi, self.a_rho_e, self.a_rho_inv_e,
            self.a_rho_p, self.a_rho_inv_p, self.a_self_loop,
            self.a_mu_e, self.a_mu_pi,
            arrival, departure, sel, u, v, x, valid,
        )
        return self.a_ev[sel][valid], x[valid]

    def _eval_departure_chunk(self, arrival, departure, sel, u, v):
        if not self.native_active:
            return super()._eval_departure_chunk(arrival, departure, sel, u, v)
        x = np.empty(sel.size)
        valid = np.empty(sel.size, dtype=np.bool_)
        _fused_departure(
            self.d_ev, self.d_rho_e, self.d_rho_inv_e, self.d_mu_e,
            arrival, departure, sel, u, v, x, valid,
        )
        return self.d_ev[sel][valid], x[valid]

    def __setstate__(self, state):
        self.__dict__.update(state)
        # A pickle from a numba-enabled process must degrade cleanly in a
        # receiver without numba (and vice versa): capability is decided
        # per process, not per pickle.
        self.native_active = NUMBA_AVAILABLE


def make_sweep_kernel(
    kernel: str,
    event_set,
    arrival_cache,
    departure_cache,
    rates,
    threads: int = 1,
) -> ArraySweepKernel:
    """Build the batch sweep kernel behind ``kernel="array"|"native"``."""
    cls = NativeSweepKernel if kernel == "native" else ArraySweepKernel
    return cls(event_set, arrival_cache, departure_cache, rates, threads=threads)
