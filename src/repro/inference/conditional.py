"""Local conditional distributions for the Gibbs moves (paper Eq. 2–4).

Resampling the arrival ``a_e`` of a non-initial event changes exactly three
service times (paper Figure 2):

* ``s_e``            — the event's own service, term ``mu_e (d_e - max(a_e, d_rho(e)))``;
* ``s_pi(e)``        — the within-task predecessor's service, term
  ``mu_pi(e) (a_e - max(a_pi(e), d_rho(pi(e))))``;
* ``s_rho^-1(pi(e))`` — the service of the next event at the predecessor's
  queue, term ``mu_pi(e) (d_rho^-1(pi(e)) - max(a_e, a_rho^-1(pi(e))))``.

With the arrival order fixed, ``a_e`` is confined to

    L = max(a_pi(e), d_rho(pi(e)), a_rho(e))
    U = min(d_e, a_rho^-1(e), d_rho^-1(pi(e)))

and within ``(L, U)`` the log-density is piecewise linear with breakpoints
at ``d_rho(e)`` (the event's own max switches) and ``a_rho^-1(pi(e))`` (the
third term's max switches) — at most three exponential pieces, the paper's
``Z1, Z2, Z3`` decomposition.

A second move handles the departure of a task's *last* event, which is not
any successor's arrival: its conditional has at most two pieces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.events import EventSet
from repro.inference.piecewise import PiecewiseExponential

_INF = math.inf


@dataclass(frozen=True)
class ArrivalNeighborhood:
    """The Markov blanket of one arrival move (paper Figure 2).

    All times are read from the current state of the event set; missing
    neighbors are reported as ``±inf`` so the bound formulas apply verbatim.
    """

    event: int
    pi_event: int
    mu_e: float
    mu_pi: float
    d_e: float
    d_rho_e: float
    a_rho_e: float
    a_rho_inv_e: float
    a_pi: float
    d_rho_pi: float
    a_rho_inv_pi: float
    d_rho_inv_pi: float
    self_loop: bool

    @property
    def lower(self) -> float:
        """The constraint lower bound ``L``."""
        return max(self.a_pi, self.d_rho_pi, self.a_rho_e)

    @property
    def upper(self) -> float:
        """The constraint upper bound ``U``."""
        return min(self.d_e, self.a_rho_inv_e, self.d_rho_inv_pi)


def markov_blanket(events: EventSet, e: int) -> dict[str, list[int]]:
    """The variables involved in resampling ``a_e`` (paper Figure 2).

    Returns a mapping with the events whose *service times* the move
    changes (``resampled``) and the events whose times are read but held
    fixed (``fixed``).  This is the data behind the paper's Figure 2
    illustration and demonstrates the sampler's O(1) Markov blanket.
    """
    p = int(events.pi[e])
    if p < 0:
        raise InferenceError(f"event {e} is an initial event")
    resampled = [int(e), p]
    rho_inv_p = int(events.rho_inv[p])
    if rho_inv_p >= 0 and rho_inv_p != e:
        resampled.append(rho_inv_p)
    fixed = []
    for neighbor in (
        events.rho[e],
        events.rho_inv[e],
        events.rho[p],
        events.rho_inv[p],
    ):
        neighbor = int(neighbor)
        if neighbor >= 0 and neighbor != e and neighbor not in resampled:
            fixed.append(neighbor)
    return {"resampled": resampled, "fixed": fixed}


def arrival_neighborhood(
    events: EventSet, e: int, rates: np.ndarray
) -> ArrivalNeighborhood:
    """Extract the five-variable neighborhood of event *e*'s arrival move."""
    p = int(events.pi[e])
    if p < 0:
        raise InferenceError(
            f"event {e} is an initial event; its arrival is fixed at clock 0"
        )
    q_e = int(events.queue[e])
    q_p = int(events.queue[p])
    rho_e = int(events.rho[e])
    self_loop = rho_e == p
    # Own queue neighbors.
    d_rho_e = float(events.departure[rho_e]) if rho_e >= 0 else -_INF
    a_rho_e = float(events.arrival[rho_e]) if rho_e >= 0 else -_INF
    rho_inv_e = int(events.rho_inv[e])
    a_rho_inv_e = float(events.arrival[rho_inv_e]) if rho_inv_e >= 0 else _INF
    # Predecessor queue neighbors.
    a_pi = float(events.arrival[p])
    rho_p = int(events.rho[p])
    d_rho_pi = float(events.departure[rho_p]) if rho_p >= 0 else -_INF
    rho_inv_p = int(events.rho_inv[p])
    if rho_inv_p >= 0 and rho_inv_p != e:
        a_rho_inv_pi = float(events.arrival[rho_inv_p])
        d_rho_inv_pi = float(events.departure[rho_inv_p])
    else:
        # Either pi(e) is currently the last arrival at its queue, or the
        # "next event at the earlier queue" is e itself (task revisits the
        # same queue back-to-back) — in both cases the third term vanishes.
        a_rho_inv_pi = _INF
        d_rho_inv_pi = _INF
    return ArrivalNeighborhood(
        event=int(e),
        pi_event=p,
        mu_e=float(rates[q_e]),
        mu_pi=float(rates[q_p]),
        d_e=float(events.departure[e]),
        d_rho_e=-_INF if self_loop else d_rho_e,
        a_rho_e=a_rho_e,
        a_rho_inv_e=a_rho_inv_e,
        a_pi=a_pi,
        d_rho_pi=d_rho_pi,
        a_rho_inv_pi=a_rho_inv_pi,
        d_rho_inv_pi=d_rho_inv_pi,
        self_loop=self_loop,
    )


def arrival_conditional(
    events: EventSet, e: int, rates: np.ndarray
) -> PiecewiseExponential | None:
    """Build ``p(a_e | E \\ e)`` as a piecewise-exponential density.

    Returns ``None`` when the constraint interval has (numerically) zero
    width, in which case the move must keep the current value.

    Notes
    -----
    The slope of the log-density on each region is assembled from the three
    terms of Eq. (2):

    * ``-mu_pi`` everywhere (term 2 is linear in ``a_e`` on all of (L, U));
    * ``+mu_e``  once ``a_e > d_rho(e)`` (term 1's max switches to ``a_e``);
    * ``+mu_pi`` once ``a_e > a_rho^-1(pi(e))`` (term 3's max switches).

    With the breakpoints ordered this reproduces the paper's three cases:
    slope ``-mu_pi`` on (L, A), slope ``0`` or ``mu_e - mu_pi`` (the paper's
    ``delta_mu``) on (A, B), slope ``+mu_e`` on (B, U).

    In the *self-loop* case (``rho(e) == pi(e)``, a task visiting the same
    queue twice in a row with no interleaving arrival), term 1 is always
    active and term 3 is absent, leaving a single piece with slope
    ``mu_e - mu_pi``; the neighborhood extractor encodes this by pushing the
    breakpoints to ``-inf``/``+inf``.
    """
    nb = arrival_neighborhood(events, e, rates)
    lower, upper = nb.lower, nb.upper
    if not (upper - lower > 0.0) or not math.isfinite(lower) or not math.isfinite(upper):
        return None
    bp_own = nb.d_rho_e  # term 1 switches here
    bp_pi = nb.a_rho_inv_pi  # term 3 switches here
    knots = [lower]
    for bp in sorted((bp_own, bp_pi)):
        if lower < bp < upper:
            knots.append(bp)
    knots.append(upper)
    slopes = []
    for i in range(len(knots) - 1):
        mid = 0.5 * (knots[i] + knots[i + 1])
        slope = -nb.mu_pi
        if mid > bp_own:
            slope += nb.mu_e
        if mid > bp_pi:
            slope += nb.mu_pi
        slopes.append(slope)
    return PiecewiseExponential(knots, slopes)


# ----------------------------------------------------------------------
# Static-blanket caching (the fast sweep path).
# ----------------------------------------------------------------------


class ArrivalBlanketCache:
    """Static part of every arrival move's Markov blanket.

    The neighbor *indices* of a move (``pi``, ``rho``, ``rho_inv`` of the
    event and its predecessor) never change during Gibbs sweeps — the
    arrival order at every queue is frozen — so deriving them from the
    :class:`~repro.events.EventSet` on every single-site move is wasted
    work.  This cache extracts them once (plain Python lists, which scalar
    loops read much faster than numpy arrays) and is rebuilt only when the
    event set's ``structure_version`` moves (a path-MH queue reassignment).

    ``mu_e`` / ``mu_pi`` are the per-move rate lookups; they depend on the
    current rate vector and are refreshed by :meth:`refresh_rates`.

    The array sweep engine (:class:`~repro.inference.kernel.ArraySweepKernel`)
    builds its int64 index columns directly from this cache, so both sweep
    kernels share a single blanket-extraction pass.
    """

    __slots__ = (
        "events",
        "pi_event",
        "rho_e",
        "rho_inv_e",
        "rho_p",
        "rho_inv_p",
        "self_loop",
        "mu_e",
        "mu_pi",
        "structure_version",
    )

    def __init__(self, event_set: EventSet, moves: np.ndarray, rates: np.ndarray) -> None:
        self.events = [int(e) for e in moves]
        self.pi_event = []
        self.rho_e = []
        self.rho_inv_e = []
        self.rho_p = []
        self.rho_inv_p = []
        self.self_loop = []
        for e in self.events:
            p = int(event_set.pi[e])
            if p < 0:
                raise InferenceError(
                    f"event {e} is an initial event; its arrival is fixed at clock 0"
                )
            rho_e = int(event_set.rho[e])
            rho_inv_p = int(event_set.rho_inv[p])
            self.pi_event.append(p)
            self.rho_e.append(rho_e)
            self.rho_inv_e.append(int(event_set.rho_inv[e]))
            self.rho_p.append(int(event_set.rho[p]))
            # When the next event at the predecessor's queue is e itself
            # (back-to-back visit), the third Eq. (2) term vanishes — encode
            # that as "no such neighbor" so the fast path needs no check.
            self.rho_inv_p.append(rho_inv_p if rho_inv_p != e else -1)
            self.self_loop.append(rho_e == p)
        self.structure_version = event_set.structure_version
        self.refresh_rates(event_set, rates)

    def refresh_rates(self, event_set: EventSet, rates: np.ndarray) -> None:
        """Re-gather the per-move rate lookups after a rate update."""
        self.mu_e = [float(rates[event_set.queue[e]]) for e in self.events]
        self.mu_pi = [float(rates[event_set.queue[p]]) for p in self.pi_event]

    @property
    def n_moves(self) -> int:
        """Number of cached arrival moves."""
        return len(self.events)


class DepartureBlanketCache:
    """Static blanket of every task-final departure move (two neighbors)."""

    __slots__ = ("events", "rho_e", "rho_inv_e", "mu_e", "structure_version")

    def __init__(self, event_set: EventSet, moves: np.ndarray, rates: np.ndarray) -> None:
        self.events = [int(e) for e in moves]
        self.rho_e = []
        self.rho_inv_e = []
        for e in self.events:
            if event_set.pi_inv[e] != -1:
                raise InferenceError(
                    f"event {e} is not the last of its task; its departure is the "
                    "successor's arrival and is resampled by the arrival move"
                )
            self.rho_e.append(int(event_set.rho[e]))
            self.rho_inv_e.append(int(event_set.rho_inv[e]))
        self.structure_version = event_set.structure_version
        self.refresh_rates(event_set, rates)

    def refresh_rates(self, event_set: EventSet, rates: np.ndarray) -> None:
        """Re-gather the per-move rate lookups after a rate update."""
        self.mu_e = [float(rates[event_set.queue[e]]) for e in self.events]

    @property
    def n_moves(self) -> int:
        """Number of cached departure moves."""
        return len(self.events)


def arrival_conditional_cached(
    arrival: np.ndarray, departure: np.ndarray, cache: ArrivalBlanketCache, i: int
) -> PiecewiseExponential | None:
    """:func:`arrival_conditional` for cached move *i* — bitwise identical.

    Reads the current times from the raw arrays and the static indices from
    the cache, performing exactly the arithmetic of the uncached builder so
    a cached sweep reproduces an uncached sweep draw for draw.
    """
    rho_e = cache.rho_e[i]
    if cache.self_loop[i]:
        d_rho_e = -_INF
    else:
        d_rho_e = float(departure[rho_e]) if rho_e >= 0 else -_INF
    a_rho_e = float(arrival[rho_e]) if rho_e >= 0 else -_INF
    rho_inv_e = cache.rho_inv_e[i]
    a_rho_inv_e = float(arrival[rho_inv_e]) if rho_inv_e >= 0 else _INF
    a_pi = float(arrival[cache.pi_event[i]])
    rho_p = cache.rho_p[i]
    d_rho_pi = float(departure[rho_p]) if rho_p >= 0 else -_INF
    rho_inv_p = cache.rho_inv_p[i]
    if rho_inv_p >= 0:
        a_rho_inv_pi = float(arrival[rho_inv_p])
        d_rho_inv_pi = float(departure[rho_inv_p])
    else:
        a_rho_inv_pi = _INF
        d_rho_inv_pi = _INF
    lower = max(a_pi, d_rho_pi, a_rho_e)
    upper = min(float(departure[cache.events[i]]), a_rho_inv_e, d_rho_inv_pi)
    if not (upper - lower > 0.0) or not math.isfinite(lower) or not math.isfinite(upper):
        return None
    mu_e = cache.mu_e[i]
    mu_pi = cache.mu_pi[i]
    bp_own = d_rho_e
    bp_pi = a_rho_inv_pi
    knots = [lower]
    for bp in sorted((bp_own, bp_pi)):
        if lower < bp < upper:
            knots.append(bp)
    knots.append(upper)
    slopes = []
    for j in range(len(knots) - 1):
        mid = 0.5 * (knots[j] + knots[j + 1])
        slope = -mu_pi
        if mid > bp_own:
            slope += mu_e
        if mid > bp_pi:
            slope += mu_pi
        slopes.append(slope)
    return PiecewiseExponential(knots, slopes)


def final_departure_conditional_cached(
    arrival: np.ndarray, departure: np.ndarray, cache: DepartureBlanketCache, i: int
) -> PiecewiseExponential | None:
    """:func:`final_departure_conditional` for cached move *i*."""
    mu_e = cache.mu_e[i]
    rho_e = cache.rho_e[i]
    lower = float(arrival[cache.events[i]])
    if rho_e >= 0:
        lower = max(lower, float(departure[rho_e]))
    rho_inv_e = cache.rho_inv_e[i]
    if rho_inv_e < 0:
        return PiecewiseExponential([lower, _INF], [-mu_e])
    upper = float(departure[rho_inv_e])
    if not (upper - lower > 0.0):
        return None
    bp = float(arrival[rho_inv_e])
    knots = [lower]
    if lower < bp < upper:
        knots.append(bp)
    knots.append(upper)
    slopes = []
    for j in range(len(knots) - 1):
        mid = 0.5 * (knots[j] + knots[j + 1])
        slopes.append(-mu_e if mid <= bp else 0.0)
    return PiecewiseExponential(knots, slopes)


def final_departure_conditional(
    events: EventSet, e: int, rates: np.ndarray
) -> PiecewiseExponential | None:
    """Build the conditional for the departure of a task's last event.

    The move changes ``s_e`` and (if a later event exists at the queue)
    ``s_rho^-1(e)``; the log-density has slope ``-mu_e`` below
    ``a_rho^-1(e)`` and slope 0 above, on the interval

        ( max(a_e, d_rho(e)),  d_rho^-1(e) )

    with an exponential tail to ``+inf`` when no later event exists.
    """
    if events.pi_inv[e] != -1:
        raise InferenceError(
            f"event {e} is not the last of its task; its departure is the "
            "successor's arrival and is resampled by the arrival move"
        )
    q_e = int(events.queue[e])
    mu_e = float(rates[q_e])
    rho_e = int(events.rho[e])
    lower = float(events.arrival[e])
    if rho_e >= 0:
        lower = max(lower, float(events.departure[rho_e]))
    rho_inv_e = int(events.rho_inv[e])
    if rho_inv_e < 0:
        # No later arrival at this queue: a single exponential tail.
        return PiecewiseExponential([lower, _INF], [-mu_e])
    upper = float(events.departure[rho_inv_e])
    if not (upper - lower > 0.0):
        return None
    bp = float(events.arrival[rho_inv_e])
    knots = [lower]
    if lower < bp < upper:
        knots.append(bp)
    knots.append(upper)
    slopes = []
    for i in range(len(knots) - 1):
        mid = 0.5 * (knots[i] + knots[i + 1])
        slopes.append(-mu_e if mid <= bp else 0.0)
    return PiecewiseExponential(knots, slopes)
