"""The M-step: maximum-likelihood rates from a completed event set.

With all arrivals and departures filled in, the service times are
deterministic functions of the times (paper Section 2) and the M/M/1
likelihood factorizes per queue into exponential likelihoods, so the MLE is
the classic

    mu_q = (# events at q) / (total service time at q),

and — thanks to the initial-queue convention — the arrival rate ``lambda``
is the *same formula* applied to queue 0, whose "service" times are the
interarrival gaps.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InferenceError
from repro.events import EventSet


def mle_rates(
    events: EventSet,
    min_rate: float = 1e-9,
    max_rate: float = 1e12,
    prior_strength: float = 0.0,
    prior_rates: np.ndarray | None = None,
) -> np.ndarray:
    """Exponential-rate MLE per queue (index 0 = arrival rate).

    Parameters
    ----------
    events:
        A completed (feasible) event set.
    min_rate / max_rate:
        Clamps protecting StEM from degenerate sweeps where a queue's total
        sampled service time collapses to ~0 (rate would explode) or where a
        queue served almost nothing.
    prior_strength / prior_rates:
        Optional conjugate regularization: acts like ``prior_strength``
        pseudo-events with mean service ``1 / prior_rates[q]`` at each
        queue.  ``prior_strength = 0`` (default) gives the pure MLE of the
        paper's M-step.

    Returns
    -------
    numpy.ndarray
        Rates of shape ``(n_queues,)``.

    Raises
    ------
    InferenceError
        If any service time is negative (the event set is infeasible).
    """
    services = events.service_times()
    if np.any(services < -1e-9):
        raise InferenceError(
            f"cannot take an M-step on an infeasible event set "
            f"(min service {services.min():.3e})"
        )
    services = np.maximum(services, 0.0)
    counts = events.events_per_queue().astype(float)
    totals = np.zeros(events.n_queues)
    np.add.at(totals, events.queue, services)
    if prior_strength > 0.0:
        if prior_rates is None:
            raise InferenceError("prior_strength > 0 requires prior_rates")
        prior_rates = np.asarray(prior_rates, dtype=float)
        counts = counts + prior_strength
        totals = totals + prior_strength / np.maximum(prior_rates, min_rate)
    with np.errstate(divide="ignore", invalid="ignore"):
        rates = counts / totals
    rates[~np.isfinite(rates)] = max_rate
    rates[counts == 0.0] = min_rate
    return np.clip(rates, min_rate, max_rate)


def chain_service_totals(events: EventSet) -> np.ndarray:
    """Per-queue total service of one chain — the E-step sufficient statistic.

    The single source of the clamp-then-scatter-add arithmetic shared by
    :func:`mle_rates_pooled` (in-process chains) and the persistent-worker
    E-steps of :mod:`repro.inference.pool` (whose workers ship exactly this
    vector back to the master), keeping the two paths bitwise aligned.

    Raises
    ------
    InferenceError
        If any service time is negative (the chain state is infeasible).
    """
    services = events.service_times()
    if np.any(services < -1e-9):
        raise InferenceError(
            f"cannot pool statistics of an infeasible event set "
            f"(min service {services.min():.3e})"
        )
    totals = np.zeros(events.n_queues)
    np.add.at(totals, events.queue, np.maximum(services, 0.0))
    return totals


def mle_rates_from_stats(
    counts: np.ndarray,
    totals,
    min_rate: float = 1e-9,
    max_rate: float = 1e12,
) -> np.ndarray:
    """M-step from pre-computed sufficient statistics.

    This is the statistic-level core shared by :func:`mle_rates_pooled`
    (which derives the totals from in-process event sets) and the
    persistent-worker E-steps of :mod:`repro.inference.pool` (whose workers
    ship only per-queue total-service vectors back to the master).  Totals
    are accumulated in the given chain order and divided by the chain
    count, so the result is bitwise identical to the in-process pooling.

    Parameters
    ----------
    counts:
        Shared per-queue event counts (identical across chains — every
        chain imputes the same trace).
    totals:
        One per-queue total-service vector per chain, in chain order.
    min_rate / max_rate:
        Degenerate-sweep clamps, as in :func:`mle_rates`.
    """
    totals = list(totals)
    if not totals:
        raise InferenceError("need at least one chain's statistics to pool")
    counts = np.asarray(counts, dtype=float)
    pooled = np.zeros_like(counts)
    for chain_totals in totals:
        pooled += np.asarray(chain_totals, dtype=float)
    pooled /= len(totals)
    with np.errstate(divide="ignore", invalid="ignore"):
        rates = counts / pooled
    rates[~np.isfinite(rates)] = max_rate
    rates[counts == 0.0] = min_rate
    return np.clip(rates, min_rate, max_rate)


def mle_rates_pooled(
    event_sets,
    min_rate: float = 1e-9,
    max_rate: float = 1e12,
) -> np.ndarray:
    """M-step over sufficient statistics pooled across parallel chains.

    Every chain of a multi-chain E-step holds an imputation of the *same*
    trace, so the per-queue event counts agree and only the sampled total
    service times differ; the pooled MLE divides the (shared) counts by the
    cross-chain mean of the totals.  With one chain this reduces exactly to
    :func:`mle_rates`.

    Parameters
    ----------
    event_sets:
        One completed, feasible :class:`~repro.events.EventSet` per chain.
    min_rate / max_rate:
        Degenerate-sweep clamps, as in :func:`mle_rates`.
    """
    event_sets = list(event_sets)
    if not event_sets:
        raise InferenceError("need at least one event set to pool")
    counts = event_sets[0].events_per_queue().astype(float)
    return mle_rates_from_stats(
        counts,
        [chain_service_totals(events) for events in event_sets],
        min_rate=min_rate,
        max_rate=max_rate,
    )
