"""Monte-Carlo EM — the alternative the paper weighs against StEM.

Paper Section 4: "The E-step can be approximated using the output of a
Gibbs sampler, which results in Monte Carlo EM [Wei & Tanner 1990], but
this requires running an independent Gibbs sampler for a large number of
iterations at each outer EM iteration."

We implement it for the ``abl-em`` ablation: each outer iteration runs the
chain for ``e_sweeps`` sweeps, averages the per-queue sufficient statistics
(total service time; counts are constant), and takes the closed-form
M-step on the averaged statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.inference.gibbs import GibbsSampler
from repro.inference.init_heuristic import initial_rates_from_observed
from repro.inference.stem import initialize_state
from repro.observation import ObservedTrace
from repro.rng import RandomState, as_generator


@dataclass
class MCEMResult:
    """Output of a Monte-Carlo-EM run.

    Attributes mirror :class:`~repro.inference.stem.StEMResult`, except the
    point estimate is the *final* iterate (MCEM converges pointwise as the
    E-step sample size grows).
    """

    rates: np.ndarray
    rates_history: np.ndarray
    sampler: GibbsSampler
    total_sweeps: int

    @property
    def arrival_rate(self) -> float:
        """Estimated system arrival rate ``lambda``."""
        return float(self.rates[0])

    def mean_service_times(self) -> np.ndarray:
        """Estimated mean service time per queue."""
        return 1.0 / self.rates


def run_mcem(
    trace: ObservedTrace,
    n_iterations: int = 30,
    e_sweeps: int = 20,
    e_burn_in: int = 5,
    growth: float = 1.0,
    initial_rates: np.ndarray | None = None,
    init_method: str = "auto",
    random_state: RandomState = None,
) -> MCEMResult:
    """Estimate rates by Monte-Carlo EM.

    Parameters
    ----------
    trace:
        The observed trace.
    n_iterations:
        Outer EM iterations.
    e_sweeps:
        Gibbs sweeps averaged per E-step (after *e_burn_in* warm-up sweeps).
    e_burn_in:
        Warm-up sweeps discarded at the start of each E-step (the chain is
        warm-started from the previous iteration, so this can be small).
    growth:
        Multiplicative growth of *e_sweeps* per outer iteration; values
        slightly above 1 implement the increasing-precision schedule that
        makes MCEM converge.
    initial_rates, init_method, random_state:
        As in :func:`~repro.inference.stem.run_stem`.
    """
    if n_iterations < 1 or e_sweeps < 1 or e_burn_in < 0:
        raise InferenceError("need n_iterations >= 1, e_sweeps >= 1, e_burn_in >= 0")
    if growth < 1.0:
        raise InferenceError(f"growth must be >= 1, got {growth}")
    rng = as_generator(random_state)
    rates = (
        np.asarray(initial_rates, dtype=float).copy()
        if initial_rates is not None
        else initial_rates_from_observed(trace)
    )
    state = initialize_state(trace, rates, method=init_method)
    sampler = GibbsSampler(trace, state, rates, random_state=rng)
    counts = state.events_per_queue().astype(float)
    history = np.empty((n_iterations + 1, trace.skeleton.n_queues))
    history[0] = rates
    total_sweeps = 0
    sweeps = float(e_sweeps)
    for it in range(1, n_iterations + 1):
        sampler.run(e_burn_in)
        total_sweeps += e_burn_in
        n_keep = max(1, int(round(sweeps)))
        acc = np.zeros(trace.skeleton.n_queues)
        for _ in range(n_keep):
            sampler.sweep()
            acc += sampler.state.total_service_by_queue()
        total_sweeps += n_keep
        expected_totals = acc / n_keep
        with np.errstate(divide="ignore"):
            rates = counts / np.maximum(expected_totals, 1e-300)
        rates = np.clip(rates, 1e-9, 1e12)
        sampler.set_rates(rates)
        history[it] = rates
        sweeps *= growth
    return MCEMResult(
        rates=rates, rates_history=history, sampler=sampler, total_sweeps=total_sweeps
    )
