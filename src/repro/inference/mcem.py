"""Monte-Carlo EM — the alternative the paper weighs against StEM.

Paper Section 4: "The E-step can be approximated using the output of a
Gibbs sampler, which results in Monte Carlo EM [Wei & Tanner 1990], but
this requires running an independent Gibbs sampler for a large number of
iterations at each outer EM iteration."

We implement it for the ``abl-em`` ablation: each outer iteration runs the
chain for ``e_sweeps`` sweeps, averages the per-queue sufficient statistics
(total service time; counts are constant), and takes the closed-form
M-step on the averaged statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.inference.gibbs import GibbsSampler
from repro.inference.init_heuristic import initial_rates_from_observed
from repro.inference.pool import (
    PersistentChainPool,
    build_chain_sampler,
    chain_recipes,
)
from repro.observation import ObservedTrace
from repro.rng import RandomState


@dataclass
class MCEMResult:
    """Output of a Monte-Carlo-EM run.

    Attributes mirror :class:`~repro.inference.stem.StEMResult`, except the
    point estimate is the *final* iterate (MCEM converges pointwise as the
    E-step sample size grows).
    """

    rates: np.ndarray
    rates_history: np.ndarray
    sampler: GibbsSampler
    total_sweeps: int
    samplers: list[GibbsSampler] | None = None

    @property
    def n_chains(self) -> int:
        """Number of parallel E-step chains the run used."""
        return len(self.samplers) if self.samplers else 1

    @property
    def arrival_rate(self) -> float:
        """Estimated system arrival rate ``lambda``."""
        return float(self.rates[0])

    def mean_service_times(self) -> np.ndarray:
        """Estimated mean service time per queue."""
        return 1.0 / self.rates


def run_mcem(
    trace: ObservedTrace,
    n_iterations: int = 30,
    e_sweeps: int = 20,
    e_burn_in: int = 5,
    growth: float = 1.0,
    initial_rates: np.ndarray | None = None,
    init_method: str = "auto",
    random_state: RandomState = None,
    n_chains: int = 1,
    jitter: float = 0.15,
    kernel: str = "array",
    persistent_workers: int | None = None,
    shards: int = 1,
    threads: int = 1,
) -> MCEMResult:
    """Estimate rates by Monte-Carlo EM.

    Parameters
    ----------
    trace:
        The observed trace.
    n_iterations:
        Outer EM iterations.
    e_sweeps:
        Gibbs sweeps averaged per E-step (after *e_burn_in* warm-up sweeps),
        summed across chains: with ``n_chains > 1`` each chain contributes
        ``e_sweeps`` kept sweeps and the sufficient statistics pool over
        ``n_chains * e_sweeps`` imputations.
    e_burn_in:
        Warm-up sweeps discarded at the start of each E-step (the chains
        are warm-started from the previous iteration, so this can be small).
    growth:
        Multiplicative growth of *e_sweeps* per outer iteration; values
        slightly above 1 implement the increasing-precision schedule that
        makes MCEM converge.
    initial_rates, init_method, random_state:
        As in :func:`~repro.inference.stem.run_stem`.
    n_chains, jitter:
        Parallel E-step chains with jittered over-dispersed starts, as in
        :func:`~repro.inference.stem.run_stem`; ``n_chains=1`` reproduces
        the historical single-chain stream exactly.
    kernel:
        Sweep engine for every E-step chain (see
        :class:`~repro.inference.gibbs.GibbsSampler`).
    persistent_workers:
        As in :func:`~repro.inference.stem.run_stem`: fan the E-step
        chains out over persistent worker processes that keep chain state
        resident across EM iterations, shipping only rate vectors and
        per-sweep sufficient statistics.  Bitwise identical to the serial
        run at any worker count.
    shards:
        Sharded sweeps for every E-step chain (see
        :func:`~repro.inference.stem.run_stem`); with
        ``persistent_workers`` each worker hosts whole sharded chains.
    threads:
        Threaded batch evaluation inside every chain's array/native sweep
        kernel (see :class:`~repro.inference.gibbs.GibbsSampler`).
    """
    if n_iterations < 1 or e_sweeps < 1 or e_burn_in < 0:
        raise InferenceError("need n_iterations >= 1, e_sweeps >= 1, e_burn_in >= 0")
    if growth < 1.0:
        raise InferenceError(f"growth must be >= 1, got {growth}")
    if n_chains < 1:
        raise InferenceError(f"need at least one chain, got {n_chains}")
    if shards < 1:
        raise InferenceError(f"need at least one shard, got {shards}")
    rates = (
        np.asarray(initial_rates, dtype=float).copy()
        if initial_rates is not None
        else initial_rates_from_observed(trace)
    )
    recipes = chain_recipes(
        trace, rates, init_method, n_chains, jitter, random_state,
        shuffle=True, kernel=kernel, shards=shards, threads=threads,
    )
    counts = trace.skeleton.events_per_queue().astype(float)
    history = np.empty((n_iterations + 1, trace.skeleton.n_queues))
    history[0] = rates
    total_sweeps = 0
    sweeps = float(e_sweeps)
    if persistent_workers:
        with PersistentChainPool(recipes, workers=persistent_workers) as pool:
            for it in range(1, n_iterations + 1):
                n_keep = max(1, int(round(sweeps)))
                kept = pool.step(
                    rates, burn_in=e_burn_in, n_keep=n_keep, accumulate=True
                )
                total_sweeps += n_chains * (e_burn_in + n_keep)
                # Accumulate in exact serial order (chain-major, then
                # sweep) so the reduction is bitwise identical to the
                # in-process loop below.
                acc = np.zeros(trace.skeleton.n_queues)
                for chain_kept in kept:
                    for row in chain_kept:
                        acc += row
                rates = _mcem_m_step(counts, acc, n_keep * n_chains)
                history[it] = rates
                sweeps *= growth
            samplers = pool.finish(rates)
    else:
        samplers = [build_chain_sampler(recipe) for recipe in recipes]
        for it in range(1, n_iterations + 1):
            n_keep = max(1, int(round(sweeps)))
            acc = np.zeros(trace.skeleton.n_queues)
            for sampler in samplers:
                sampler.run(e_burn_in)
                total_sweeps += e_burn_in
                for _ in range(n_keep):
                    sampler.sweep()
                    acc += sampler.state.total_service_by_queue()
                total_sweeps += n_keep
            rates = _mcem_m_step(counts, acc, n_keep * len(samplers))
            for sampler in samplers:
                sampler.set_rates(rates)
            history[it] = rates
            sweeps *= growth
    return MCEMResult(
        rates=rates,
        rates_history=history,
        sampler=samplers[0],
        total_sweeps=total_sweeps,
        samplers=samplers,
    )


def _mcem_m_step(counts: np.ndarray, acc: np.ndarray, n_imputations: int) -> np.ndarray:
    """Closed-form M-step on E-step-averaged sufficient statistics."""
    expected_totals = acc / n_imputations
    with np.errstate(divide="ignore"):
        rates = counts / np.maximum(expected_totals, 1e-300)
    return np.clip(rates, 1e-9, 1e12)
