"""Metropolis-Hastings resampling of unknown FSM paths (paper Section 3).

"First, we assume the FSM paths ``(sigma_e, q_e)`` for all events are
known.  If these paths are unknown for some events, they can be resampled
by an outer Metropolis-Hastings step."

The practically important unknown is *which replicated server* handled an
unobserved event: the FSM state (e.g. "web tier") is known from the
protocol, but the balancer's choice ``q_e ~ p(q | sigma_e)`` was never
logged.  This module implements that outer MH step:

* a **proposal** draws a fresh queue from the emission prior
  ``p(q | sigma_e)``, so the prior terms cancel and the acceptance ratio
  reduces to the likelihood ratio of the (at most three) service times the
  reassignment changes;
* the **move** relocates the event into the proposed queue's arrival order
  at its current arrival time (:meth:`repro.events.EventSet.reassign_queue`)
  and is rejected outright when the FIFO constraints would be violated
  (negative service anywhere in the new neighborhood).

Interleave :meth:`PathResampler.sweep` with
:meth:`~repro.inference.gibbs.GibbsSampler.sweep` to sample jointly over
times and assignments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.events import EventSet
from repro.fsm import ProbabilisticFSM
from repro.rng import RandomState, as_generator


def tier_candidates_from_fsm(
    events: EventSet, fsm: ProbabilisticFSM, unknown_events: np.ndarray
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Candidate queues and prior probabilities for each unknown event.

    Reads each event's recorded FSM state and returns the support of the
    emission distribution ``p(q | sigma_e)``.  Events whose stored state is
    missing (-1) are rejected — the caller must know the state (the paper's
    protocol assumption) even when the emitted queue is unknown.
    """
    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for e in np.asarray(unknown_events, dtype=int):
        sigma = int(events.state[e])
        if sigma < 0:
            raise InferenceError(
                f"event {e} has no recorded FSM state; cannot build candidates"
            )
        row = fsm.emission[sigma]
        support = np.flatnonzero(row > 0.0)
        if support.size == 0:
            raise InferenceError(f"FSM state {sigma} emits no queues")
        out[int(e)] = (support.astype(np.int64), row[support] / row[support].sum())
    return out


@dataclass
class PathSweepStats:
    """Acceptance bookkeeping for one path-resampling sweep."""

    n_proposed: int = 0
    n_accepted: int = 0
    n_self: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Accepted fraction among real (non-self) proposals."""
        real = self.n_proposed - self.n_self
        return self.n_accepted / real if real else 1.0


class PathResampler:
    """Outer MH sampler over the unknown queue assignments.

    Parameters
    ----------
    state:
        The current (feasible) event set; mutated in place.
    candidates:
        Mapping from event index to ``(queues, probs)`` — the emission
        support for that event (see :func:`tier_candidates_from_fsm`).
    rates:
        Current exponential rates (update via :meth:`set_rates` in EM loops).
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        state: EventSet,
        candidates: dict[int, tuple[np.ndarray, np.ndarray]],
        rates: np.ndarray,
        random_state: RandomState = None,
    ) -> None:
        self.state = state
        self.candidates = {
            int(e): (np.asarray(qs, dtype=np.int64), np.asarray(ps, dtype=float))
            for e, (qs, ps) in candidates.items()
        }
        for e, (qs, ps) in self.candidates.items():
            if state.seq[e] == 0:
                raise InferenceError(f"event {e} is an initial event; not reassignable")
            if int(state.queue[e]) not in set(qs.tolist()):
                raise InferenceError(
                    f"event {e}'s current queue {state.queue[e]} is outside "
                    f"its candidate set {qs}"
                )
            if np.any(ps <= 0.0) or not np.isclose(ps.sum(), 1.0):
                raise InferenceError(f"event {e}: candidate probabilities must be a pmf")
        self._rates = np.asarray(rates, dtype=float).copy()
        self.rng = as_generator(random_state)

    def set_rates(self, rates: np.ndarray) -> None:
        """Replace the rate vector (for EM interleaving)."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self._rates.shape:
            raise InferenceError("rate vector shape changed")
        self._rates = rates.copy()

    # ------------------------------------------------------------------

    def _neighborhood_log_lik(self, affected: set[int]) -> float:
        """Likelihood contribution of the given events; -inf if infeasible."""
        total = 0.0
        state = self.state
        for x in affected:
            s = state.service_time_of(x)
            if s < 0.0:
                return -math.inf
            mu = self._rates[state.queue[x]]
            total += math.log(mu) - mu * s
        return total

    def _propose(self, e: int) -> bool:
        """One MH proposal for event *e*; returns True if accepted."""
        queues, probs = self.candidates[e]
        q_new = int(queues[int(self.rng.choice(queues.size, p=probs))])
        state = self.state
        q_old = int(state.queue[e])
        if q_new == q_old:
            return True
        # Events whose service the move can change: e itself, its current
        # within-queue successor (loses predecessor e), and — after the
        # move — its new successor (gains predecessor e).  Collect the
        # "before" set, move, then union with the "after" set.
        affected = {e}
        if state.rho_inv[e] >= 0:
            affected.add(int(state.rho_inv[e]))
        # The new successor is only known after the move; collect it, then
        # undo so the "before" likelihood is evaluated on the full union at
        # the old configuration.
        state.reassign_queue(e, q_new)
        if state.rho_inv[e] >= 0:
            affected.add(int(state.rho_inv[e]))
        state.reassign_queue(e, q_old)
        before = self._neighborhood_log_lik(affected)
        state.reassign_queue(e, q_new)
        after = self._neighborhood_log_lik(affected)
        if after == -math.inf:
            state.reassign_queue(e, q_old)
            return False
        log_alpha = after - before
        if log_alpha >= 0.0 or self.rng.uniform() < math.exp(log_alpha):
            return True
        state.reassign_queue(e, q_old)
        return False

    def sweep(self) -> PathSweepStats:
        """Propose one move for every unknown assignment (random order)."""
        stats = PathSweepStats()
        order = self.rng.permutation(np.array(sorted(self.candidates), dtype=np.int64))
        for e in order:
            e = int(e)
            q_before = int(self.state.queue[e])
            accepted = self._propose(e)
            stats.n_proposed += 1
            if accepted:
                if int(self.state.queue[e]) == q_before:
                    stats.n_self += 1
                else:
                    stats.n_accepted += 1
        return stats
