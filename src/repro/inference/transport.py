"""Pluggable master↔worker message transports for the persistent pools.

Every worker pool in this package (:class:`~repro.inference.pool.PersistentChainPool`,
:class:`~repro.inference.shard.ShardWorkerPool`) speaks a tiny
request/reply protocol over a duplex *endpoint*: ``send(obj)``,
``recv() -> obj``, ``close()``.  Historically that endpoint was hardwired
to :func:`multiprocessing.Pipe`; this module factors it behind a
transport interface so the *same* worker functions — and therefore the
same algorithms, byte for byte — can run over any medium:

* :class:`PipeTransport` — the original design: a local daemon process
  per worker, connected by an OS pipe.  Zero configuration, lowest
  latency; the default everywhere.
* :class:`SocketTransport` — workers connect back to the master over TCP
  and *everything* (worker entry point, payload, every protocol message)
  crosses the socket as length-prefixed pickle frames.  By default the
  transport also spawns the worker processes locally, which makes the
  loopback path a complete integration test of the wire protocol; a
  remote machine instead runs :func:`serve_worker` pointed at the
  master's advertised address (``spawn_local=False``) and joins the pool
  with no algorithm changes — the isolate-first-then-share boundary
  the shard protocol already enforces (only boundary-region times and
  per-queue statistics cross the interface) is exactly what makes the
  swap mechanical.

Determinism is untouched by construction: a worker's draws are a pure
function of its shipped payload (recipes / shard residents carry their
own random streams), never of the medium that delivered it, so pipe and
socket runs of the same pool are bitwise identical —
``tests/inference/test_transport.py`` pins this.
"""

from __future__ import annotations

import hmac
import multiprocessing
import os
import pickle
import socket
import struct
import time
from dataclasses import dataclass

from repro.errors import InferenceError

#: Frame header: big-endian u64 payload length.
_HEADER = struct.Struct(">Q")

#: Byte length of handshake nonces and HMAC-SHA256 digests.
_NONCE_LEN = 32


def _recv_exact_from(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise EOFError("socket closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _hmac_digest(authkey: bytes, label: bytes, nonce: bytes) -> bytes:
    return hmac.new(authkey, label + nonce, digestmod="sha256").digest()


def _master_handshake(sock: socket.socket, authkey: bytes) -> bool:
    """Mutually authenticate a dialing worker before any pickle crosses.

    Both directions matter: the master must not unpickle frames from an
    unauthenticated connector (``pickle.loads`` on attacker bytes is
    arbitrary code execution), and the worker must not accept a
    ``worker_main`` from a rogue master.  Raw fixed-length byte exchanges
    only — no pickle until both sides proved knowledge of the key.
    """
    m_nonce = os.urandom(_NONCE_LEN)
    sock.sendall(m_nonce)
    reply = _recv_exact_from(sock, 2 * _NONCE_LEN)
    digest, w_nonce = reply[:_NONCE_LEN], reply[_NONCE_LEN:]
    if not hmac.compare_digest(digest, _hmac_digest(authkey, b"worker", m_nonce)):
        return False
    sock.sendall(_hmac_digest(authkey, b"master", w_nonce))
    return True


def _worker_handshake(sock: socket.socket, authkey: bytes) -> bool:
    """The worker-side mirror of :func:`_master_handshake`."""
    m_nonce = _recv_exact_from(sock, _NONCE_LEN)
    w_nonce = os.urandom(_NONCE_LEN)
    sock.sendall(_hmac_digest(authkey, b"worker", m_nonce) + w_nonce)
    digest = _recv_exact_from(sock, _NONCE_LEN)
    return hmac.compare_digest(digest, _hmac_digest(authkey, b"master", w_nonce))


@dataclass
class WorkerHandle:
    """One launched worker: its message endpoint plus (maybe) its process.

    ``process`` is ``None`` for workers the master did not spawn (a remote
    :func:`serve_worker` peer); lifecycle calls degrade to no-ops there —
    the pool can only close the conversation, not the remote host.
    """

    endpoint: object
    process: object | None = None

    def send(self, obj) -> None:
        """Ship one protocol message to the worker."""
        self.endpoint.send(obj)

    def recv(self):
        """Block for the worker's next reply."""
        return self.endpoint.recv()

    def close_endpoint(self) -> None:
        """Close the message channel; never raises."""
        try:
            self.endpoint.close()
        except OSError:
            pass

    def join(self, timeout: float | None = None) -> None:
        """Wait for a locally spawned worker process to exit."""
        if self.process is not None:
            self.process.join(timeout)

    def is_alive(self) -> bool:
        """Whether a locally spawned worker process is still running."""
        return self.process is not None and self.process.is_alive()

    def terminate(self) -> None:
        """Forcibly stop a locally spawned worker process."""
        if self.process is not None:
            self.process.terminate()


class WorkerTransport:
    """Interface every transport implements.

    :meth:`launch` starts (or admits) one worker running *worker_main*
    over *payload* and returns its :class:`WorkerHandle`.  Pools never
    construct processes or connections themselves — swapping the
    transport swaps the whole worker substrate.
    """

    #: Human-readable tag used in error messages.
    label = "abstract"

    def launch(self, worker_main, payload) -> WorkerHandle:
        """Start one worker; must deliver ``worker_main(endpoint, payload)``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport-owned resources (listeners); idempotent."""

    def __enter__(self) -> "WorkerTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PipeTransport(WorkerTransport):
    """Local daemon processes over :func:`multiprocessing.Pipe` (default)."""

    label = "pipe"

    def launch(self, worker_main, payload) -> WorkerHandle:
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=worker_main, args=(child_conn, payload), daemon=True
        )
        proc.start()
        child_conn.close()
        return WorkerHandle(endpoint=parent_conn, process=proc)


def _enable_keepalive(sock: socket.socket) -> None:
    """Detect silently dead peers (power loss, partition) on idle waits.

    Protocol waits between sweeps are legitimately long, so a timeout
    would be wrong; TCP keepalive probes instead turn a vanished peer
    into a connection reset, which surfaces through the endpoints as the
    :class:`EOFError`/:class:`OSError` the pools already handle.
    """
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for opt, value in (
        ("TCP_KEEPIDLE", 60),   # first probe after 60s idle
        ("TCP_KEEPINTVL", 15),  # then every 15s
        ("TCP_KEEPCNT", 4),     # give up after 4 misses
    ):
        if hasattr(socket, opt):
            sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, opt), value)


class SocketEndpoint:
    """Length-prefixed pickle frames over a stream socket.

    Mirrors the :class:`multiprocessing.connection.Connection` subset the
    worker protocol uses (``send``/``recv``/``close``), raising
    :class:`EOFError` on a peer that vanished mid-conversation — the same
    signal the pools already translate into a clean shutdown.  Keepalive
    probes are enabled so a peer that dies without a FIN (machine loss,
    network partition) eventually errors out instead of wedging a
    blocking ``recv`` forever.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        try:
            _enable_keepalive(sock)
        except OSError:  # not a TCP socket (tests use socketpair) — fine
            pass

    def send(self, obj) -> None:
        """Pickle *obj* and write it as one ``[length][payload]`` frame.

        Header and payload go out in separate ``sendall`` calls so a
        multi-megabyte frame (a full shard resident) is never copied a
        second time just to prepend eight bytes.
        """
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._sock.sendall(_HEADER.pack(len(data)))
        self._sock.sendall(data)

    def recv(self):
        """Read one frame and unpickle it; :class:`EOFError` if the peer closed.

        A frame that fails to unpickle (a peer running skewed package
        versions) also surfaces as :class:`EOFError`: the conversation is
        unusable either way, and the pools' dead-connection handling —
        close everything, raise :class:`~repro.errors.InferenceError` —
        is exactly the right response to both.
        """
        (length,) = _HEADER.unpack(self._recv_exact(_HEADER.size))
        data = self._recv_exact(length)
        try:
            return pickle.loads(data)
        except Exception as exc:  # noqa: BLE001 — any load failure kills the conversation
            raise EOFError(f"undecodable frame from peer: {exc}") from exc

    def _recv_exact(self, n: int) -> bytes:
        return _recv_exact_from(self._sock, n)

    def close(self) -> None:
        """Shut down and close the underlying socket; never raises.

        ``shutdown(SHUT_RDWR)`` comes first because a bare ``close()``
        does not reliably wake another thread blocked in ``recv`` on the
        same socket (Linux keeps the file description alive until its
        last user drops it, so the blocked reader sleeps on).  The
        shutdown sends the FIN and fails every pending ``recv`` with
        :class:`EOFError`/:class:`OSError` immediately — which is what
        lets a server drop an idle connection without waiting out a join
        timeout per handler thread.
        """
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected (peer closed first) — fine
        try:
            self._sock.close()
        except OSError:
            pass


def serve_worker(
    address: tuple[str, int], authkey: bytes, handshake_timeout: float = 30.0
) -> None:
    """Join a :class:`SocketTransport` pool from anywhere.

    Connects to the master's advertised *address*, proves knowledge of
    the shared *authkey* (and demands the same proof back — a worker
    must not run a ``worker_main`` shipped by a rogue master), then
    receives the worker entry point and its payload as the first frame
    and serves the protocol until the master hangs up.  This is the
    whole cross-machine story: a remote host runs exactly this function
    with the pool's key — the algorithm code it executes is the same
    module-level worker the pipe transport forks.

    *handshake_timeout* bounds the handshake and the first frame, so a
    master that dies mid-setup leaves no wedged worker behind; once the
    payload has arrived the socket reverts to blocking (protocol waits
    between sweeps are legitimately long).
    """
    sock = socket.create_connection(address, timeout=handshake_timeout)
    try:
        authenticated = _worker_handshake(sock, authkey)
    except (EOFError, OSError) as exc:
        sock.close()
        raise InferenceError(
            f"master at {address} closed the connection during the handshake "
            f"({exc}) — wrong authkey on one side (a master drops connectors "
            "that fail its challenge), a truncated hello, or a master that "
            "died mid-setup"
        ) from None
    if not authenticated:
        sock.close()
        raise InferenceError(
            f"handshake with {address} failed: wrong authkey, or the peer "
            "is not this pool's master"
        )
    endpoint = SocketEndpoint(sock)
    try:
        worker_main, payload = endpoint.recv()
    except (EOFError, OSError) as exc:
        endpoint.close()
        raise InferenceError(
            f"master at {address} hung up before shipping a payload ({exc})"
        ) from None
    sock.settimeout(None)
    worker_main(endpoint, payload)


def _local_socket_worker(address: tuple[str, int], authkey: bytes) -> None:
    """Entry point of a locally spawned socket worker (fork target)."""
    serve_worker(address, authkey)


class SocketTransport(WorkerTransport):
    """Workers over TCP: every message is a length-prefixed pickle frame.

    Parameters
    ----------
    host / port:
        Listen address for worker connections; port 0 (default) picks a
        free port — read it back from :attr:`address`.
    accept_timeout:
        Seconds to wait for a worker to dial in before
        :class:`~repro.errors.InferenceError` (a worker that died before
        connecting must not hang the master).
    spawn_local:
        ``True`` (default) spawns a local process per :meth:`launch` that
        runs :func:`serve_worker` against :attr:`address` — the loopback
        integration mode.  ``False`` spawns nothing and waits for an
        externally started :func:`serve_worker` (a remote machine) to
        connect.
    authkey:
        Shared secret for the mutual HMAC handshake every connection must
        pass before any pickle frame is exchanged (frames are unpickled,
        so an unauthenticated peer would mean arbitrary code execution —
        the same threat :mod:`multiprocessing.connection` guards with its
        challenge).  Defaults to a fresh random key, which locally
        spawned workers inherit automatically; remote deployments pass
        the same key to :func:`serve_worker`.
    """

    label = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        accept_timeout: float = 30.0,
        spawn_local: bool = True,
        authkey: bytes | None = None,
    ) -> None:
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(float(accept_timeout))
        self.spawn_local = bool(spawn_local)
        self.accept_timeout = float(accept_timeout)
        #: The shared handshake secret; hand to remote :func:`serve_worker`.
        self.authkey: bytes = authkey if authkey is not None else os.urandom(32)
        #: The ``(host, port)`` workers dial; pass to :func:`serve_worker`.
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        #: Connections dropped for failing the handshake, across every
        #: :meth:`launch` — a nonzero value with a "no worker connected"
        #: error means a key mismatch, not a dead worker host.
        self.n_rejected: int = 0

    def launch(self, worker_main, payload) -> WorkerHandle:
        proc = None
        if self.spawn_local:
            ctx = multiprocessing.get_context()
            proc = ctx.Process(
                target=_local_socket_worker,
                args=(self.address, self.authkey),
                daemon=True,
            )
            proc.start()
        # One deadline for the whole attempt: impostor connections are
        # dropped without restarting the clock, so a peer hammering the
        # port cannot keep launch() blocked past accept_timeout.
        deadline = time.monotonic() + self.accept_timeout
        n_rejected = 0

        def _no_worker(exc: Exception) -> InferenceError:
            if proc is not None:
                proc.terminate()
            # Say what actually happened: "nobody dialed in" and
            # "someone dialed in but failed the handshake" need very
            # different fixes (dead worker host vs. skewed authkey).
            detail = (
                f"; {n_rejected} connection(s) arrived but failed the "
                "HMAC handshake — wrong authkey on one side, or a "
                "peer that closed mid-hello"
                if n_rejected
                else ""
            )
            return InferenceError(
                f"no worker connected to {self.address} within the accept "
                f"timeout ({exc}){detail}"
            )

        while True:
            remaining = deadline - time.monotonic()
            if proc is not None and not proc.is_alive():
                # The locally spawned worker died before dialing in (an
                # import error in the fork target, an OOM kill): its exit
                # code says more than any timeout, and waiting out the
                # rest of the accept window would only delay the caller's
                # recovery path.
                proc.join()
                raise InferenceError(
                    f"locally spawned worker exited with code "
                    f"{proc.exitcode} before connecting to {self.address} — "
                    "it never reached the handshake (crash during startup)"
                )
            try:
                if remaining <= 0.0:
                    raise socket.timeout("authentication deadline passed")
                # Wake up at least every 100 ms to re-check the spawned
                # process, so a child that crashes before dialing in fails
                # the launch promptly instead of after accept_timeout.
                self._listener.settimeout(
                    min(remaining, 0.1) if proc is not None else remaining
                )
                conn, _ = self._listener.accept()
            except socket.timeout as exc:
                if proc is not None and time.monotonic() < deadline:
                    continue  # short poll tick, not the real deadline
                raise _no_worker(exc) from None
            except OSError as exc:
                raise _no_worker(exc) from None
            # Authenticate before any pickle crosses; an impostor's
            # connection is dropped and we keep waiting for the real
            # worker until the deadline ends the attempt.
            conn.settimeout(max(deadline - time.monotonic(), 0.001))
            try:
                authenticated = _master_handshake(conn, self.authkey)
            except (EOFError, OSError):
                authenticated = False
            if authenticated:
                conn.settimeout(None)
                break
            n_rejected += 1
            self.n_rejected += 1
            try:
                conn.close()
            except OSError:
                pass
        endpoint = SocketEndpoint(conn)
        # The worker entry point and its payload cross the wire too, so a
        # remote peer needs nothing beyond the installed package.
        endpoint.send((worker_main, payload))
        return WorkerHandle(endpoint=endpoint, process=proc)

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass
