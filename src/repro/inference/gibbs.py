"""The Gibbs sampler over unobserved event times (paper Section 3).

A *sweep* resamples, one at a time, every latent scalar of the trace:

* the arrival ``a_e`` of every non-initial event whose arrival was not
  measured (which simultaneously moves ``d_pi(e)``, the same quantity), and
* the departure of every task-final event that was not measured.

Each move draws exactly from the local conditional (paper Eq. 2–4, built by
:mod:`repro.inference.conditional`), so the sweep is a systematic-scan
Gibbs kernel whose stationary distribution is the posterior
``p(E | O, mu)``.

The cost of a sweep is linear in the number of latent variables and
independent of the number of queues — the scaling property the paper calls
out in Section 5.2 and that ``benchmarks/bench_scaling.py`` measures.

Sweeps run on one of two engines, selected by the ``kernel`` argument:

* ``kernel="array"`` (default): the vectorized
  :class:`~repro.inference.kernel.ArraySweepKernel`.  Moves are partitioned
  once into conflict-free batches (no move writes a time another move in
  the batch reads), and each batch's conditionals are built, normalized and
  inverse-CDF sampled with numpy array kernels — no per-move Python object
  allocation.  The scan remains sequential across batches, so every draw is
  exact; only the random stream differs from the object kernel.
* ``kernel="object"``: the reference per-move scalar path, with the
  optimizations below.

Two object-kernel sweep-speed optimizations are available and on by default:

* **blanket caching** (``cache_blankets=True``): the static neighbor
  indices of every move's Markov blanket are extracted once at
  construction instead of re-derived from the :class:`~repro.events.EventSet`
  on every move; draws are bitwise identical to the uncached sweep.  The
  cache tracks ``EventSet.structure_version`` and rebuilds itself after
  path-MH queue reassignments, so interleaving with
  :class:`~repro.inference.paths_mh.PathResampler` stays correct.
* **batched draws** (``batch_draws=True``, off by default): all the
  uniforms a sweep can consume are drawn in one generator call up front.
  This produces a *different* (still exact and fully deterministic) random
  stream than the scalar-draw sweep, because every visited move consumes
  its two uniforms whether or not the move is skipped; use the default
  when bit-compatibility with historical runs matters.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InferenceError
from repro.events import EventSet
from repro.inference.conditional import (
    ArrivalBlanketCache,
    DepartureBlanketCache,
    arrival_conditional,
    arrival_conditional_cached,
    final_departure_conditional,
    final_departure_conditional_cached,
)
from repro.inference.kernel import ArraySweepKernel
from repro.inference.native import make_sweep_kernel
from repro.observation import ObservedTrace
from repro.rng import RandomState, as_generator

#: Sweep engines a :class:`GibbsSampler` can run on.  ``"native"`` is the
#: array kernel with its batch evaluation lowered to numba-compiled loops
#: (:mod:`repro.inference.native`); it degrades to the plain array path
#: when numba is not installed.
KERNELS = ("array", "native", "object")

#: Kernels that run on the batched array engine (and its sharded form).
BATCH_KERNELS = ("array", "native")


@contextmanager
def _ignore_empty_slice_warnings():
    # Queues with no events produce all-nan columns (e.g. a server the
    # balancer never picked); nan is the intended answer there, so the
    # "mean of empty slice" / "all-nan slice" warnings are noise.
    with np.errstate(invalid="ignore"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            yield


@dataclass
class SweepStats:
    """Bookkeeping for one Gibbs sweep."""

    n_moves: int = 0
    n_skipped: int = 0

    @property
    def n_attempted(self) -> int:
        """Total latent variables visited."""
        return self.n_moves + self.n_skipped


class GibbsSampler:
    """Systematic-scan Gibbs sampler for an M/M/1/FIFO queueing network.

    Parameters
    ----------
    trace:
        The observed (censored) trace; defines which variables are latent.
    state:
        A *feasible* event set whose observed entries match the trace and
        whose latent entries hold the current sample.  Produced by an
        initializer (:func:`~repro.inference.init_heuristic.heuristic_initialize`
        or :func:`~repro.inference.init_lp.lp_initialize`); mutated in place.
    rates:
        Exponential rate per queue (index 0 = arrival rate ``lambda``).
        Update via :meth:`set_rates` between sweeps for StEM.
    random_state:
        Seed or generator for all moves.
    shuffle:
        Visit latent variables in a fresh random order every sweep (default);
        with ``False`` the scan order is the event index order.
    cache_blankets:
        Precompute the static Markov-blanket indices of every move (see
        module docstring).  Draw-for-draw identical to the uncached sweep.
        Only meaningful for ``kernel="object"``.
    batch_draws:
        Pre-draw each sweep's uniforms in one generator call (implies the
        blanket cache; changes the random stream — see module docstring).
        Only meaningful for ``kernel="object"``.
    kernel:
        ``"array"`` (default) runs sweeps on the vectorized
        :class:`~repro.inference.kernel.ArraySweepKernel`: moves are
        partitioned into conflict-free batches and each batch's
        conditionals are built and inverted with numpy kernels.  The scan
        stays sequential (batch concatenation order, shuffled per sweep
        when *shuffle* is set), so the draws are exact; the random stream
        differs from the object kernel, so results agree statistically,
        not bitwise.  ``"native"`` is the same engine with its batch
        evaluation lowered to numba-compiled fused loops
        (:class:`~repro.inference.native.NativeSweepKernel`; agrees with
        the array kernel to 1e-10 per move, falls back to the numpy path
        when numba is missing).  ``"object"`` is the reference per-move
        scalar path.
    shards:
        With ``shards > 1`` the trace's tasks are partitioned into that
        many shards (:func:`~repro.inference.shard.partition_tasks`) and
        each sweep runs on the
        :class:`~repro.inference.shard.ShardedSweepEngine`: boundary
        moves — those whose Markov blanket crosses a shard cut — are
        resampled first by a scalar master pass, then every shard's
        interior moves sweep on an independent array kernel.  Every move
        still draws from its exact full conditional, so the stitched
        chain targets the same posterior as an unsharded sweep;
        ``shards=1`` is exactly the plain array kernel.  Requires a batch
        kernel (``"array"`` or ``"native"``).
    shard_workers:
        Only with ``shards > 1``: fan the shard sweeps out over this many
        persistent worker processes that keep per-shard sub-traces
        resident and exchange only boundary-event times with the master
        each sweep.  Results are bitwise identical to the in-process
        sharded sweep at any worker count.  While workers are attached,
        ``state`` is only current in the boundary region; call
        :meth:`finish_shards` to pull the full state back and detach.
    shard_partition:
        Optional pre-computed
        :class:`~repro.inference.shard.TaskPartition` for the sharded
        engine (the streaming estimator's incremental re-partition);
        ``None`` partitions from scratch.  Any partition targets the same
        posterior — it only reorders the scan.
    shard_pool:
        An externally owned
        :class:`~repro.inference.shard.WarmShardWorkerPool` that adopts
        this sampler's shards instead of spawning dedicated workers; the
        pool's processes outlive the sampler (cross-window streaming).
        Mutually exclusive with ``shard_workers``.
    shard_transport:
        Worker transport for a dedicated shard pool (see
        :mod:`repro.inference.transport`); pipes by default.
    threads:
        Threaded batch evaluation inside every array kernel (see
        :class:`~repro.inference.kernel.ArraySweepKernel`); draws are
        bitwise independent of the thread count.
    """

    def __init__(
        self,
        trace: ObservedTrace,
        state: EventSet,
        rates: np.ndarray,
        random_state: RandomState = None,
        shuffle: bool = True,
        cache_blankets: bool = True,
        batch_draws: bool = False,
        kernel: str = "array",
        shards: int = 1,
        shard_workers: int | None = None,
        shard_partition=None,
        shard_pool=None,
        shard_transport=None,
        threads: int = 1,
    ) -> None:
        self.trace = trace
        self.state = state
        self._rates = np.asarray(rates, dtype=float).copy()
        if self._rates.shape != (state.n_queues,):
            raise InferenceError(
                f"expected {state.n_queues} rates, got shape {self._rates.shape}"
            )
        if np.any(~np.isfinite(self._rates)) or np.any(self._rates <= 0.0):
            raise InferenceError("all rates must be positive and finite")
        self.rng = as_generator(random_state)
        self.shuffle = shuffle
        if kernel not in KERNELS:
            raise InferenceError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.kernel = kernel
        if shards < 1:
            raise InferenceError(f"need at least one shard, got {shards}")
        if shards > 1 and kernel not in BATCH_KERNELS:
            raise InferenceError(
                "sharded sweeps run on the array kernel only "
                "(kernel='array' or its native lowering 'native')"
            )
        if shard_workers is not None and shards == 1:
            raise InferenceError(
                "shard_workers requires shards > 1; use persistent_workers to "
                "fan whole chains out instead"
            )
        if shard_pool is not None and shard_workers is not None:
            raise InferenceError(
                "pass either shard_workers (a dedicated pool) or shard_pool "
                "(an external warm pool), not both"
            )
        if threads < 1:
            raise InferenceError(f"threads must be at least 1, got {threads}")
        self.shards = int(shards)
        self.shard_workers = shard_workers
        self.threads = int(threads)
        # The array kernel is built on top of the blanket caches.
        self.cache_blankets = (
            bool(cache_blankets) or bool(batch_draws) or kernel in BATCH_KERNELS
        )
        self.batch_draws = bool(batch_draws)
        self._arrival_moves = trace.latent_arrival_events.copy()
        self._departure_moves = trace.latent_departure_events.copy()
        self._arrival_slots = np.arange(self._arrival_moves.size)
        self._departure_slots = np.arange(self._departure_moves.size)
        if np.any(np.isnan(state.arrival)) or np.any(np.isnan(state.departure)):
            raise InferenceError(
                "the state still contains nan times; run an initializer first"
            )
        self._arrival_cache: ArrivalBlanketCache | None = None
        self._departure_cache: DepartureBlanketCache | None = None
        self._array_kernel: ArraySweepKernel | None = None
        self._shard_engine = None
        if self.shards > 1:
            # Imported here to avoid a cycle (shard builds on this module).
            from repro.inference.shard import ShardedSweepEngine

            self._shard_engine = ShardedSweepEngine(
                trace,
                state,
                self._rates,
                n_shards=self.shards,
                random_state=self.rng,
                shuffle=self.shuffle,
                kernel=self.kernel,
                threads=self.threads,
                workers=shard_workers,
                partition=shard_partition,
                pool=shard_pool,
                transport=shard_transport,
            )
        elif self.cache_blankets:
            self.rebuild_blanket_cache()
        self.n_sweeps_done = 0

    # ------------------------------------------------------------------
    # Parameters.
    # ------------------------------------------------------------------

    @property
    def rates(self) -> np.ndarray:
        """Current rate vector (copy; use :meth:`set_rates` to change)."""
        return self._rates.copy()

    def set_rates(self, rates: np.ndarray) -> None:
        """Replace the rate vector (the StEM M-step hook)."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self._rates.shape:
            raise InferenceError(f"rate vector shape changed: {rates.shape}")
        if np.any(~np.isfinite(rates)) or np.any(rates <= 0.0):
            raise InferenceError("all rates must be positive and finite")
        self._rates = rates.copy()
        if self._arrival_cache is not None:
            self._arrival_cache.refresh_rates(self.state, self._rates)
        if self._departure_cache is not None:
            self._departure_cache.refresh_rates(self.state, self._rates)
        if self._array_kernel is not None:
            self._array_kernel.refresh_rates(self._rates)
        if self._shard_engine is not None:
            self._shard_engine.refresh_rates(self.state, self._rates)

    @property
    def n_latent(self) -> int:
        """Number of latent scalars resampled per sweep."""
        return self._arrival_moves.size + self._departure_moves.size

    def reseed(self, random_state) -> None:
        """Swap the sampler's random stream (per-particle kernel reuse).

        An SMC rejuvenation pass runs a few sweeps for *every* particle
        of a population over the same window trace.  Building a sampler
        (and its blanket caches and batch kernel) per particle would
        dominate the cost, so the particle loop builds one sampler and,
        per particle, reseeds it, loads that particle's times
        (:meth:`load_times`), and sets its rates.  Only unsharded
        samplers can be reseeded — a sharded engine has already derived
        per-shard streams from the original seed material.
        """
        if self._shard_engine is not None:
            raise InferenceError(
                "a sharded sampler's workers hold derived streams; "
                "reseed is only supported for unsharded samplers"
            )
        self.rng = as_generator(random_state)

    def load_times(self, arrival: np.ndarray, departure: np.ndarray) -> None:
        """Overwrite the resident state's time columns in place.

        The companion of :meth:`reseed`: swaps which particle's latent
        times the shared sampler is sweeping.  Times-only writes are
        exactly what the sweep kernels themselves perform (the blanket
        caches and conflict-free batches key on the event-set
        *structure*, which time moves never touch), so the built caches
        stay valid.  Both arrays must come from a state with identical
        structure — e.g. copies of one initialized state's columns.
        """
        if self._shard_engine is not None:
            raise InferenceError(
                "shard workers hold their interior times remotely; "
                "load_times is only supported for unsharded samplers"
            )
        arrival = np.asarray(arrival, dtype=float)
        departure = np.asarray(departure, dtype=float)
        state = self.state
        if arrival.shape != state.arrival.shape or departure.shape != state.departure.shape:
            raise InferenceError(
                "time arrays do not match the resident state's shape"
            )
        if np.any(np.isnan(arrival)) or np.any(np.isnan(departure)):
            raise InferenceError("loaded times contain nan")
        state.arrival[:] = arrival
        state.departure[:] = departure

    # ------------------------------------------------------------------
    # Blanket cache maintenance.
    # ------------------------------------------------------------------

    def rebuild_blanket_cache(self) -> None:
        """(Re)extract the static part of every move's Markov blanket.

        Called automatically at construction and whenever the event set's
        ``structure_version`` has moved (a path-MH queue reassignment
        changed ``rho``/``rho_inv`` pointers or queue memberships).
        """
        self._arrival_cache = ArrivalBlanketCache(
            self.state, self._arrival_moves, self._rates
        )
        self._departure_cache = DepartureBlanketCache(
            self.state, self._departure_moves, self._rates
        )
        if self.kernel in BATCH_KERNELS:
            if self._array_kernel is not None:
                # Release the superseded kernel's thread pool now instead
                # of leaking it until GC happens to run.
                self._array_kernel.close()
            self._array_kernel = make_sweep_kernel(
                self.kernel, self.state, self._arrival_cache,
                self._departure_cache, self._rates, threads=self.threads,
            )

    def _fresh_caches(self) -> tuple[ArrivalBlanketCache, DepartureBlanketCache]:
        if (
            self._arrival_cache is None
            or self._arrival_cache.structure_version != self.state.structure_version
        ):
            self.rebuild_blanket_cache()
        return self._arrival_cache, self._departure_cache

    # ------------------------------------------------------------------
    # Sweeping.
    # ------------------------------------------------------------------

    def sweep(self) -> SweepStats:
        """Resample every latent variable once; returns move statistics."""
        if self._shard_engine is not None:
            stats = self._sweep_sharded()
        elif self.kernel in BATCH_KERNELS:
            stats = self._sweep_array()
        elif self.cache_blankets:
            stats = self._sweep_cached()
        else:
            stats = self._sweep_reference()
        self.n_sweeps_done += 1
        return stats

    def _sweep_array(self) -> SweepStats:
        """One sweep on the vectorized array kernel."""
        self._fresh_caches()
        n_moves, n_skipped = self._array_kernel.sweep(
            self.state, self.rng, shuffle=self.shuffle
        )
        return SweepStats(n_moves=n_moves, n_skipped=n_skipped)

    def _sweep_sharded(self) -> SweepStats:
        """One sweep on the sharded engine: boundary pass, then shards."""
        n_moves, n_skipped = self._shard_engine.sweep(self.state, self.rng)
        return SweepStats(n_moves=n_moves, n_skipped=n_skipped)

    # ------------------------------------------------------------------
    # Sufficient statistics and shard lifecycle.
    # ------------------------------------------------------------------

    def service_totals(self) -> np.ndarray:
        """Per-queue total service of the current state (E-step statistic).

        The unsharded path defers to
        :func:`~repro.inference.mstep.chain_service_totals`.  Sharded runs
        accumulate per-shard partial sums in shard order — bitwise
        identical between the in-process engine and shard workers (whose
        sub-traces hold the current interior times the master mirror does
        not have while workers are attached).
        """
        if self._shard_engine is not None:
            return self._shard_engine.service_totals(self.state)
        from repro.inference.mstep import chain_service_totals

        return chain_service_totals(self.state)

    def finish_shards(self) -> None:
        """Pull shard-worker state back in-process and detach the workers.

        After this call ``state`` is the complete stitched chain state and
        further sweeps continue the exact per-shard random streams
        in-process.  No-op for unsharded or already-serial samplers.
        """
        if self._shard_engine is not None:
            self._shard_engine.finish_workers(self.state)

    def close(self) -> None:
        """Release shard worker processes and kernel thread pools; idempotent.

        The sampler stays usable afterwards — a later threaded sweep
        recreates its thread pool lazily."""
        if self._shard_engine is not None:
            self._shard_engine.close()
        if self._array_kernel is not None:
            self._array_kernel.close()

    def _sweep_reference(self) -> SweepStats:
        """The uncached sweep: derive every blanket from the event set."""
        stats = SweepStats()
        arrivals = self._arrival_moves
        departures = self._departure_moves
        if self.shuffle:
            arrivals = self.rng.permutation(arrivals)
            departures = self.rng.permutation(departures)
        state = self.state
        rates = self._rates
        for e in arrivals:
            dist = arrival_conditional(state, int(e), rates)
            if dist is None:
                stats.n_skipped += 1
                continue
            state.set_arrival(int(e), dist.sample(self.rng))
            stats.n_moves += 1
        for e in departures:
            dist = final_departure_conditional(state, int(e), rates)
            if dist is None:
                stats.n_skipped += 1
                continue
            state.set_final_departure(int(e), dist.sample(self.rng))
            stats.n_moves += 1
        return stats

    def _sweep_cached(self) -> SweepStats:
        """Blanket-cached sweep, optionally with batched uniform draws.

        With ``batch_draws=False`` this consumes the generator exactly like
        :meth:`_sweep_reference` (slot permutations draw the same variates
        as event permutations of equal length; each non-skipped move draws
        its two uniforms scalar-by-scalar) and therefore reproduces its
        output bitwise.
        """
        stats = SweepStats()
        arr_cache, dep_cache = self._fresh_caches()
        arr_order = self._arrival_slots
        dep_order = self._departure_slots
        if self.shuffle:
            arr_order = self.rng.permutation(arr_order)
            dep_order = self.rng.permutation(dep_order)
        rng = self.rng
        state = self.state
        arrival = state.arrival
        departure = state.departure
        if self.batch_draws:
            # One generator call covers the whole sweep.  Every visited
            # move consumes its pair, skipped or not, which keeps the
            # draw-to-move alignment independent of the skip pattern.
            draws = rng.random(2 * (arr_order.size + dep_order.size))
            pos = 0
            for i in arr_order:
                u, v = draws[pos], draws[pos + 1]
                pos += 2
                dist = arrival_conditional_cached(arrival, departure, arr_cache, i)
                if dist is None:
                    stats.n_skipped += 1
                    continue
                state.set_arrival(arr_cache.events[i], dist.sample_uv(u, v, rng))
                stats.n_moves += 1
            for i in dep_order:
                u, v = draws[pos], draws[pos + 1]
                pos += 2
                dist = final_departure_conditional_cached(
                    arrival, departure, dep_cache, i
                )
                if dist is None:
                    stats.n_skipped += 1
                    continue
                departure[dep_cache.events[i]] = dist.sample_uv(u, v, rng)
                stats.n_moves += 1
            return stats
        for i in arr_order:
            dist = arrival_conditional_cached(arrival, departure, arr_cache, i)
            if dist is None:
                stats.n_skipped += 1
                continue
            state.set_arrival(arr_cache.events[i], dist.sample(rng))
            stats.n_moves += 1
        for i in dep_order:
            dist = final_departure_conditional_cached(arrival, departure, dep_cache, i)
            if dist is None:
                stats.n_skipped += 1
                continue
            departure[dep_cache.events[i]] = dist.sample(rng)
            stats.n_moves += 1
        return stats

    def run(self, n_sweeps: int) -> list[SweepStats]:
        """Run *n_sweeps* sweeps; returns per-sweep statistics."""
        return [self.sweep() for _ in range(n_sweeps)]

    # ------------------------------------------------------------------
    # Posterior sample collection.
    # ------------------------------------------------------------------

    def collect(
        self,
        n_samples: int,
        thin: int = 1,
        burn_in: int = 0,
    ) -> "PosteriorSamples":
        """Run the chain and collect per-queue summaries at each kept sweep.

        Parameters
        ----------
        n_samples:
            Number of retained samples.
        thin:
            Sweeps between retained samples.
        burn_in:
            Sweeps discarded before collection starts.
        """
        if n_samples < 1 or thin < 1 or burn_in < 0:
            raise InferenceError("need n_samples >= 1, thin >= 1, burn_in >= 0")
        if self._shard_engine is not None and self._shard_engine.pooled:
            raise InferenceError(
                "collect() reads whole-state summaries every retained "
                "sweep, which shard workers do not ship back; call "
                "finish_shards() first to collect in-process"
            )
        self.run(burn_in)
        n_queues = self.state.n_queues
        mean_service = np.empty((n_samples, n_queues))
        mean_waiting = np.empty((n_samples, n_queues))
        total_service = np.empty((n_samples, n_queues))
        log_joint = np.empty(n_samples)
        for i in range(n_samples):
            self.run(thin)
            mean_service[i] = self.state.mean_service_by_queue()
            mean_waiting[i] = self.state.mean_waiting_by_queue()
            total_service[i] = self.state.total_service_by_queue()
            log_joint[i] = self.state.log_joint(self._rates)
        return PosteriorSamples(
            mean_service=mean_service,
            mean_waiting=mean_waiting,
            total_service=total_service,
            log_joint=log_joint,
            events_per_queue=self.state.events_per_queue(),
        )


@dataclass
class PosteriorSamples:
    """Per-sweep posterior draws of queue-level summaries.

    Attributes
    ----------
    mean_service / mean_waiting:
        Arrays of shape ``(n_samples, n_queues)``: the realized per-queue
        mean service/waiting time of each retained latent-state sample.
    total_service:
        Per-queue summed service times (the M-step sufficient statistic).
    log_joint:
        Eq. (1) log-density of each retained sample.
    events_per_queue:
        Event counts (constant across samples; kept for convenience).
    """

    mean_service: np.ndarray
    mean_waiting: np.ndarray
    total_service: np.ndarray
    log_joint: np.ndarray
    events_per_queue: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def n_samples(self) -> int:
        """Number of retained posterior draws."""
        return self.mean_service.shape[0]

    @staticmethod
    def _nan_reduce(reducer, values: np.ndarray) -> np.ndarray:
        with _ignore_empty_slice_warnings():
            return reducer(values, axis=0)

    def posterior_mean_service(self) -> np.ndarray:
        """Posterior-mean of the per-queue mean service time."""
        return self._nan_reduce(np.nanmean, self.mean_service)

    def posterior_mean_waiting(self) -> np.ndarray:
        """Posterior-mean of the per-queue mean waiting time."""
        return self._nan_reduce(np.nanmean, self.mean_waiting)

    def posterior_std_service(self) -> np.ndarray:
        """Posterior standard deviation of the per-queue mean service time."""
        return self._nan_reduce(np.nanstd, self.mean_service)

    def posterior_std_waiting(self) -> np.ndarray:
        """Posterior standard deviation of the per-queue mean waiting time."""
        return self._nan_reduce(np.nanstd, self.mean_waiting)

    def credible_interval(
        self, kind: str = "waiting", level: float = 0.9
    ) -> tuple[np.ndarray, np.ndarray]:
        """Equal-tailed posterior credible interval per queue.

        Parameters
        ----------
        kind:
            ``"waiting"`` or ``"service"``.
        level:
            Central coverage, e.g. 0.9 for a 5%-95% interval.

        Returns
        -------
        (lower, upper)
            Arrays of shape ``(n_queues,)``; nan for queues with no events.
        """
        if kind not in ("waiting", "service"):
            raise InferenceError(f"kind must be 'waiting' or 'service', got {kind!r}")
        if not 0.0 < level < 1.0:
            raise InferenceError(f"level must lie in (0, 1), got {level}")
        values = self.mean_waiting if kind == "waiting" else self.mean_service
        alpha = (1.0 - level) / 2.0
        with _ignore_empty_slice_warnings():
            lower = np.nanquantile(values, alpha, axis=0)
            upper = np.nanquantile(values, 1.0 - alpha, axis=0)
        return lower, upper
