"""The Gibbs sampler over unobserved event times (paper Section 3).

A *sweep* resamples, one at a time, every latent scalar of the trace:

* the arrival ``a_e`` of every non-initial event whose arrival was not
  measured (which simultaneously moves ``d_pi(e)``, the same quantity), and
* the departure of every task-final event that was not measured.

Each move draws exactly from the local conditional (paper Eq. 2–4, built by
:mod:`repro.inference.conditional`), so the sweep is a systematic-scan
Gibbs kernel whose stationary distribution is the posterior
``p(E | O, mu)``.

The cost of a sweep is linear in the number of latent variables and
independent of the number of queues — the scaling property the paper calls
out in Section 5.2 and that ``benchmarks/bench_scaling.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InferenceError
from repro.events import EventSet
from repro.inference.conditional import arrival_conditional, final_departure_conditional
from repro.observation import ObservedTrace
from repro.rng import RandomState, as_generator


@dataclass
class SweepStats:
    """Bookkeeping for one Gibbs sweep."""

    n_moves: int = 0
    n_skipped: int = 0

    @property
    def n_attempted(self) -> int:
        """Total latent variables visited."""
        return self.n_moves + self.n_skipped


class GibbsSampler:
    """Systematic-scan Gibbs sampler for an M/M/1/FIFO queueing network.

    Parameters
    ----------
    trace:
        The observed (censored) trace; defines which variables are latent.
    state:
        A *feasible* event set whose observed entries match the trace and
        whose latent entries hold the current sample.  Produced by an
        initializer (:func:`~repro.inference.init_heuristic.heuristic_initialize`
        or :func:`~repro.inference.init_lp.lp_initialize`); mutated in place.
    rates:
        Exponential rate per queue (index 0 = arrival rate ``lambda``).
        Update via :meth:`set_rates` between sweeps for StEM.
    random_state:
        Seed or generator for all moves.
    shuffle:
        Visit latent variables in a fresh random order every sweep (default);
        with ``False`` the scan order is the event index order.
    """

    def __init__(
        self,
        trace: ObservedTrace,
        state: EventSet,
        rates: np.ndarray,
        random_state: RandomState = None,
        shuffle: bool = True,
    ) -> None:
        self.trace = trace
        self.state = state
        self._rates = np.asarray(rates, dtype=float).copy()
        if self._rates.shape != (state.n_queues,):
            raise InferenceError(
                f"expected {state.n_queues} rates, got shape {self._rates.shape}"
            )
        if np.any(~np.isfinite(self._rates)) or np.any(self._rates <= 0.0):
            raise InferenceError("all rates must be positive and finite")
        self.rng = as_generator(random_state)
        self.shuffle = shuffle
        self._arrival_moves = trace.latent_arrival_events.copy()
        self._departure_moves = trace.latent_departure_events.copy()
        if np.any(np.isnan(state.arrival)) or np.any(np.isnan(state.departure)):
            raise InferenceError(
                "the state still contains nan times; run an initializer first"
            )
        self.n_sweeps_done = 0

    # ------------------------------------------------------------------
    # Parameters.
    # ------------------------------------------------------------------

    @property
    def rates(self) -> np.ndarray:
        """Current rate vector (copy; use :meth:`set_rates` to change)."""
        return self._rates.copy()

    def set_rates(self, rates: np.ndarray) -> None:
        """Replace the rate vector (the StEM M-step hook)."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != self._rates.shape:
            raise InferenceError(f"rate vector shape changed: {rates.shape}")
        if np.any(~np.isfinite(rates)) or np.any(rates <= 0.0):
            raise InferenceError("all rates must be positive and finite")
        self._rates = rates.copy()

    @property
    def n_latent(self) -> int:
        """Number of latent scalars resampled per sweep."""
        return self._arrival_moves.size + self._departure_moves.size

    # ------------------------------------------------------------------
    # Sweeping.
    # ------------------------------------------------------------------

    def sweep(self) -> SweepStats:
        """Resample every latent variable once; returns move statistics."""
        stats = SweepStats()
        arrivals = self._arrival_moves
        departures = self._departure_moves
        if self.shuffle:
            arrivals = self.rng.permutation(arrivals)
            departures = self.rng.permutation(departures)
        state = self.state
        rates = self._rates
        for e in arrivals:
            dist = arrival_conditional(state, int(e), rates)
            if dist is None:
                stats.n_skipped += 1
                continue
            state.set_arrival(int(e), dist.sample(self.rng))
            stats.n_moves += 1
        for e in departures:
            dist = final_departure_conditional(state, int(e), rates)
            if dist is None:
                stats.n_skipped += 1
                continue
            state.set_final_departure(int(e), dist.sample(self.rng))
            stats.n_moves += 1
        self.n_sweeps_done += 1
        return stats

    def run(self, n_sweeps: int) -> list[SweepStats]:
        """Run *n_sweeps* sweeps; returns per-sweep statistics."""
        return [self.sweep() for _ in range(n_sweeps)]

    # ------------------------------------------------------------------
    # Posterior sample collection.
    # ------------------------------------------------------------------

    def collect(
        self,
        n_samples: int,
        thin: int = 1,
        burn_in: int = 0,
    ) -> "PosteriorSamples":
        """Run the chain and collect per-queue summaries at each kept sweep.

        Parameters
        ----------
        n_samples:
            Number of retained samples.
        thin:
            Sweeps between retained samples.
        burn_in:
            Sweeps discarded before collection starts.
        """
        if n_samples < 1 or thin < 1 or burn_in < 0:
            raise InferenceError("need n_samples >= 1, thin >= 1, burn_in >= 0")
        self.run(burn_in)
        n_queues = self.state.n_queues
        mean_service = np.empty((n_samples, n_queues))
        mean_waiting = np.empty((n_samples, n_queues))
        total_service = np.empty((n_samples, n_queues))
        log_joint = np.empty(n_samples)
        for i in range(n_samples):
            self.run(thin)
            mean_service[i] = self.state.mean_service_by_queue()
            mean_waiting[i] = self.state.mean_waiting_by_queue()
            total_service[i] = self.state.total_service_by_queue()
            log_joint[i] = self.state.log_joint(self._rates)
        return PosteriorSamples(
            mean_service=mean_service,
            mean_waiting=mean_waiting,
            total_service=total_service,
            log_joint=log_joint,
            events_per_queue=self.state.events_per_queue(),
        )


@dataclass
class PosteriorSamples:
    """Per-sweep posterior draws of queue-level summaries.

    Attributes
    ----------
    mean_service / mean_waiting:
        Arrays of shape ``(n_samples, n_queues)``: the realized per-queue
        mean service/waiting time of each retained latent-state sample.
    total_service:
        Per-queue summed service times (the M-step sufficient statistic).
    log_joint:
        Eq. (1) log-density of each retained sample.
    events_per_queue:
        Event counts (constant across samples; kept for convenience).
    """

    mean_service: np.ndarray
    mean_waiting: np.ndarray
    total_service: np.ndarray
    log_joint: np.ndarray
    events_per_queue: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def n_samples(self) -> int:
        """Number of retained posterior draws."""
        return self.mean_service.shape[0]

    @staticmethod
    def _nan_reduce(reducer, values: np.ndarray) -> np.ndarray:
        # Queues with no events produce all-nan columns (e.g. a server the
        # balancer never picked); nan is the intended answer there, so the
        # "mean of empty slice" warning is noise.
        with np.errstate(invalid="ignore"):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", category=RuntimeWarning)
                return reducer(values, axis=0)

    def posterior_mean_service(self) -> np.ndarray:
        """Posterior-mean of the per-queue mean service time."""
        return self._nan_reduce(np.nanmean, self.mean_service)

    def posterior_mean_waiting(self) -> np.ndarray:
        """Posterior-mean of the per-queue mean waiting time."""
        return self._nan_reduce(np.nanmean, self.mean_waiting)

    def posterior_std_service(self) -> np.ndarray:
        """Posterior standard deviation of the per-queue mean service time."""
        return self._nan_reduce(np.nanstd, self.mean_service)

    def posterior_std_waiting(self) -> np.ndarray:
        """Posterior standard deviation of the per-queue mean waiting time."""
        return self._nan_reduce(np.nanstd, self.mean_waiting)

    def credible_interval(
        self, kind: str = "waiting", level: float = 0.9
    ) -> tuple[np.ndarray, np.ndarray]:
        """Equal-tailed posterior credible interval per queue.

        Parameters
        ----------
        kind:
            ``"waiting"`` or ``"service"``.
        level:
            Central coverage, e.g. 0.9 for a 5%-95% interval.

        Returns
        -------
        (lower, upper)
            Arrays of shape ``(n_queues,)``; nan for queues with no events.
        """
        if kind not in ("waiting", "service"):
            raise InferenceError(f"kind must be 'waiting' or 'service', got {kind!r}")
        if not 0.0 < level < 1.0:
            raise InferenceError(f"level must lie in (0, 1), got {level}")
        values = self.mean_waiting if kind == "waiting" else self.mean_service
        alpha = (1.0 - level) / 2.0
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            lower = np.nanquantile(values, alpha, axis=0)
            upper = np.nanquantile(values, 1.0 - alpha, axis=0)
        return lower, upper
