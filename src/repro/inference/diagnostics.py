"""MCMC convergence diagnostics.

Deterministic dependencies are "known to impair the performance of Gibbs
samplers" (paper Section 3), so any credible use of this sampler needs
convergence checks.  We provide the standard trio — autocorrelation,
effective sample size, and the Geweke mean-equality z-score — operating on
scalar chains such as a queue's per-sweep mean waiting time, plus the
cross-chain pair that only a multi-chain run can compute:

* :func:`split_r_hat` — the split Gelman–Rubin potential-scale-reduction
  statistic.  Values near 1 mean the over-dispersed chains have mixed into
  the same distribution; values ``>~ 1.01`` flag non-convergence that no
  within-chain statistic can see.
* :func:`multichain_ess` — effective sample size pooled across chains from
  the combined within/between-chain autocorrelation estimate (the BDA3 /
  Stan estimator restricted to Geyer's initial positive sequence).

Both split each chain in half internally, so a single chain (``m = 1``)
still yields a valid (two-half) diagnostic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InferenceError


def autocorrelation(chain: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function via FFT.

    Parameters
    ----------
    chain:
        1-D scalar chain.
    max_lag:
        Largest lag returned (default ``len(chain) - 1``).

    Returns
    -------
    numpy.ndarray
        ``acf[k]`` for ``k = 0 .. max_lag``; ``acf[0] == 1``.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim != 1 or chain.size < 2:
        raise InferenceError("need a 1-D chain with at least two samples")
    n = chain.size
    if max_lag is None:
        max_lag = n - 1
    max_lag = min(max_lag, n - 1)
    centered = chain - chain.mean()
    var = float(np.dot(centered, centered))
    if var <= 0.0:
        # A constant chain is perfectly correlated at every lag.
        return np.ones(max_lag + 1)
    size = 1 << (2 * n - 1).bit_length()
    fft = np.fft.rfft(centered, size)
    acov = np.fft.irfft(fft * np.conj(fft), size)[: max_lag + 1]
    return np.real(acov) / var


def effective_sample_size(chain: np.ndarray) -> float:
    """ESS with Geyer's initial-positive-sequence truncation.

    Sums autocorrelations over pairs ``rho_{2k} + rho_{2k+1}`` while the
    pair sums stay positive, the standard conservative estimator for
    reversible chains.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim != 1 or chain.size < 4:
        raise InferenceError("need a 1-D chain with at least four samples")
    acf = autocorrelation(chain)
    n = chain.size
    tau = 1.0
    k = 1
    while k + 1 < acf.size:
        pair = acf[k] + acf[k + 1]
        if pair <= 0.0:
            break
        tau += 2.0 * pair
        k += 2
    return float(n / max(tau, 1.0))


def _split_chains(chains: np.ndarray) -> np.ndarray:
    """Validate an ``(m, n)`` chain stack and split each chain in half."""
    x = np.asarray(chains, dtype=float)
    if x.ndim == 1:
        x = x[None, :]
    if x.ndim != 2:
        raise InferenceError(f"need chains of shape (m, n), got {x.shape}")
    m, n = x.shape
    if n < 4:
        raise InferenceError(f"need at least 4 samples per chain, got {n}")
    half = n // 2
    # Drop the middle sample of odd-length chains so the halves align.
    return np.vstack([x[:, :half], x[:, n - half:]])


def split_r_hat(chains: np.ndarray) -> float:
    """Split Gelman–Rubin potential scale reduction factor.

    Parameters
    ----------
    chains:
        Array of shape ``(m, n)``: *m* chains of *n* aligned scalar draws
        (a 1-D array is treated as a single chain).  Each chain is split in
        half, so within-chain drift inflates the statistic even when the
        chains agree with each other.

    Returns
    -------
    float
        ``sqrt(var_plus / W)`` where ``W`` is the mean within-half variance
        and ``var_plus`` the pooled variance estimate; ``~1`` at
        convergence, ``inf`` when the halves do not overlap at all, and
        ``nan`` when any draw is non-finite (e.g. a queue with no events).
    """
    halves = _split_chains(chains)
    if not np.all(np.isfinite(halves)):
        return float("nan")
    n = halves.shape[1]
    within = halves.var(axis=1, ddof=1)
    means = halves.mean(axis=1)
    w = float(within.mean())
    b = n * float(means.var(ddof=1))
    var_plus = (n - 1) / n * w + b / n
    if var_plus <= 0.0:
        # All halves constant and equal: perfectly converged by fiat.
        return 1.0
    if w <= 0.0:
        return float("inf")
    return float(np.sqrt(var_plus / w))


def _autocovariance(chain: np.ndarray) -> np.ndarray:
    """Biased sample autocovariance ``c_t`` for ``t = 0 .. n-1`` via FFT."""
    n = chain.size
    centered = chain - chain.mean()
    size = 1 << (2 * n - 1).bit_length()
    fft = np.fft.rfft(centered, size)
    acov = np.fft.irfft(fft * np.conj(fft), size)[:n]
    return np.real(acov) / n


def multichain_ess(chains: np.ndarray) -> float:
    """Cross-chain effective sample size (BDA3 ``n_eff``).

    Combines between- and within-chain variance into the pooled lag
    autocorrelation ``rho_t = 1 - (W - mean_t c_t) / var_plus`` and sums it
    over Geyer's initial positive sequence.  For a single chain this
    reduces (up to the internal half-split) to the same estimate as
    :func:`effective_sample_size`; for *m* well-mixed chains it is ~*m*
    times larger.

    Returns ``nan`` when any draw is non-finite and ``m * n`` (the draw
    count) for constant chains.
    """
    halves = _split_chains(chains)
    if not np.all(np.isfinite(halves)):
        return float("nan")
    m, n = halves.shape
    total = float(m * n)
    within = halves.var(axis=1, ddof=1)
    means = halves.mean(axis=1)
    w = float(within.mean())
    b = n * float(means.var(ddof=1))
    var_plus = (n - 1) / n * w + b / n
    if var_plus <= 0.0:
        return total
    mean_acov = np.mean([_autocovariance(h) for h in halves], axis=0)
    rho = 1.0 - (w - mean_acov) / var_plus
    # Geyer initial positive sequence over pair sums rho_{2k} + rho_{2k+1}.
    tau = 0.0
    k = 0
    while k + 1 < rho.size:
        pair = rho[k] + rho[k + 1]
        if pair <= 0.0:
            break
        tau += 2.0 * pair
        k += 2
    tau = max(tau - 1.0, 1.0 / total)
    return float(min(total / tau, total))


def geweke_z(chain: np.ndarray, first: float = 0.1, last: float = 0.5) -> float:
    """Geweke convergence z-score between early and late chain segments.

    Compares the mean of the first ``first`` fraction with the last
    ``last`` fraction, standardized by spectral-density-at-zero estimates
    (approximated here by variance / ESS of each segment).  |z| above ~2
    suggests the chain has not converged.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim != 1 or chain.size < 20:
        raise InferenceError("need a 1-D chain with at least 20 samples")
    if not (0.0 < first < 1.0 and 0.0 < last < 1.0 and first + last <= 1.0):
        raise InferenceError("segment fractions must be in (0,1) with first+last <= 1")
    a = chain[: int(first * chain.size)]
    b = chain[-int(last * chain.size) :]
    var_a = a.var(ddof=1) / max(effective_sample_size(a), 1.0)
    var_b = b.var(ddof=1) / max(effective_sample_size(b), 1.0)
    denom = np.sqrt(var_a + var_b)
    if denom == 0.0:
        return 0.0
    return float((a.mean() - b.mean()) / denom)
