"""MCMC convergence diagnostics.

Deterministic dependencies are "known to impair the performance of Gibbs
samplers" (paper Section 3), so any credible use of this sampler needs
convergence checks.  We provide the standard trio — autocorrelation,
effective sample size, and the Geweke mean-equality z-score — operating on
scalar chains such as a queue's per-sweep mean waiting time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InferenceError


def autocorrelation(chain: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function via FFT.

    Parameters
    ----------
    chain:
        1-D scalar chain.
    max_lag:
        Largest lag returned (default ``len(chain) - 1``).

    Returns
    -------
    numpy.ndarray
        ``acf[k]`` for ``k = 0 .. max_lag``; ``acf[0] == 1``.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim != 1 or chain.size < 2:
        raise InferenceError("need a 1-D chain with at least two samples")
    n = chain.size
    if max_lag is None:
        max_lag = n - 1
    max_lag = min(max_lag, n - 1)
    centered = chain - chain.mean()
    var = float(np.dot(centered, centered))
    if var <= 0.0:
        # A constant chain is perfectly correlated at every lag.
        return np.ones(max_lag + 1)
    size = 1 << (2 * n - 1).bit_length()
    fft = np.fft.rfft(centered, size)
    acov = np.fft.irfft(fft * np.conj(fft), size)[: max_lag + 1]
    return np.real(acov) / var


def effective_sample_size(chain: np.ndarray) -> float:
    """ESS with Geyer's initial-positive-sequence truncation.

    Sums autocorrelations over pairs ``rho_{2k} + rho_{2k+1}`` while the
    pair sums stay positive, the standard conservative estimator for
    reversible chains.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim != 1 or chain.size < 4:
        raise InferenceError("need a 1-D chain with at least four samples")
    acf = autocorrelation(chain)
    n = chain.size
    tau = 1.0
    k = 1
    while k + 1 < acf.size:
        pair = acf[k] + acf[k + 1]
        if pair <= 0.0:
            break
        tau += 2.0 * pair
        k += 2
    return float(n / max(tau, 1.0))


def geweke_z(chain: np.ndarray, first: float = 0.1, last: float = 0.5) -> float:
    """Geweke convergence z-score between early and late chain segments.

    Compares the mean of the first ``first`` fraction with the last
    ``last`` fraction, standardized by spectral-density-at-zero estimates
    (approximated here by variance / ESS of each segment).  |z| above ~2
    suggests the chain has not converged.
    """
    chain = np.asarray(chain, dtype=float)
    if chain.ndim != 1 or chain.size < 20:
        raise InferenceError("need a 1-D chain with at least 20 samples")
    if not (0.0 < first < 1.0 and 0.0 < last < 1.0 and first + last <= 1.0):
        raise InferenceError("segment fractions must be in (0,1) with first+last <= 1")
    a = chain[: int(first * chain.size)]
    b = chain[-int(last * chain.size) :]
    var_a = a.var(ddof=1) / max(effective_sample_size(a), 1.0)
    var_b = b.var(ddof=1) / max(effective_sample_size(b), 1.0)
    denom = np.sqrt(var_a + var_b)
    if denom == 0.0:
        return 0.0
    return float((a.mean() - b.mean()) / denom)
