"""A single FIFO queueing station."""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributions import Exponential, ServiceDistribution
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QueueSpec:
    """Specification of one single-server FIFO queue.

    Parameters
    ----------
    name:
        Human-readable identifier ("db", "web-3", ...); must be unique
        within a network.
    service:
        The service-time distribution.  The paper's inference assumes
        :class:`~repro.distributions.Exponential`; the simulator accepts any
        :class:`~repro.distributions.ServiceDistribution`.
    """

    name: str
    service: ServiceDistribution

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("queue name must be non-empty")
        if not isinstance(self.service, ServiceDistribution):
            raise ConfigurationError(
                f"service must be a ServiceDistribution, got {type(self.service).__name__}"
            )

    @property
    def is_markovian(self) -> bool:
        """Whether this queue satisfies the M/M/1 service assumption."""
        return isinstance(self.service, Exponential)

    @property
    def rate(self) -> float:
        """Service rate if exponential, else raise.

        Inference code paths require exponential service; accessing ``rate``
        on a non-Markovian queue is a programming error surfaced eagerly.
        """
        if not isinstance(self.service, Exponential):
            raise ConfigurationError(
                f"queue {self.name!r} has non-exponential service "
                f"({type(self.service).__name__}); no scalar rate exists"
            )
        return self.service.rate

    @property
    def mean_service(self) -> float:
        """Mean service time of this queue."""
        return self.service.mean

    def with_service(self, service: ServiceDistribution) -> "QueueSpec":
        """Return a copy of this spec with a different service distribution."""
        return QueueSpec(name=self.name, service=service)
