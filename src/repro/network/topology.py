"""The queueing network: queues + routing FSM + arrival process."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.distributions import Exponential, ServiceDistribution
from repro.errors import ConfigurationError
from repro.fsm import ProbabilisticFSM
from repro.rng import RandomState

#: Name of the reserved initial queue whose "service" times are the system
#: interarrival times (paper Section 2, last paragraph).
INITIAL_QUEUE_NAME = "__arrivals__"


@dataclass(frozen=True)
class QueueingNetwork:
    """A network of single-server FIFO queues routed by a probabilistic FSM.

    The network follows the paper's convention that system arrivals are
    represented by a designated initial queue at index 0: all tasks "arrive"
    there at time 0, are served FIFO, and their departure times from queue 0
    are the system entry times.  Hence the interarrival distribution is
    simply queue 0's service distribution (rate ``lambda`` for a Poisson
    arrival stream).

    Parameters
    ----------
    queue_names:
        Names of all queues; index 0 must be the initial queue.
    services:
        Mapping from queue name to its service distribution.  The entry for
        the initial queue is the interarrival distribution.
    fsm:
        Routing FSM over these queues (emission width must equal the number
        of queues).
    """

    queue_names: tuple[str, ...]
    services: Mapping[str, ServiceDistribution]
    fsm: ProbabilisticFSM

    def __post_init__(self) -> None:
        names = tuple(self.queue_names)
        if len(names) < 2:
            raise ConfigurationError("a network needs the initial queue plus at least one queue")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"queue names must be unique, got {names}")
        if names[0] != INITIAL_QUEUE_NAME:
            raise ConfigurationError(
                f"queue 0 must be named {INITIAL_QUEUE_NAME!r} (the reserved arrival queue); "
                f"got {names[0]!r}"
            )
        missing = [n for n in names if n not in self.services]
        if missing:
            raise ConfigurationError(f"missing service distributions for queues: {missing}")
        extra = [n for n in self.services if n not in names]
        if extra:
            raise ConfigurationError(f"service distributions for unknown queues: {extra}")
        for name, dist in self.services.items():
            if not isinstance(dist, ServiceDistribution):
                raise ConfigurationError(
                    f"service for queue {name!r} must be a ServiceDistribution, "
                    f"got {type(dist).__name__}"
                )
        if self.fsm.n_queues != len(names):
            raise ConfigurationError(
                f"FSM emits over {self.fsm.n_queues} queues but the network has {len(names)}"
            )
        object.__setattr__(self, "queue_names", names)
        object.__setattr__(self, "services", dict(self.services))

    # ------------------------------------------------------------------
    # Lookups.
    # ------------------------------------------------------------------

    @property
    def n_queues(self) -> int:
        """Total queue count including the initial queue."""
        return len(self.queue_names)

    def queue_index(self, name: str) -> int:
        """Index of the queue called *name*."""
        try:
            return self.queue_names.index(name)
        except ValueError:
            raise ConfigurationError(f"no queue named {name!r} in this network") from None

    def service_of(self, queue: int | str) -> ServiceDistribution:
        """Service distribution of a queue, by index or name."""
        name = queue if isinstance(queue, str) else self.queue_names[queue]
        return self.services[name]

    @property
    def interarrival(self) -> ServiceDistribution:
        """The system interarrival distribution (= initial queue's service)."""
        return self.services[INITIAL_QUEUE_NAME]

    @property
    def arrival_rate(self) -> float:
        """System arrival rate ``lambda`` (requires exponential interarrivals)."""
        dist = self.interarrival
        if not isinstance(dist, Exponential):
            raise ConfigurationError(
                "arrival_rate is only defined for Poisson arrivals "
                f"(exponential interarrivals), got {type(dist).__name__}"
            )
        return dist.rate

    def is_markovian(self) -> bool:
        """True when every queue (and the arrival stream) is exponential."""
        return all(isinstance(d, Exponential) for d in self.services.values())

    def rates_vector(self) -> np.ndarray:
        """Array of exponential rates indexed by queue (index 0 = lambda).

        This is the parameter vector the paper's StEM estimates.  Raises if
        any queue is non-exponential.
        """
        rates = np.empty(self.n_queues)
        for i, name in enumerate(self.queue_names):
            dist = self.services[name]
            if not isinstance(dist, Exponential):
                raise ConfigurationError(
                    f"queue {name!r} is not exponential; no rates vector exists"
                )
            rates[i] = dist.rate
        return rates

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------

    def per_queue_arrival_rates(self) -> np.ndarray:
        """Long-run arrival rate into each queue, ``lambda * E[visits_q]``.

        Uses the FSM's expected visit counts; exact for any absorbing FSM.
        Entry 0 reports the system arrival rate itself.
        """
        visits = self.fsm.expected_visits()
        lam = self.arrival_rate
        rates = lam * visits
        rates[0] = lam
        return rates

    def utilizations(self) -> np.ndarray:
        """Offered load ``rho_q = lambda_q / mu_q`` per queue (index 0 = nan).

        Values >= 1 indicate queues with no steady state; the paper's
        synthetic experiment deliberately includes such overloaded tiers.
        """
        rates = self.per_queue_arrival_rates()
        rho = np.full(self.n_queues, np.nan)
        for i, name in enumerate(self.queue_names):
            if i == 0:
                continue
            dist = self.services[name]
            rho[i] = rates[i] * dist.mean
        return rho

    # ------------------------------------------------------------------
    # Functional updates.
    # ------------------------------------------------------------------

    def with_rates(self, rates: Sequence[float]) -> "QueueingNetwork":
        """Replace all exponential rates (index 0 = arrival rate).

        This is how EM iterations produce the updated network: same
        topology, new parameter vector.
        """
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self.n_queues,):
            raise ConfigurationError(
                f"expected {self.n_queues} rates, got shape {rates.shape}"
            )
        services = {
            name: Exponential(rate=float(rates[i]))
            for i, name in enumerate(self.queue_names)
        }
        return replace(self, services=services)

    def sample_path(self, random_state: RandomState = None):
        """Sample one task path from the routing FSM."""
        return self.fsm.sample_path(random_state)

    def describe(self) -> str:
        """Human-readable multi-line summary of the topology (Figure 1 aid)."""
        lines = [f"QueueingNetwork with {self.n_queues - 1} queues (+ arrival queue)"]
        try:
            rho = self.utilizations()
        except ConfigurationError:
            rho = np.full(self.n_queues, np.nan)
        for i, name in enumerate(self.queue_names):
            dist = self.services[name]
            kind = type(dist).__name__
            if i == 0:
                lines.append(
                    f"  [0] {name}: interarrival {kind} (mean {dist.mean:.4g})"
                )
            else:
                util = f", rho={rho[i]:.3f}" if np.isfinite(rho[i]) else ""
                lines.append(
                    f"  [{i}] {name}: service {kind} (mean {dist.mean:.4g}{util})"
                )
        return "\n".join(lines)
