"""Queueing-network topologies (paper Figure 1).

A :class:`~repro.network.topology.QueueingNetwork` bundles the set of queues
(each a single-server FIFO station with a service distribution), the routing
FSM, and the system arrival process (represented, per the paper's
convention, as the "service" distribution of the reserved initial queue
``q0`` at index 0).
"""

from repro.network.queue import QueueSpec
from repro.network.topology import QueueingNetwork
from repro.network.builders import (
    build_load_balanced_network,
    build_tandem_network,
    build_three_tier_network,
    paper_synthetic_structures,
)

__all__ = [
    "QueueSpec",
    "QueueingNetwork",
    "build_tandem_network",
    "build_three_tier_network",
    "build_load_balanced_network",
    "paper_synthetic_structures",
]
