"""Network builders for the paper's experimental topologies."""

from __future__ import annotations

from typing import Sequence

from repro.distributions import Exponential, ServiceDistribution
from repro.errors import ConfigurationError
from repro.fsm import chain_fsm, load_balanced_fsm, tiered_fsm
from repro.network.queue import QueueSpec
from repro.network.topology import INITIAL_QUEUE_NAME, QueueingNetwork


def build_tandem_network(
    arrival_rate: float,
    service_rates: Sequence[float],
    names: Sequence[str] | None = None,
) -> QueueingNetwork:
    """A tandem (series) network: every task visits queue 1, 2, ..., K in order.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_rates:
        Exponential service rate of each station, in visiting order.
    names:
        Optional station names; defaults to ``q1 .. qK``.
    """
    service_rates = list(service_rates)
    if not service_rates:
        raise ConfigurationError("a tandem network needs at least one station")
    if names is None:
        names = [f"q{i + 1}" for i in range(len(service_rates))]
    names = list(names)
    if len(names) != len(service_rates):
        raise ConfigurationError("names and service_rates must have equal length")
    n_queues = len(service_rates) + 1
    fsm = chain_fsm(list(range(1, n_queues)), n_queues)
    services: dict[str, ServiceDistribution] = {
        INITIAL_QUEUE_NAME: Exponential(rate=arrival_rate)
    }
    for name, rate in zip(names, service_rates):
        services[name] = Exponential(rate=rate)
    return QueueingNetwork(
        queue_names=tuple([INITIAL_QUEUE_NAME, *names]), services=services, fsm=fsm
    )


def build_three_tier_network(
    arrival_rate: float,
    servers_per_tier: Sequence[int],
    service_rate: float = 5.0,
    tier_names: Sequence[str] = ("web", "app", "db"),
) -> QueueingNetwork:
    """The paper's synthetic three-tier topology (Section 5.1, Figure 1).

    Each tier holds ``servers_per_tier[t]`` replicated single-server queues;
    a task is dispatched uniformly to one server per tier.  The paper sets
    ``arrival_rate = 10`` and every ``service_rate = 5`` so a 1-server tier
    is heavily overloaded (offered load 2.0), a 2-server tier barely
    overloaded (1.0), and a 4-server tier moderately loaded (0.5).
    """
    servers_per_tier = [int(k) for k in servers_per_tier]
    if len(servers_per_tier) != len(tier_names):
        raise ConfigurationError("servers_per_tier and tier_names must have equal length")
    if any(k < 1 for k in servers_per_tier):
        raise ConfigurationError("every tier needs at least one server")
    names = [INITIAL_QUEUE_NAME]
    tiers: list[list[int]] = []
    for tier_name, k in zip(tier_names, servers_per_tier):
        tier_queues = []
        for j in range(k):
            tier_queues.append(len(names))
            names.append(f"{tier_name}-{j}" if k > 1 else tier_name)
        tiers.append(tier_queues)
    fsm = tiered_fsm(tiers, n_queues=len(names))
    services: dict[str, ServiceDistribution] = {
        INITIAL_QUEUE_NAME: Exponential(rate=arrival_rate)
    }
    for name in names[1:]:
        services[name] = Exponential(rate=service_rate)
    return QueueingNetwork(queue_names=tuple(names), services=services, fsm=fsm)


def paper_synthetic_structures() -> list[tuple[str, tuple[int, int, int]]]:
    """The five three-tier structures of the synthetic experiment.

    The paper generates data "from five different network structures, with
    differing numbers of queues at each tier, in order to vary the system
    bottleneck" but does not enumerate them.  We use five distinct
    arrangements of {1, 2, 4} servers so that the heavily-overloaded tier
    (1 server), the barely-overloaded tier (2 servers), and the moderately
    loaded tier (4 servers) each appear in different positions.
    """
    return [
        ("S1", (1, 2, 4)),
        ("S2", (1, 4, 2)),
        ("S3", (2, 1, 4)),
        ("S4", (4, 1, 2)),
        ("S5", (4, 2, 1)),
    ]


def build_load_balanced_network(
    arrival_rate: float,
    server_rates: Sequence[float],
    weights: Sequence[float] | None = None,
    pre: Sequence[tuple[str, float]] = (),
    post: Sequence[tuple[str, float]] = (),
    server_prefix: str = "server",
) -> QueueingNetwork:
    """Pre-stations -> weighted choice of server -> post-stations.

    Generalizes the web-application topology: *pre* and *post* are
    ``(name, rate)`` stations every task visits before/after the balanced
    server tier.  Station names may repeat between pre and post to model
    revisits (e.g. the network queue on both request and response legs);
    repeated names share one queue.
    """
    server_rates = list(server_rates)
    if not server_rates:
        raise ConfigurationError("need at least one balanced server")
    names = [INITIAL_QUEUE_NAME]
    services: dict[str, ServiceDistribution] = {
        INITIAL_QUEUE_NAME: Exponential(rate=arrival_rate)
    }

    def intern(name: str, rate: float) -> int:
        if name in names:
            idx = names.index(name)
            existing = services[name]
            if not isinstance(existing, Exponential) or existing.rate != rate:
                raise ConfigurationError(
                    f"station {name!r} redefined with a different rate"
                )
            return idx
        names.append(name)
        services[name] = Exponential(rate=rate)
        return len(names) - 1

    pre_idx = [intern(name, rate) for name, rate in pre]
    server_idx = [
        intern(f"{server_prefix}-{j}", rate) for j, rate in enumerate(server_rates)
    ]
    post_idx = [intern(name, rate) for name, rate in post]
    fsm = load_balanced_fsm(
        server_queues=server_idx,
        n_queues=len(names),
        weights=list(weights) if weights is not None else None,
        pre_queues=pre_idx,
        post_queues=post_idx,
    )
    return QueueingNetwork(queue_names=tuple(names), services=services, fsm=fsm)
