"""Bottleneck ranking and intrinsic-vs-load diagnosis."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.events import EventSet
from repro.inference.posterior import PosteriorSummary

#: Waiting must exceed service by this factor to call a queue "overloaded";
#: below 1/factor we call it "intrinsic"; in between, "mixed".
_DOMINANCE_FACTOR = 2.0


@dataclass(frozen=True)
class QueueDiagnosis:
    """Diagnosis of one queue.

    Attributes
    ----------
    queue:
        Queue index.
    name:
        Queue name, when the caller supplied names.
    service / waiting:
        Estimated mean service and waiting times.
    sojourn:
        ``service + waiting`` — this queue's per-visit latency contribution.
    verdict:
        ``"overloaded"`` (waiting-dominated), ``"intrinsic"``
        (service-dominated), or ``"mixed"``.
    """

    queue: int
    name: str
    service: float
    waiting: float
    verdict: str

    @property
    def sojourn(self) -> float:
        """Per-visit latency contribution of this queue."""
        return self.service + self.waiting


def diagnose(
    summary: PosteriorSummary,
    queue_names: tuple[str, ...] | None = None,
) -> list[QueueDiagnosis]:
    """Classify every real queue as overloaded / intrinsic / mixed.

    Parameters
    ----------
    summary:
        Posterior service/waiting estimates (from
        :func:`~repro.inference.estimate_posterior`).
    queue_names:
        Optional names (index 0 = the arrival queue, ignored).
    """
    n_queues = summary.n_queues
    if queue_names is not None and len(queue_names) != n_queues:
        raise ConfigurationError(
            f"got {len(queue_names)} names for {n_queues} queues"
        )
    out = []
    for q in range(1, n_queues):
        service = float(summary.service_mean[q])
        waiting = float(summary.waiting_mean[q])
        if not np.isfinite(service):
            verdict = "no-data"
            service = float("nan")
            waiting = float("nan")
        elif waiting > _DOMINANCE_FACTOR * service:
            verdict = "overloaded"
        elif service > _DOMINANCE_FACTOR * waiting:
            verdict = "intrinsic"
        else:
            verdict = "mixed"
        name = queue_names[q] if queue_names is not None else f"queue-{q}"
        out.append(
            QueueDiagnosis(queue=q, name=name, service=service, waiting=waiting, verdict=verdict)
        )
    return out


def rank_bottlenecks(
    summary: PosteriorSummary,
    queue_names: tuple[str, ...] | None = None,
) -> list[QueueDiagnosis]:
    """Queues sorted by per-visit latency contribution, worst first."""
    diagnoses = diagnose(summary, queue_names)
    return sorted(
        diagnoses,
        key=lambda d: d.sojourn if np.isfinite(d.sojourn) else -1.0,
        reverse=True,
    )


def slow_request_profile(
    events: EventSet, percentile: float = 99.0
) -> dict[str, np.ndarray]:
    """Where do the slowest requests spend their time? (Paper Section 1.)

    Selects the tasks whose end-to-end response exceeds the given
    percentile and decomposes their latency per queue, alongside the same
    decomposition for all tasks — "the bottleneck for slow requests could
    be very different than the bottleneck for average requests".

    Returns
    -------
    dict
        ``slow_waiting``/``slow_service``: per-queue mean over slow tasks'
        events; ``all_waiting``/``all_service``: over everything;
        ``slow_tasks``: the selected task ids.
    """
    if not 0.0 < percentile < 100.0:
        raise ConfigurationError(f"percentile must be in (0, 100), got {percentile}")
    responses = events.task_response_times()
    task_ids = np.array(sorted(responses))
    values = np.array([responses[t] for t in task_ids])
    threshold = np.percentile(values, percentile)
    slow_tasks = task_ids[values >= threshold]
    slow_mask = np.zeros(events.n_events, dtype=bool)
    for t in slow_tasks:
        slow_mask[events.events_of_task(int(t))] = True
    waits = events.waiting_times()
    services = events.service_times()
    n_queues = events.n_queues
    slow_waiting = np.full(n_queues, np.nan)
    slow_service = np.full(n_queues, np.nan)
    for q in range(1, n_queues):
        members = events.queue_order(q)
        chosen = members[slow_mask[members]]
        if chosen.size:
            slow_waiting[q] = float(waits[chosen].mean())
            slow_service[q] = float(services[chosen].mean())
    return {
        "slow_tasks": slow_tasks,
        "slow_waiting": slow_waiting,
        "slow_service": slow_service,
        "all_waiting": events.mean_waiting_by_queue(),
        "all_service": events.mean_service_by_queue(),
    }
