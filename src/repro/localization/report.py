"""Plain-text diagnosis reports."""

from __future__ import annotations

from repro.localization.bottleneck import QueueDiagnosis


def render_report(diagnoses: list[QueueDiagnosis], top: int | None = None) -> str:
    """Render a ranked bottleneck table as fixed-width text.

    Parameters
    ----------
    diagnoses:
        Output of :func:`~repro.localization.bottleneck.rank_bottlenecks`
        (order is preserved).
    top:
        Limit to the worst *top* queues (default: all).
    """
    rows = diagnoses if top is None else diagnoses[:top]
    name_width = max([len(d.name) for d in rows] + [len("queue")])
    header = (
        f"{'rank':>4}  {'queue':<{name_width}}  {'service':>10}  "
        f"{'waiting':>10}  {'sojourn':>10}  verdict"
    )
    lines = [header, "-" * len(header)]
    for rank, d in enumerate(rows, start=1):
        lines.append(
            f"{rank:>4}  {d.name:<{name_width}}  {d.service:>10.4f}  "
            f"{d.waiting:>10.4f}  {d.sojourn:>10.4f}  {d.verdict}"
        )
    return "\n".join(lines)
