"""Performance-fault localization (the paper's motivating application).

Sections 1 and 5 frame the inference machinery as a diagnosis tool:
estimate each queue's service time (intrinsic speed) and waiting time
(load-induced delay) from a thin trace sample, then

* rank queues by their contribution to response time to find the
  **bottleneck**, and
* compare service vs waiting to decide whether a slow component is
  *intrinsically* slow (service dominates — e.g. a failing disk) or simply
  *overloaded* (waiting dominates — fix by adding capacity, not by fixing
  the component).

This package turns :class:`~repro.inference.PosteriorSummary` estimates
into that diagnosis, including the paper's "slow requests" analysis
(which components receive the most load during the worst-p% requests).
"""

from repro.localization.bottleneck import (
    QueueDiagnosis,
    diagnose,
    rank_bottlenecks,
    slow_request_profile,
)
from repro.localization.report import render_report

__all__ = [
    "QueueDiagnosis",
    "diagnose",
    "rank_bottlenecks",
    "slow_request_profile",
    "render_report",
]
