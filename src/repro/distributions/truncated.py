"""Truncated exponential sampling — the ``TrExp`` of paper Eq. (4).

The Gibbs conditional's middle piece is, in general, an exponential density
restricted to a bounded interval.  The paper writes ``TrExp(mu; N)`` for the
exponential with rate ``mu`` truncated to ``(0, N)``.  Sampling it by
rejection would be arbitrarily slow for small ``mu * N``; we instead invert
the CDF in a numerically careful way (``expm1``/``log1p``) so the sampler is
exact for any rate, including rates so small the density is almost uniform
and rates so large the mass hugs zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator

#: Below this value of ``rate * width`` the truncated exponential is treated
#: as uniform; the relative error of this approximation is O(rate * width).
_NEARLY_UNIFORM = 1e-12


def sample_truncated_exponential(
    rate: float,
    width: float,
    random_state: RandomState = None,
    size: int | None = None,
):
    """Sample from Exp(rate) truncated to the interval ``(0, width)``.

    Implements the inverse-CDF transform

        x = -log(1 - u * (1 - exp(-rate * width))) / rate,   u ~ Unif(0, 1)

    using ``expm1``/``log1p`` to stay accurate when ``rate * width`` is tiny
    (density nearly uniform) or huge (mass concentrated near zero).

    Parameters
    ----------
    rate:
        Exponential rate; must be positive.  Callers with a *negative*
        effective rate (density increasing toward the right endpoint) should
        sample ``width - sample_truncated_exponential(|rate|, width)``, which
        is exactly how paper Eq. (4)'s ``delta_mu < 0`` branch is defined.
    width:
        Length of the truncation interval; must be positive and finite.
    random_state:
        Seed or generator.
    size:
        If ``None`` return a scalar float; otherwise an array of that length.

    Returns
    -------
    float or numpy.ndarray
        Draw(s) in the open interval ``(0, width)``.
    """
    if not (rate > 0.0 and np.isfinite(rate)):
        raise ValueError(f"rate must be positive and finite, got {rate}")
    if not (width > 0.0 and np.isfinite(width)):
        raise ValueError(f"width must be positive and finite, got {width}")
    rng = as_generator(random_state)
    n = 1 if size is None else size
    u = rng.uniform(size=n)
    if rate * width < _NEARLY_UNIFORM:
        x = u * width
    else:
        # 1 - exp(-rate*width) computed stably, then inverted.
        mass = -np.expm1(-rate * width)
        x = -np.log1p(-u * mass) / rate
    # Guard against u == 0/1 edge effects putting us exactly on a boundary.
    x = np.clip(x, np.nextafter(0.0, 1.0), np.nextafter(width, 0.0))
    return float(x[0]) if size is None else x


@dataclass(frozen=True)
class TruncatedExponential(ServiceDistribution):
    """Exponential with rate ``rate`` truncated to ``(0, width)``.

    Provided both as a reusable distribution object (the Gibbs sampler uses
    the functional form above on its hot path) and for testing the sampler
    against closed-form moments.
    """

    rate: float
    width: float

    def __post_init__(self) -> None:
        if not (self.rate > 0.0 and np.isfinite(self.rate)):
            raise ValueError(f"rate must be positive and finite, got {self.rate}")
        if not (self.width > 0.0 and np.isfinite(self.width)):
            raise ValueError(f"width must be positive and finite, got {self.width}")

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        return sample_truncated_exponential(self.rate, self.width, random_state, size=size)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        ok = (x >= 0.0) & (x <= self.width)
        log_mass = np.log(-np.expm1(-self.rate * self.width))
        out[ok] = np.log(self.rate) - self.rate * x[ok] - log_mass
        return out

    @property
    def mean(self) -> float:
        # E[X] = 1/rate - width * exp(-rate*width) / (1 - exp(-rate*width))
        rw = self.rate * self.width
        if rw < 1e-8:
            # Nearly uniform: mean -> width/2 with O(rw) correction.
            return self.width / 2.0 * (1.0 - rw / 6.0)
        mass = -np.expm1(-rw)
        return 1.0 / self.rate - self.width * np.exp(-rw) / mass

    @property
    def variance(self) -> float:
        # Var = E[X^2] - mean^2 with
        # E[X^2] = 2/rate^2 - (width^2 + 2*width/rate) * exp(-rw) / mass.
        rw = self.rate * self.width
        if rw < 1e-6:
            return self.width * self.width / 12.0
        mass = -np.expm1(-rw)
        ex2 = 2.0 / self.rate**2 - (
            (self.width**2 + 2.0 * self.width / self.rate) * np.exp(-rw) / mass
        )
        return float(ex2 - self.mean**2)

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "TruncatedExponential":
        """Fit by profiling: width = max sample, rate by 1-D MLE search."""
        arr = cls._validate_samples(samples)
        width = float(arr.max()) * (1.0 + 1e-9) + 1e-300
        mean = float(arr.mean())
        # Newton iterations on d/d(rate) log-likelihood; start from the
        # untruncated MLE.
        rate = max(1.0 / mean, 1e-12) if mean > 0 else 1.0
        for _ in range(50):
            rw = rate * width
            mass = -np.expm1(-rw)
            e = np.exp(-rw)
            g = arr.size * (1.0 / rate - width * e / mass) - arr.sum()
            h = arr.size * (-1.0 / rate**2 + (width**2) * e / mass**2)
            if h == 0.0:
                break
            step = g / h
            new_rate = rate - step
            if new_rate <= 0:
                new_rate = rate / 2.0
            if abs(new_rate - rate) < 1e-12 * max(1.0, rate):
                rate = new_rate
                break
            rate = new_rate
        return cls(rate=float(rate), width=width)
