"""Service-time and interarrival-time distributions.

The paper's inference algorithms are derived for exponential (M/M/1) service,
but its modeling framework — and our discrete-event simulator — accept any
nonnegative distribution.  This subpackage provides:

* :class:`~repro.distributions.base.ServiceDistribution` — the interface
  every distribution implements (sampling, log-density, mean, MLE fitting);
* the exponential family member used throughout the paper
  (:class:`~repro.distributions.exponential.Exponential`);
* the truncated exponential required by the Gibbs sampler's Eq. (4)
  (:class:`~repro.distributions.truncated.TruncatedExponential`);
* a toolbox of alternatives (Erlang, hyper-exponential, gamma, log-normal,
  deterministic, uniform, empirical) exercising the "more general service
  distributions" direction the paper names as future work.
"""

from repro.distributions.base import ServiceDistribution
from repro.distributions.deterministic import Deterministic
from repro.distributions.empirical import Empirical
from repro.distributions.erlang import Erlang
from repro.distributions.exponential import Exponential
from repro.distributions.gamma_dist import Gamma
from repro.distributions.hyperexp import HyperExponential
from repro.distributions.lognormal import LogNormal
from repro.distributions.truncated import TruncatedExponential, sample_truncated_exponential
from repro.distributions.uniform_dist import UniformService

__all__ = [
    "ServiceDistribution",
    "Exponential",
    "TruncatedExponential",
    "sample_truncated_exponential",
    "Erlang",
    "HyperExponential",
    "Gamma",
    "LogNormal",
    "Deterministic",
    "UniformService",
    "Empirical",
]
