"""Empirical (resampling) service distribution.

Wraps a measured sample of service times and serves bootstrap draws from it.
This is the bridge to trace-driven simulation: feed measured service times
from a production system into the simulator without committing to a
parametric family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator


@dataclass(frozen=True)
class Empirical(ServiceDistribution):
    """Resamples uniformly (with replacement) from stored observations."""

    observations: tuple[float, ...]
    _arr: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.observations, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("empirical distribution needs a non-empty 1-D sample")
        if np.any(arr < 0.0) or not np.all(np.isfinite(arr)):
            raise ValueError("observations must be finite and nonnegative")
        object.__setattr__(self, "observations", tuple(float(v) for v in arr))
        object.__setattr__(self, "_arr", arr)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        return rng.choice(self._arr, size=size, replace=True)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        """Log of the discrete pmf: mass 1/n on each stored observation.

        The empirical measure is atomic, so this is only meaningful for
        values that exactly match an observation; everything else is -inf.
        """
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        uniques, counts = np.unique(self._arr, return_counts=True)
        idx = np.searchsorted(uniques, x)
        idx = np.clip(idx, 0, uniques.size - 1)
        hit = np.isclose(uniques[idx], x)
        out[hit] = np.log(counts[idx][hit] / self._arr.size)
        return out

    def quantile(self, p: float) -> float:
        """Empirical quantile (linear interpolation)."""
        return float(np.quantile(self._arr, p))

    @property
    def mean(self) -> float:
        return float(self._arr.mean())

    @property
    def variance(self) -> float:
        return float(self._arr.var())

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "Empirical":
        arr = cls._validate_samples(samples)
        return cls(observations=tuple(arr))
