"""The exponential distribution — the "M" in M/M/1.

Everything in the paper's inference machinery (Eq. 1–4) is derived for
exponential service with rate ``mu``, so this class is the workhorse of the
whole library: the simulator draws service times from it, the M-step fits it,
and the Gibbs conditional is a piecewise composition of its densities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator


@dataclass(frozen=True)
class Exponential(ServiceDistribution):
    """Exponential distribution with rate ``rate`` (mean ``1 / rate``).

    Parameters
    ----------
    rate:
        The rate parameter ``mu > 0``; for a queue this is the service rate
        (requests per unit time), for the initial queue ``q0`` it is the
        system arrival rate ``lambda``.
    """

    rate: float

    def __post_init__(self) -> None:
        if not (self.rate > 0.0 and np.isfinite(self.rate)):
            raise ValueError(f"exponential rate must be positive and finite, got {self.rate}")

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        return rng.exponential(scale=1.0 / self.rate, size=size)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        ok = x >= 0.0
        out[ok] = np.log(self.rate) - self.rate * x[ok]
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """``P(X <= x) = 1 - exp(-rate * x)`` for ``x >= 0``."""
        x = np.asarray(x, dtype=float)
        return np.where(x < 0.0, 0.0, -np.expm1(-self.rate * x))

    def quantile(self, p: np.ndarray) -> np.ndarray:
        """Inverse CDF: ``-log(1 - p) / rate``."""
        p = np.asarray(p, dtype=float)
        if np.any((p < 0.0) | (p > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return -np.log1p(-p) / self.rate

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "Exponential":
        """MLE: ``rate = n / sum(samples)``.

        This is exactly the paper's M-step estimator for each queue's service
        rate (and for the arrival rate via the initial queue's "services").
        """
        arr = cls._validate_samples(samples)
        total = float(arr.sum())
        if total <= 0.0:
            raise ValueError("cannot fit an exponential to all-zero samples")
        return cls(rate=arr.size / total)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Construct from a mean service time instead of a rate."""
        if not (mean > 0.0 and np.isfinite(mean)):
            raise ValueError(f"mean must be positive and finite, got {mean}")
        return cls(rate=1.0 / mean)
