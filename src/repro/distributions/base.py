"""Abstract interface for nonnegative service-time distributions."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.rng import RandomState, as_generator


class ServiceDistribution(abc.ABC):
    """A distribution over nonnegative service (or interarrival) times.

    Implementations must be immutable: parameter updates (e.g. during EM)
    create new instances via :meth:`fit`, never mutate existing ones.  This
    keeps samplers and simulators free of aliasing bugs.
    """

    @abc.abstractmethod
    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        """Draw *size* i.i.d. service times as a float array of shape ``(size,)``."""

    @abc.abstractmethod
    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        """Elementwise log-density; ``-inf`` outside the support."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected service time."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Service-time variance."""

    @classmethod
    @abc.abstractmethod
    def fit(cls, samples: Sequence[float]) -> "ServiceDistribution":
        """Maximum-likelihood fit to the given nonnegative samples."""

    # ------------------------------------------------------------------
    # Conveniences shared by all implementations.
    # ------------------------------------------------------------------

    def sample_one(self, random_state: RandomState = None) -> float:
        """Draw a single service time as a Python float."""
        return float(self.sample(1, as_generator(random_state))[0])

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Elementwise density (exponentiated :meth:`log_pdf`)."""
        return np.exp(self.log_pdf(x))

    def log_likelihood(self, samples: Sequence[float]) -> float:
        """Total log-likelihood of *samples* under this distribution."""
        return float(np.sum(self.log_pdf(np.asarray(samples, dtype=float))))

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``Var / mean^2``.

        The SCV is the standard single-number summary of how far a service
        distribution is from exponential (SCV = 1): deterministic service has
        SCV 0, hyper-exponential mixtures have SCV > 1.
        """
        mean = self.mean
        if mean == 0.0:
            return 0.0
        return self.variance / (mean * mean)

    @staticmethod
    def _validate_samples(samples: Sequence[float]) -> np.ndarray:
        """Shared input validation for :meth:`fit` implementations."""
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("fit() requires a non-empty 1-D sample array")
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError("service-time samples must be finite and nonnegative")
        return arr
