"""Deterministic (constant) service — the "D" in M/D/1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState


@dataclass(frozen=True)
class Deterministic(ServiceDistribution):
    """Degenerate distribution: every service takes exactly ``value``.

    Useful for modeling fixed-cost operations (e.g. constant-size network
    transfers) and as an extreme low-variability point (SCV = 0) in
    robustness sweeps.
    """

    value: float

    def __post_init__(self) -> None:
        if not (self.value >= 0.0 and np.isfinite(self.value)):
            raise ValueError(f"deterministic value must be nonnegative and finite, got {self.value}")

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        return np.full(size, self.value)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        # A point mass has no density; report 0.0 at the atom (log 1) and
        # -inf elsewhere so log-likelihood comparisons remain usable.
        x = np.asarray(x, dtype=float)
        return np.where(np.isclose(x, self.value), 0.0, -np.inf)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "Deterministic":
        arr = cls._validate_samples(samples)
        return cls(value=float(arr.mean()))
