"""Uniform service distribution on a nonnegative interval."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator


@dataclass(frozen=True)
class UniformService(ServiceDistribution):
    """Uniform distribution on ``[low, high]`` with ``0 <= low < high``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.low < self.high and np.isfinite(self.high)):
            raise ValueError(f"require 0 <= low < high < inf, got [{self.low}, {self.high}]")

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        return rng.uniform(self.low, self.high, size=size)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, -np.log(self.high - self.low), -np.inf)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "UniformService":
        """MLE: the sample min/max (widened infinitesimally for likelihood)."""
        arr = cls._validate_samples(samples)
        low = float(arr.min())
        high = float(arr.max())
        if high <= low:
            high = low + max(1e-12, abs(low) * 1e-9 + 1e-12)
        return cls(low=low, high=high)
