"""Gamma service distribution (continuous-shape generalization of Erlang)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import special

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator


@dataclass(frozen=True)
class Gamma(ServiceDistribution):
    """Gamma distribution with shape ``shape`` and rate ``rate``.

    Mean ``shape / rate``; SCV ``1 / shape``, so shape < 1 gives service more
    variable than exponential and shape > 1 less variable.
    """

    shape: float
    rate: float

    def __post_init__(self) -> None:
        if not (self.shape > 0.0 and np.isfinite(self.shape)):
            raise ValueError(f"gamma shape must be positive and finite, got {self.shape}")
        if not (self.rate > 0.0 and np.isfinite(self.rate)):
            raise ValueError(f"gamma rate must be positive and finite, got {self.rate}")

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        return rng.gamma(shape=self.shape, scale=1.0 / self.rate, size=size)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        ok = x > 0.0
        xs = x[ok]
        out[ok] = (
            self.shape * np.log(self.rate)
            + (self.shape - 1.0) * np.log(xs)
            - self.rate * xs
            - special.gammaln(self.shape)
        )
        return out

    @property
    def mean(self) -> float:
        return self.shape / self.rate

    @property
    def variance(self) -> float:
        return self.shape / (self.rate * self.rate)

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "Gamma":
        """MLE via Newton iteration on the digamma equation.

        Solves ``log(shape) - digamma(shape) = log(mean) - mean(log x)``
        starting from the Minka (2002) closed-form initializer.
        """
        arr = cls._validate_samples(samples)
        arr = np.maximum(arr, 1e-300)
        mean = float(arr.mean())
        log_mean_minus_mean_log = float(np.log(mean) - np.mean(np.log(arr)))
        if log_mean_minus_mean_log <= 0.0:
            # Degenerate (all samples equal): fall back to a sharp gamma.
            return cls(shape=1e6, rate=1e6 / mean)
        s = log_mean_minus_mean_log
        shape = (3.0 - s + np.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)
        for _ in range(100):
            num = np.log(shape) - special.digamma(shape) - s
            den = 1.0 / shape - special.polygamma(1, shape)
            step = num / den
            new_shape = shape - step
            if new_shape <= 0:
                new_shape = shape / 2.0
            if abs(new_shape - shape) < 1e-12 * max(1.0, shape):
                shape = new_shape
                break
            shape = new_shape
        return cls(shape=float(shape), rate=float(shape / mean))
