"""Log-normal service distribution.

Log-normal response times are ubiquitous in measured systems (multiplicative
noise across software layers); the paper's critics-of-queueing-theory framing
cites exactly this mismatch.  The simulator can generate log-normal service
so robustness experiments can quantify how badly exponential-assuming
inference degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator

_HALF_LOG_2PI = 0.5 * np.log(2.0 * np.pi)


@dataclass(frozen=True)
class LogNormal(ServiceDistribution):
    """Log-normal with log-mean ``mu_log`` and log-std ``sigma_log``."""

    mu_log: float
    sigma_log: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.mu_log):
            raise ValueError(f"mu_log must be finite, got {self.mu_log}")
        if not (self.sigma_log > 0.0 and np.isfinite(self.sigma_log)):
            raise ValueError(f"sigma_log must be positive and finite, got {self.sigma_log}")

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        return rng.lognormal(mean=self.mu_log, sigma=self.sigma_log, size=size)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        ok = x > 0.0
        xs = x[ok]
        z = (np.log(xs) - self.mu_log) / self.sigma_log
        out[ok] = -np.log(xs) - np.log(self.sigma_log) - _HALF_LOG_2PI - 0.5 * z * z
        return out

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu_log + 0.5 * self.sigma_log**2))

    @property
    def variance(self) -> float:
        s2 = self.sigma_log**2
        return float((np.exp(s2) - 1.0) * np.exp(2.0 * self.mu_log + s2))

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "LogNormal":
        """Exact MLE: sample mean and std of log-samples."""
        arr = cls._validate_samples(samples)
        if np.any(arr <= 0.0):
            raise ValueError("log-normal samples must be strictly positive")
        logs = np.log(arr)
        sigma = float(logs.std())
        return cls(mu_log=float(logs.mean()), sigma_log=max(sigma, 1e-12))

    @classmethod
    def from_mean_scv(cls, mean: float, scv: float) -> "LogNormal":
        """Construct from a target mean and squared coefficient of variation."""
        if mean <= 0.0 or scv <= 0.0:
            raise ValueError("mean and scv must be positive")
        sigma2 = np.log1p(scv)
        return cls(mu_log=float(np.log(mean) - 0.5 * sigma2), sigma_log=float(np.sqrt(sigma2)))
