"""Hyper-exponential service distribution (mixture of exponentials).

A two-branch hyper-exponential is the canonical model of *bursty* service:
most requests are fast, a small fraction are slow (cache miss, lock
contention, GC pause).  Its SCV exceeds one, making it the natural stress
test for the paper's "diagnosis of slow requests" motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator


@dataclass(frozen=True)
class HyperExponential(ServiceDistribution):
    """Mixture ``sum_i p_i * Exp(rate_i)``.

    Parameters
    ----------
    probs:
        Mixture weights; must be positive and sum to one.
    rates:
        Exponential rate of each branch; positive, same length as *probs*.
    """

    probs: tuple[float, ...]
    rates: tuple[float, ...]
    _probs_arr: np.ndarray = field(init=False, repr=False, compare=False)
    _rates_arr: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        probs = np.asarray(self.probs, dtype=float)
        rates = np.asarray(self.rates, dtype=float)
        if probs.shape != rates.shape or probs.ndim != 1 or probs.size == 0:
            raise ValueError("probs and rates must be equal-length non-empty 1-D sequences")
        if np.any(probs <= 0.0) or not np.isclose(probs.sum(), 1.0):
            raise ValueError("mixture weights must be positive and sum to 1")
        if np.any(rates <= 0.0) or not np.all(np.isfinite(rates)):
            raise ValueError("branch rates must be positive and finite")
        object.__setattr__(self, "probs", tuple(float(p) for p in probs))
        object.__setattr__(self, "rates", tuple(float(r) for r in rates))
        object.__setattr__(self, "_probs_arr", probs)
        object.__setattr__(self, "_rates_arr", rates)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        branch = rng.choice(len(self.probs), size=size, p=self._probs_arr)
        scale = 1.0 / self._rates_arr[branch]
        return rng.exponential(scale=scale)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        ok = x >= 0.0
        xs = x[ok][..., None]
        log_terms = (
            np.log(self._probs_arr) + np.log(self._rates_arr) - xs * self._rates_arr
        )
        # logsumexp over branches.
        m = log_terms.max(axis=-1, keepdims=True)
        out[ok] = (m + np.log(np.exp(log_terms - m).sum(axis=-1, keepdims=True)))[..., 0]
        return out

    @property
    def mean(self) -> float:
        return float(np.sum(self._probs_arr / self._rates_arr))

    @property
    def variance(self) -> float:
        ex2 = float(np.sum(2.0 * self._probs_arr / self._rates_arr**2))
        return ex2 - self.mean**2

    @classmethod
    def fit(cls, samples: Sequence[float], n_branches: int = 2, n_iter: int = 200) -> "HyperExponential":
        """Fit by EM for a mixture of exponentials (fixed branch count)."""
        arr = cls._validate_samples(samples)
        arr = np.maximum(arr, 1e-300)
        mean = float(arr.mean())
        # Spread initial rates around the sample mean.
        rates = np.array([1.0 / (mean * (0.5 + i)) for i in range(n_branches)])
        probs = np.full(n_branches, 1.0 / n_branches)
        for _ in range(n_iter):
            log_resp = np.log(probs) + np.log(rates) - arr[:, None] * rates
            m = log_resp.max(axis=1, keepdims=True)
            resp = np.exp(log_resp - m)
            resp /= resp.sum(axis=1, keepdims=True)
            nk = resp.sum(axis=0)
            new_probs = nk / arr.size
            new_rates = nk / np.maximum(resp.T @ arr, 1e-300)
            if np.allclose(new_probs, probs, atol=1e-10) and np.allclose(new_rates, rates, atol=1e-10):
                probs, rates = new_probs, new_rates
                break
            probs, rates = new_probs, new_rates
        probs = np.maximum(probs, 1e-12)
        probs = probs / probs.sum()
        return cls(probs=tuple(probs), rates=tuple(rates))
