"""Erlang-k service distribution (sum of k i.i.d. exponentials).

Erlang service has squared coefficient of variation ``1/k < 1``, i.e. it is
*less* variable than exponential — the classic model for multi-phase service
(e.g. a request that always performs k sequential I/O operations).  Used by
the simulator to exercise the paper's "more general service distributions"
future-work direction and by robustness tests that measure how the M/M/1
inference degrades under model misspecification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import special

from repro.distributions.base import ServiceDistribution
from repro.rng import RandomState, as_generator


@dataclass(frozen=True)
class Erlang(ServiceDistribution):
    """Erlang distribution with shape ``k`` (positive integer) and rate ``rate``.

    The mean is ``k / rate`` and the variance ``k / rate**2``.
    """

    k: int
    rate: float

    def __post_init__(self) -> None:
        if not (isinstance(self.k, (int, np.integer)) and self.k >= 1):
            raise ValueError(f"Erlang shape k must be a positive integer, got {self.k}")
        if not (self.rate > 0.0 and np.isfinite(self.rate)):
            raise ValueError(f"Erlang rate must be positive and finite, got {self.rate}")

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        return rng.gamma(shape=self.k, scale=1.0 / self.rate, size=size)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.full(x.shape, -np.inf)
        ok = x > 0.0
        xs = x[ok]
        out[ok] = (
            self.k * np.log(self.rate)
            + (self.k - 1) * np.log(xs)
            - self.rate * xs
            - special.gammaln(self.k)
        )
        if self.k == 1:
            # Density is finite (= rate) at zero only for k == 1.
            out[x == 0.0] = np.log(self.rate)
        return out

    @property
    def mean(self) -> float:
        return self.k / self.rate

    @property
    def variance(self) -> float:
        return self.k / (self.rate * self.rate)

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "Erlang":
        """Method-of-moments shape (rounded to >= 1), then MLE rate given shape."""
        arr = cls._validate_samples(samples)
        mean = float(arr.mean())
        var = float(arr.var())
        if mean <= 0.0:
            raise ValueError("cannot fit an Erlang to all-zero samples")
        k = 1 if var <= 0.0 else max(1, int(round(mean * mean / var)))
        return cls(k=k, rate=k / mean)
