"""The simulated movie-voting web application (paper Section 5.2).

The paper instruments a real Ruby-on-Rails application: haproxy load
balancing across **ten identical web server instances** on one machine, a
MySQL **database** on a second machine, and a **network** queue modeling
HTTP request/response transmission.  5 759 requests are generated with
load "increasing linearly over 30 min", producing 23 036 arrival events
(= 4 queue visits per request: network, web server, database, network).

We do not have those traces (substitution documented in DESIGN.md):
this package builds a queueing network with the identical topology, a
linearly ramping non-homogeneous Poisson workload, and a load-balancer
weight skew that starves one web server (the paper observed one server
receiving only 19 requests, making its estimates visibly unstable in
Figure 5) — then simulates it to produce the dataset Figure 5's
reproduction consumes.
"""

from repro.webapp.app_model import (
    WebAppConfig,
    build_webapp_network,
    paper_webapp_config,
)
from repro.webapp.workload import generate_webapp_trace

__all__ = [
    "WebAppConfig",
    "paper_webapp_config",
    "build_webapp_network",
    "generate_webapp_trace",
]
