"""Topology and parameters of the simulated movie-voting application."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributions import Exponential, ServiceDistribution
from repro.errors import ConfigurationError
from repro.fsm import ProbabilisticFSM
from repro.network import QueueingNetwork
from repro.network.topology import INITIAL_QUEUE_NAME


@dataclass(frozen=True)
class WebAppConfig:
    """Parameters of the simulated web application.

    Attributes
    ----------
    n_requests:
        Total requests over the run (paper: 5 759).
    duration:
        Run length in seconds (paper: 30 minutes).
    n_web_servers:
        Replicated web server instances behind the balancer (paper: 10).
    web_rate / db_rate / network_rate:
        Exponential service rates.  Dynamic page generation dominates
        per-request cost ("almost all of the page content is dynamically
        generated"), so web service is the slowest; the database and the
        network transfer are fast.
    starved_weight:
        Relative load-balancer weight of the last web server.  The paper's
        balancer sent only 19 of 5 759 requests (~0.33 %) to one instance;
        the default reproduces that order of magnitude.
    """

    n_requests: int = 5759
    duration: float = 30.0 * 60.0
    n_web_servers: int = 10
    web_rate: float = 4.0
    db_rate: float = 40.0
    network_rate: float = 16.0
    starved_weight: float = 0.033

    def __post_init__(self) -> None:
        if self.n_requests < 1 or self.n_web_servers < 1:
            raise ConfigurationError("need at least one request and one web server")
        if min(self.web_rate, self.db_rate, self.network_rate) <= 0.0:
            raise ConfigurationError("service rates must be positive")
        if self.duration <= 0.0:
            raise ConfigurationError("duration must be positive")
        if not 0.0 < self.starved_weight <= 1.0:
            raise ConfigurationError("starved_weight must lie in (0, 1]")

    @property
    def n_events(self) -> int:
        """Total arrival events in the queueing model (4 per request)."""
        return 4 * self.n_requests

    @property
    def mean_arrival_rate(self) -> float:
        """Average request rate over the ramp."""
        return self.n_requests / self.duration

    def balancer_weights(self) -> np.ndarray:
        """Dispatch weights: uniform except the starved last server."""
        weights = np.ones(self.n_web_servers)
        weights[-1] = self.starved_weight
        return weights / weights.sum()


def paper_webapp_config(**overrides) -> WebAppConfig:
    """The configuration matching the paper's Section 5.2 numbers."""
    return WebAppConfig(**overrides)


def build_webapp_network(config: WebAppConfig | None = None) -> QueueingNetwork:
    """Build the 12-queue network: network, 10 web servers, database.

    Queue layout (matching the paper's model): queue 1 is the shared
    network queue visited on both the request and response leg; queues
    2..11 are the web servers; queue 12 is the database.  Every request's
    path is network -> web-i -> db -> network, giving exactly four events
    per request (5 759 x 4 = 23 036, the paper's event count).

    The arrival "rate" stored at queue 0 is the ramp's *average* rate; the
    actual workload is non-homogeneous (see
    :func:`~repro.webapp.workload.generate_webapp_trace`), deliberately
    mismatching the homogeneous M/M/1 model exactly as the paper's real
    traffic did.
    """
    if config is None:
        config = WebAppConfig()
    names = [INITIAL_QUEUE_NAME, "network"]
    services: dict[str, ServiceDistribution] = {
        INITIAL_QUEUE_NAME: Exponential(rate=config.mean_arrival_rate),
        "network": Exponential(rate=config.network_rate),
    }
    web_indices = []
    for j in range(config.n_web_servers):
        web_indices.append(len(names))
        names.append(f"web-{j}")
        services[f"web-{j}"] = Exponential(rate=config.web_rate)
    db_index = len(names)
    names.append("db")
    services["db"] = Exponential(rate=config.db_rate)
    n_queues = len(names)

    weights = config.balancer_weights()
    # FSM states: 0 entry, 1 network-in, 2 web, 3 db, 4 network-out, 5 final.
    transition = np.zeros((6, 6))
    for s in range(5):
        transition[s, s + 1] = 1.0
    transition[5, 5] = 1.0
    emission = np.zeros((6, n_queues))
    emission[1, 1] = 1.0  # network (request leg)
    emission[2, web_indices] = weights
    emission[3, db_index] = 1.0
    emission[4, 1] = 1.0  # network (response leg)
    fsm = ProbabilisticFSM(
        transition=transition, emission=emission, initial_state=0, final_state=5
    )
    return QueueingNetwork(queue_names=tuple(names), services=services, fsm=fsm)
