"""Workload generation for the web-application experiment.

The paper "generate[s] 5759 requests to the system using an automatic
workload generator, increasing the load linearly over 30 min".  We model
that as a non-homogeneous Poisson process with rate growing linearly from
zero, conditioned on the exact request count — and feed it to the
discrete-event simulator to produce the 23 036-event ground-truth trace.
"""

from __future__ import annotations

from repro.rng import RandomState, as_generator
from repro.simulate import LinearRampArrivals, SimulationResult, simulate_tasks
from repro.webapp.app_model import WebAppConfig, build_webapp_network


def generate_webapp_trace(
    config: WebAppConfig | None = None,
    random_state: RandomState = None,
) -> SimulationResult:
    """Simulate the movie-voting application under the linear load ramp.

    Returns a :class:`~repro.simulate.SimulationResult` whose event set has
    exactly ``4 * n_requests`` non-initial events (the paper's 23 036 for
    the default configuration).

    Notes
    -----
    The trace is intentionally model-misspecified for the inference: the
    arrival process is non-homogeneous while the M/M/1 model fits a single
    ``lambda`` — the same mismatch the paper's real measurement had.
    """
    if config is None:
        config = WebAppConfig()
    rng = as_generator(random_state)
    network = build_webapp_network(config)
    arrivals = LinearRampArrivals(duration=config.duration, rate0=0.0, slope=1.0)
    entry_times = arrivals.sample(config.n_requests, rng)
    paths = [network.sample_path(rng) for _ in range(config.n_requests)]
    return simulate_tasks(network, entry_times, paths, rng)
