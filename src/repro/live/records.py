"""Measurement records: the wire unit between a monitored system and
:class:`~repro.live.stream.LiveTraceStream`.

A record (:func:`~repro.events.serialization.measurement_record`) is one
event's measurement: identity (``task``/``seq``), queue, the queue's
event-**counter** value at its arrival — the paper's assumption about
what instrumented queues expose, and exactly the information that pins
the frozen per-queue order without revealing censored times — plus the
measured times where they exist (``arrival`` ``None`` when censored;
``departure`` only on a task's last event).

This module converts between records and :class:`~repro.observation.ObservedTrace`:

* :func:`trace_to_records` flattens a censored trace into records — what a
  replay client (``repro ingest``) ships, and the reference for what a real
  reporting agent would emit;
* :func:`assemble_trace` is the inverse: build an observed trace from the
  records of a set of *complete* tasks, reconstructing inner departures from
  the ``a_e = d_{pi(e)}`` identity and every queue's frozen order from the
  counters.

Round-trip contract (pinned by ``tests/live/test_records.py``): for any
task subset of a task-id-major trace, ``assemble_trace(records)`` is
**bitwise identical** to ``subset_trace`` of the original — which is what
makes live window estimates bitwise comparable to the replay path.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import IngestError
from repro.events import EventSet
from repro.events.serialization import measurement_record
from repro.events.subset import SubsetIndex
from repro.observation import ObservedTrace


def trace_to_records(trace: ObservedTrace) -> list[dict]:
    """Flatten a censored trace into measurement records (task-major order).

    Censored positions become ``arrival=None``; inner departures are never
    shipped (they equal the successor's arrival); a task's last record is
    flagged ``last`` and carries its departure only when independently
    measured.
    """
    skeleton = trace.skeleton
    counters = skeleton.queue_positions()
    records: list[dict] = []
    for task_id in skeleton.task_ids:
        events = skeleton.events_of_task(task_id)
        for e in events:
            e = int(e)
            last = skeleton.pi_inv[e] == -1
            if skeleton.seq[e] == 0:
                arrival: float | None = 0.0
            elif trace.arrival_observed[e]:
                arrival = float(skeleton.arrival[e])
            else:
                arrival = None
            departure = (
                float(skeleton.departure[e])
                if last and trace.departure_observed[e]
                else None
            )
            records.append(
                measurement_record(
                    task=task_id,
                    seq=int(skeleton.seq[e]),
                    queue=int(skeleton.queue[e]),
                    counter=int(counters[e]),
                    state=int(skeleton.state[e]),
                    arrival=arrival,
                    departure=departure,
                    last=bool(last),
                )
            )
    return records


def replay_batches(
    trace: ObservedTrace, batch_tasks: int = 32
) -> list[tuple[float, list[dict]]]:
    """Chop a recorded censored trace into in-order ingestion batches.

    Tasks are grouped in (estimated) entry order, ``batch_tasks`` per
    batch; each batch is paired with the watermark an honest reporter
    would advance to before shipping it — the entry estimate of the
    batch's first task, which every measurement in this and later batches
    is no older than.  Replaying the batches in order therefore produces
    zero stragglers: the ``repro ingest`` client, the live-serving
    example, and the benchmark all ship exactly this schedule.
    """
    from repro.online.windowed import _entry_time_estimates

    entries = _entry_time_estimates(trace)
    by_task: dict[int, list[dict]] = {}
    for record in trace_to_records(trace):
        by_task.setdefault(record["task"], []).append(record)
    order = sorted(entries, key=lambda t: entries[t])
    batches = []
    for start in range(0, len(order), int(batch_tasks)):
        chunk = order[start:start + int(batch_tasks)]
        batch: list[dict] = []
        for task in chunk:
            batch.extend(by_task[task])
        batches.append((float(entries[chunk[0]]), batch))
    return batches


def record_times(record: dict) -> list[float]:
    """Every measured clock time a record carries (may be empty)."""
    out = []
    if record["arrival"] is not None and record["seq"] != 0:
        out.append(float(record["arrival"]))
    if record["departure"] is not None:
        out.append(float(record["departure"]))
    return out


def assemble_trace(
    task_records: list[list[dict]], n_queues: int | None = None
) -> ObservedTrace:
    """Build an observed trace from the records of complete tasks.

    Parameters
    ----------
    task_records:
        One list of records per task, each covering the task's events
        ``seq 0 .. k`` exactly (the stream's completeness gate guarantees
        this).  Tasks are assembled in ascending task-id order and queue
        orders are rebuilt from the counters, so the result is bitwise the
        :func:`~repro.events.subset.subset_trace` restriction of the
        originating task-id-major trace.
    n_queues:
        Queue count of the monitored network (so a trace prefix that has
        not yet visited the last queue still matches the full topology);
        defaults to the highest queue index seen plus one.
    """
    if not task_records:
        raise IngestError("no complete tasks to assemble a trace from")
    ordered = sorted(task_records, key=lambda recs: recs[0]["task"])
    task_col: list[int] = []
    seq_col: list[int] = []
    queue_col: list[int] = []
    state_col: list[int] = []
    counter_col: list[int] = []
    arrival_col: list[float] = []
    departure_col: list[float] = []
    arr_obs: list[bool] = []
    dep_obs: list[bool] = []
    for recs in ordered:
        recs = sorted(recs, key=lambda r: r["seq"])
        for i, r in enumerate(recs):
            task_col.append(r["task"])
            seq_col.append(r["seq"])
            queue_col.append(r["queue"])
            state_col.append(r["state"])
            counter_col.append(r["counter"])
            arrival_col.append(
                0.0 if r["seq"] == 0
                else (np.nan if r["arrival"] is None else r["arrival"])
            )
            arr_obs.append(r["seq"] == 0 or r["arrival"] is not None)
            if i + 1 < len(recs):
                # Inner departure: the a_e = d_{pi(e)} identity.
                nxt = recs[i + 1]
                departure_col.append(
                    np.nan if nxt["arrival"] is None else nxt["arrival"]
                )
                dep_obs.append(False)
            else:
                departure_col.append(
                    np.nan if r["departure"] is None else r["departure"]
                )
                dep_obs.append(r["departure"] is not None)
    if n_queues is None:
        n_queues = max(queue_col) + 1
    elif n_queues <= max(queue_col):
        raise IngestError(
            f"records reference queue {max(queue_col)} but the stream was "
            f"declared with n_queues={n_queues}"
        )
    counters = np.asarray(counter_col, dtype=np.int64)
    queues = np.asarray(queue_col, dtype=np.int64)
    queue_order = []
    for q in range(n_queues):
        members = np.flatnonzero(queues == q)
        order = members[np.argsort(counters[members], kind="stable")]
        if np.unique(counters[order]).size != order.size:
            raise IngestError(
                f"conflicting event counters at queue {q}: two events claim "
                "the same arrival position"
            )
        queue_order.append(order.astype(np.int64))
    skeleton = EventSet(
        task=np.asarray(task_col, dtype=np.int64),
        seq=np.asarray(seq_col, dtype=np.int64),
        queue=queues,
        arrival=np.asarray(arrival_col, dtype=float),
        departure=np.asarray(departure_col, dtype=float),
        n_queues=n_queues,
        state=np.asarray(state_col, dtype=np.int64),
        queue_order=queue_order,
    )
    return ObservedTrace(
        skeleton=skeleton,
        arrival_observed=np.asarray(arr_obs, dtype=bool),
        departure_observed=np.asarray(dep_obs, dtype=bool),
    )


class IncrementalAssembler:
    """Append-in-place trace assembly: O(task) per finalized task.

    :func:`assemble_trace` re-walks every record of every task on each
    call — O(total history) per trace access, which is exactly the
    degradation an always-on stream cannot afford.  This class keeps the
    assembled *columns* (task/seq/queue/state, times, observation masks)
    in growable buffers and each queue's frozen order as a counter-sorted
    splice list, so finalizing one task appends its rows and bisects its
    events into the queue orders — no revisiting of history.  Building
    the :class:`~repro.observation.ObservedTrace` (plus its
    :class:`~repro.events.subset.SubsetIndex`) from the columns is cached
    per version, so a window access after *k* appends costs one
    O(retained) array materialization, never a Python re-walk.

    Equality contract (pinned by the conformance suite's equivalence
    oracle): the built trace is **bitwise identical** to
    ``assemble_trace(task_records)`` over the same tasks.  The fast path
    requires task ids to arrive in ascending order — true whenever entry
    counters are monotone in task id, i.e. for every recorded or
    honestly instrumented source.  :meth:`append` refuses an
    out-of-order id (returns ``False``, mutating nothing) and the caller
    falls back to the sort-based rebuild.

    :meth:`evict` drops the oldest tasks' rows (prefix compaction):
    buffers shift once per call, per-queue splice lists are filtered, and
    the retained columns stay bitwise what ``assemble_trace`` over the
    retained records would produce.
    """

    _MIN_CAPACITY = 1024
    _COLUMNS = (
        "_task", "_seq", "_queue", "_state",
        "_arrival", "_departure", "_arr_obs", "_dep_obs",
    )

    def __init__(self, n_queues: int) -> None:
        if n_queues < 2:
            raise IngestError("n_queues must include queue 0 plus real queues")
        self.n_queues = int(n_queues)
        self._n = 0
        self._task_sizes: list[int] = []  # events per task, append order
        self._last_task: int | None = None
        cap = self._MIN_CAPACITY
        self._task = np.empty(cap, dtype=np.int64)
        self._seq = np.empty(cap, dtype=np.int64)
        self._queue = np.empty(cap, dtype=np.int64)
        self._state = np.empty(cap, dtype=np.int64)
        self._arrival = np.empty(cap, dtype=float)
        self._departure = np.empty(cap, dtype=float)
        self._arr_obs = np.empty(cap, dtype=bool)
        self._dep_obs = np.empty(cap, dtype=bool)
        # Per-queue frozen order as parallel (sorted counters, row ids).
        self._q_counters: list[list[int]] = [[] for _ in range(self.n_queues)]
        self._q_rows: list[list[int]] = [[] for _ in range(self.n_queues)]
        #: Bumped on every append/evict; the build cache keys on it.
        self.version = 0
        self._built_version = -1
        self._trace: ObservedTrace | None = None
        self._index: SubsetIndex | None = None

    @property
    def n_events(self) -> int:
        """Rows currently held (the retained history)."""
        return self._n

    @property
    def n_tasks(self) -> int:
        """Tasks currently held."""
        return len(self._task_sizes)

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._task.size:
            return
        cap = max(need, 2 * self._task.size)
        for name in self._COLUMNS:
            old = getattr(self, name)
            buf = np.empty(cap, dtype=old.dtype)
            buf[: self._n] = old[: self._n]
            setattr(self, name, buf)

    def append(self, records: list[dict]) -> bool:
        """Append one complete task's seq-ordered records; O(task).

        Returns ``False`` — leaving the assembler untouched — when the
        task id does not exceed every id already appended: the columns
        are kept in ascending task-id order by construction (what makes
        them bitwise :func:`assemble_trace`'s sorted output), so an
        out-of-order id means the caller must fall back to the sort-based
        rebuild path.

        Raises
        ------
        IngestError
            If two events claim the same counter at one queue (same
            corrupt-counter condition :func:`assemble_trace` rejects).
            Checked before any mutation, so a raise leaves the assembler
            consistent.
        """
        task = int(records[0]["task"])
        if self._last_task is not None and task <= self._last_task:
            return False
        k = len(records)
        # Validate the counter splices first: nothing is mutated unless
        # the whole task can go in.
        fresh: set[tuple[int, int]] = set()
        for r in records:
            q = int(r["queue"])
            c = int(r["counter"])
            counters = self._q_counters[q]
            pos = bisect.bisect_left(counters, c)
            if (pos < len(counters) and counters[pos] == c) or (q, c) in fresh:
                raise IngestError(
                    f"conflicting event counters at queue {q}: two events "
                    "claim the same arrival position"
                )
            fresh.add((q, c))
        self._reserve(k)
        base = self._n
        for i, r in enumerate(records):
            row = base + i
            self._task[row] = task
            self._seq[row] = r["seq"]
            self._queue[row] = r["queue"]
            self._state[row] = r["state"]
            if r["seq"] == 0:
                self._arrival[row] = 0.0
                self._arr_obs[row] = True
            elif r["arrival"] is None:
                self._arrival[row] = np.nan
                self._arr_obs[row] = False
            else:
                self._arrival[row] = r["arrival"]
                self._arr_obs[row] = True
            if i + 1 < k:
                # Inner departure: the a_e = d_{pi(e)} identity.
                nxt = records[i + 1]
                self._departure[row] = (
                    np.nan if nxt["arrival"] is None else nxt["arrival"]
                )
                self._dep_obs[row] = False
            else:
                self._departure[row] = (
                    np.nan if r["departure"] is None else r["departure"]
                )
                self._dep_obs[row] = r["departure"] is not None
            q = int(r["queue"])
            c = int(r["counter"])
            pos = bisect.bisect_left(self._q_counters[q], c)
            self._q_counters[q].insert(pos, c)
            self._q_rows[q].insert(pos, row)
        self._n += k
        self._task_sizes.append(k)
        self._last_task = task
        self.version += 1
        return True

    def prefix_events(self, n_tasks: int) -> int:
        """Rows occupied by the oldest *n_tasks* tasks."""
        return sum(self._task_sizes[:n_tasks])

    def evict(self, n_tasks: int) -> int:
        """Drop the oldest *n_tasks* tasks' rows; returns rows removed.

        The oldest tasks occupy the column prefix (ids ascend), so
        eviction is one buffer shift plus a filter of each queue's splice
        lists — O(retained), paid once per compaction, not per access.
        """
        if n_tasks <= 0:
            return 0
        if n_tasks > len(self._task_sizes):
            raise IngestError(
                f"cannot evict {n_tasks} tasks; only "
                f"{len(self._task_sizes)} are held"
            )
        m = self.prefix_events(n_tasks)
        keep = self._n - m
        for name in self._COLUMNS:
            old = getattr(self, name)
            buf = np.empty(max(keep, self._MIN_CAPACITY), dtype=old.dtype)
            buf[:keep] = old[m: self._n]
            setattr(self, name, buf)
        self._n = keep
        del self._task_sizes[:n_tasks]
        for q in range(self.n_queues):
            pairs = [
                (c, r - m)
                for c, r in zip(self._q_counters[q], self._q_rows[q])
                if r >= m
            ]
            self._q_counters[q] = [c for c, _ in pairs]
            self._q_rows[q] = [r for _, r in pairs]
        self.version += 1
        self._trace = None
        self._index = None
        return m

    def build(self) -> tuple[ObservedTrace, SubsetIndex]:
        """The trace (plus its subset index) over the retained columns.

        Cached per :attr:`version`; repeated window accesses between
        appends are free.  Buffer prefixes are handed to the
        :class:`~repro.events.EventSet` as views — safe because rows
        below the current length are never rewritten (growth reallocates,
        eviction rebuilds) — while times and masks are copied by the
        constructors, so inference can never corrupt the columns.
        """
        if self._n == 0:
            raise IngestError("no complete tasks to assemble a trace from")
        if self._built_version != self.version or self._trace is None:
            n = self._n
            skeleton = EventSet(
                task=self._task[:n],
                seq=self._seq[:n],
                queue=self._queue[:n],
                arrival=self._arrival[:n],
                departure=self._departure[:n],
                n_queues=self.n_queues,
                state=self._state[:n],
                queue_order=[
                    np.asarray(rows, dtype=np.int64) for rows in self._q_rows
                ],
            )
            self._trace = ObservedTrace(
                skeleton=skeleton,
                arrival_observed=self._arr_obs[:n],
                departure_observed=self._dep_obs[:n],
            )
            self._index = SubsetIndex(skeleton)
            self._built_version = self.version
        return self._trace, self._index
