"""Measurement records: the wire unit between a monitored system and
:class:`~repro.live.stream.LiveTraceStream`.

A record (:func:`~repro.events.serialization.measurement_record`) is one
event's measurement: identity (``task``/``seq``), queue, the queue's
event-**counter** value at its arrival — the paper's assumption about
what instrumented queues expose, and exactly the information that pins
the frozen per-queue order without revealing censored times — plus the
measured times where they exist (``arrival`` ``None`` when censored;
``departure`` only on a task's last event).

This module converts between records and :class:`~repro.observation.ObservedTrace`:

* :func:`trace_to_records` flattens a censored trace into records — what a
  replay client (``repro ingest``) ships, and the reference for what a real
  reporting agent would emit;
* :func:`assemble_trace` is the inverse: build an observed trace from the
  records of a set of *complete* tasks, reconstructing inner departures from
  the ``a_e = d_{pi(e)}`` identity and every queue's frozen order from the
  counters.

Round-trip contract (pinned by ``tests/live/test_records.py``): for any
task subset of a task-id-major trace, ``assemble_trace(records)`` is
**bitwise identical** to ``subset_trace`` of the original — which is what
makes live window estimates bitwise comparable to the replay path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IngestError
from repro.events import EventSet
from repro.events.serialization import measurement_record
from repro.observation import ObservedTrace


def trace_to_records(trace: ObservedTrace) -> list[dict]:
    """Flatten a censored trace into measurement records (task-major order).

    Censored positions become ``arrival=None``; inner departures are never
    shipped (they equal the successor's arrival); a task's last record is
    flagged ``last`` and carries its departure only when independently
    measured.
    """
    skeleton = trace.skeleton
    counters = skeleton.queue_positions()
    records: list[dict] = []
    for task_id in skeleton.task_ids:
        events = skeleton.events_of_task(task_id)
        for e in events:
            e = int(e)
            last = skeleton.pi_inv[e] == -1
            if skeleton.seq[e] == 0:
                arrival: float | None = 0.0
            elif trace.arrival_observed[e]:
                arrival = float(skeleton.arrival[e])
            else:
                arrival = None
            departure = (
                float(skeleton.departure[e])
                if last and trace.departure_observed[e]
                else None
            )
            records.append(
                measurement_record(
                    task=task_id,
                    seq=int(skeleton.seq[e]),
                    queue=int(skeleton.queue[e]),
                    counter=int(counters[e]),
                    state=int(skeleton.state[e]),
                    arrival=arrival,
                    departure=departure,
                    last=bool(last),
                )
            )
    return records


def replay_batches(
    trace: ObservedTrace, batch_tasks: int = 32
) -> list[tuple[float, list[dict]]]:
    """Chop a recorded censored trace into in-order ingestion batches.

    Tasks are grouped in (estimated) entry order, ``batch_tasks`` per
    batch; each batch is paired with the watermark an honest reporter
    would advance to before shipping it — the entry estimate of the
    batch's first task, which every measurement in this and later batches
    is no older than.  Replaying the batches in order therefore produces
    zero stragglers: the ``repro ingest`` client, the live-serving
    example, and the benchmark all ship exactly this schedule.
    """
    from repro.online.windowed import _entry_time_estimates

    entries = _entry_time_estimates(trace)
    by_task: dict[int, list[dict]] = {}
    for record in trace_to_records(trace):
        by_task.setdefault(record["task"], []).append(record)
    order = sorted(entries, key=lambda t: entries[t])
    batches = []
    for start in range(0, len(order), int(batch_tasks)):
        chunk = order[start:start + int(batch_tasks)]
        batch: list[dict] = []
        for task in chunk:
            batch.extend(by_task[task])
        batches.append((float(entries[chunk[0]]), batch))
    return batches


def record_times(record: dict) -> list[float]:
    """Every measured clock time a record carries (may be empty)."""
    out = []
    if record["arrival"] is not None and record["seq"] != 0:
        out.append(float(record["arrival"]))
    if record["departure"] is not None:
        out.append(float(record["departure"]))
    return out


def assemble_trace(
    task_records: list[list[dict]], n_queues: int | None = None
) -> ObservedTrace:
    """Build an observed trace from the records of complete tasks.

    Parameters
    ----------
    task_records:
        One list of records per task, each covering the task's events
        ``seq 0 .. k`` exactly (the stream's completeness gate guarantees
        this).  Tasks are assembled in ascending task-id order and queue
        orders are rebuilt from the counters, so the result is bitwise the
        :func:`~repro.events.subset.subset_trace` restriction of the
        originating task-id-major trace.
    n_queues:
        Queue count of the monitored network (so a trace prefix that has
        not yet visited the last queue still matches the full topology);
        defaults to the highest queue index seen plus one.
    """
    if not task_records:
        raise IngestError("no complete tasks to assemble a trace from")
    ordered = sorted(task_records, key=lambda recs: recs[0]["task"])
    task_col: list[int] = []
    seq_col: list[int] = []
    queue_col: list[int] = []
    state_col: list[int] = []
    counter_col: list[int] = []
    arrival_col: list[float] = []
    departure_col: list[float] = []
    arr_obs: list[bool] = []
    dep_obs: list[bool] = []
    for recs in ordered:
        recs = sorted(recs, key=lambda r: r["seq"])
        for i, r in enumerate(recs):
            task_col.append(r["task"])
            seq_col.append(r["seq"])
            queue_col.append(r["queue"])
            state_col.append(r["state"])
            counter_col.append(r["counter"])
            arrival_col.append(
                0.0 if r["seq"] == 0
                else (np.nan if r["arrival"] is None else r["arrival"])
            )
            arr_obs.append(r["seq"] == 0 or r["arrival"] is not None)
            if i + 1 < len(recs):
                # Inner departure: the a_e = d_{pi(e)} identity.
                nxt = recs[i + 1]
                departure_col.append(
                    np.nan if nxt["arrival"] is None else nxt["arrival"]
                )
                dep_obs.append(False)
            else:
                departure_col.append(
                    np.nan if r["departure"] is None else r["departure"]
                )
                dep_obs.append(r["departure"] is not None)
    if n_queues is None:
        n_queues = max(queue_col) + 1
    elif n_queues <= max(queue_col):
        raise IngestError(
            f"records reference queue {max(queue_col)} but the stream was "
            f"declared with n_queues={n_queues}"
        )
    counters = np.asarray(counter_col, dtype=np.int64)
    queues = np.asarray(queue_col, dtype=np.int64)
    queue_order = []
    for q in range(n_queues):
        members = np.flatnonzero(queues == q)
        order = members[np.argsort(counters[members], kind="stable")]
        if np.unique(counters[order]).size != order.size:
            raise IngestError(
                f"conflicting event counters at queue {q}: two events claim "
                "the same arrival position"
            )
        queue_order.append(order.astype(np.int64))
    skeleton = EventSet(
        task=np.asarray(task_col, dtype=np.int64),
        seq=np.asarray(seq_col, dtype=np.int64),
        queue=queues,
        arrival=np.asarray(arrival_col, dtype=float),
        departure=np.asarray(departure_col, dtype=float),
        n_queues=n_queues,
        state=np.asarray(state_col, dtype=np.int64),
        queue_order=queue_order,
    )
    return ObservedTrace(
        skeleton=skeleton,
        arrival_observed=np.asarray(arr_obs, dtype=bool),
        departure_observed=np.asarray(dep_obs, dtype=bool),
    )
