"""The always-on estimation supervisor: stream in, window estimates out.

:class:`EstimatorService` closes the loop the paper's online story needs:
a supervisor thread watches a :class:`~repro.live.stream.LiveTraceStream`
and, every time the stream's horizon has advanced far enough that a
window's task population can no longer change, drives one
:meth:`~repro.online.streaming.StreamingEstimator.process_window` and
*publishes* the result — the per-window rate estimate plus the anomaly
flags a monitoring consumer actually wants — to a thread-safe store the
ingestion server exposes over its query commands.

Window scheduling mirrors the replay path exactly: window *i* starts at
``i * step`` and is processed once the stream's horizon reaches the
window's end (or the stream is sealed), in strict order.  Because the
streaming estimator spawns one seed child per window in that same order,
a window processed live is **bitwise** the window the replay path would
have produced — the acceptance contract of ``tests/live/test_service.py``.

Checkpoint/restore: after every ``checkpoint_every`` published windows
the service snapshots (atomically, via rename) the stream's record log,
the estimator's seed/bookkeeping state, and the published estimates.
:meth:`EstimatorService.from_checkpoint` rebuilds all three; the restored
service re-reveals from the record log, keeps every pre-crash estimate,
and processes the remaining windows bitwise as the uninterrupted run
would have — an ingestion client only needs to replay the tail recorded
after the snapshot (duplicates are ignored by the stream).  Snapshot
*capture* happens under the window lock but serialization and disk I/O
run on a background writer, so a slow checkpoint never blocks window
publishing; with a stream retention horizon (``LiveTraceStream(retain=
...)``) the record log in the snapshot is the retained tail only, so
checkpoint size is bounded by the horizon, not stream age.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from dataclasses import replace

from repro import telemetry
from repro.errors import IngestError
from repro.live.stream import LiveTraceStream
from repro.online import EstimatorConfig, StreamEstimatorProtocol, get_estimator
from repro.online.anomaly import detect_anomalies
from repro.online.streaming import StreamEstimate
from repro.online.windowed import WindowEstimate

#: Service lifecycle states reported by :meth:`EstimatorService.health`.
SERVICE_STATES = ("idle", "serving", "finished", "stopped", "failed")

#: Published windows the anomaly detector looks back over when judging a
#: freshly published window.  Bounds per-publish work for an always-on
#: service (the detector's history is otherwise expanding); below this
#: many windows the flags are identical to whole-history detection.
ANOMALY_TAIL_WINDOWS = 64


#: Renderings accepted by the ``metrics`` wire command.
METRICS_FORMATS = ("snapshot", "json", "prometheus")


def render_metrics_report(report: dict, fmt: str):
    """Render a telemetry report for the wire: the structured snapshot
    itself, canonical JSON text, or Prometheus v0 text."""
    if fmt == "snapshot":
        return report
    if fmt == "json":
        return telemetry.render_json(report)
    if fmt == "prometheus":
        return telemetry.render_prometheus(report.get("metrics") or [])
    raise IngestError(
        f"unknown metrics format {fmt!r}; expected one of {METRICS_FORMATS}"
    )


def flatten_health(record: dict) -> dict:
    """Mirror a schema-1 health record's nested sections as flat keys.

    Compatibility shim for pre-schema consumers (one release only):
    every key of ``service`` and ``stream`` reappears at the top level,
    exactly as the flat records of earlier releases spelled them.  The
    ``workers`` and ``server`` sections were already flat keys before.
    """
    flat = dict(record)
    for section in ("service", "stream"):
        body = record.get(section)
        if isinstance(body, dict):
            for key, value in body.items():
                flat.setdefault(key, value)
    return flat


def estimate_to_record(estimate: WindowEstimate, index: int) -> dict:
    """Flatten a window estimate into a plain, wire-friendly dict."""
    return {
        "index": int(index),
        "t_start": float(estimate.t_start),
        "t_end": float(estimate.t_end),
        "n_tasks": int(estimate.n_tasks),
        "n_observed_tasks": int(estimate.n_observed_tasks),
        "rates": None if estimate.rates is None else [
            float(r) for r in estimate.rates
        ],
        "failure": estimate.failure,
        "n_shards": int(getattr(estimate, "n_shards", 1)),
        "n_warm_shards": int(getattr(estimate, "n_warm_shards", 0)),
        "n_migrated_shards": int(getattr(estimate, "n_migrated_shards", 0)),
    }


class EstimatorService:
    """Supervise a stream estimator over a live stream and publish its
    window estimates.

    Parameters
    ----------
    estimator:
        The estimator to drive — anything satisfying
        :class:`~repro.online.StreamEstimatorProtocol` (the registered
        flavors are StEM's
        :class:`~repro.online.streaming.StreamingEstimator` and the
        particle filter's :class:`~repro.online.smc.SMCEstimator`; the
        service never branches on which).  Its ``stream`` is normally a
        :class:`~repro.live.stream.LiveTraceStream` (anything satisfying
        the :class:`~repro.online.streaming.TraceStream` contract works —
        a replay source just finishes immediately after a seal-equivalent
        full reveal).
    checkpoint_path:
        Where to snapshot service state (``None`` disables checkpointing).
    checkpoint_every:
        Published windows between snapshots.
    poll_interval:
        Fallback wait (seconds) between scheduling checks when the stream
        offers no progress notification.
    anomaly_threshold:
        Robust z-score above which a published window is flagged (see
        :func:`~repro.online.anomaly.detect_anomalies`).
    """

    def __init__(
        self,
        estimator: StreamEstimatorProtocol,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 1,
        poll_interval: float = 0.25,
        anomaly_threshold: float = 4.0,
    ) -> None:
        if checkpoint_every < 1:
            raise IngestError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.estimator = estimator
        self.stream = estimator.stream
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        self.poll_interval = float(poll_interval)
        self.anomaly_threshold = float(anomaly_threshold)
        self._lock = threading.RLock()
        self._published: list[StreamEstimate] = []
        #: Wall-clock publish time per window — display/benchmark use only.
        #: NTP steps can move this clock, so latency metrics never derive
        #: from it; see :attr:`publish_latency`.
        self.published_at: list[float] = []
        #: Monotonic pickup-to-publish duration per window (nan for
        #: windows restored from a checkpoint).  Index-aligned with
        #: :attr:`published_at`.
        self.publish_latency: list[float] = []
        self._anomalies = []
        self._windows_since_checkpoint = 0
        # Serializes window processing against snapshot *capture*: a
        # snapshot taken mid-window could capture a spawned-but-uncounted
        # seed child, silently breaking the bitwise-restore guarantee.
        # Serialization and disk I/O happen off this lock (see
        # _write_snapshot), so a slow checkpoint write never stalls
        # window publishing.
        self._window_lock = threading.Lock()
        # Serializes checkpoint writers on the temp file and orders their
        # sequence numbers, so a stale snapshot never overwrites a newer
        # one on disk.
        self._ckpt_io_lock = threading.Lock()
        self._ckpt_seq = 0
        self._ckpt_written = 0
        self._ckpt_pending: tuple[int, dict] | None = None
        self._ckpt_cond = threading.Condition()
        self._ckpt_stop = threading.Event()
        self._ckpt_thread: threading.Thread | None = None
        self._ckpt_error: str | None = None
        #: Size in bytes of the last snapshot written (None before one).
        self.last_checkpoint_bytes: int | None = None
        #: What the newest snapshot **on disk** covers: the cumulative
        #: count of records successfully ingested before its capture, and
        #: the windows published by then.  A router uses the count as a
        #: logical clock to trim its replay spool — anything at or below
        #: ``n_seen`` is durable and need never be replayed.
        self.last_checkpoint_meta: dict | None = None
        #: Cumulative records accepted by :meth:`ingest` (successful calls
        #: only, so a router acking batches counts the same clock).
        self.n_records_seen = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._status = "idle"
        self._error: str | None = None
        if telemetry.enabled():
            # Pre-register the service's metric names so a metrics reply
            # carries the full surface from the first scrape on.
            reg = telemetry.get_registry()
            reg.counter("repro_service_windows_published_total")
            reg.counter("repro_service_anomalies_total")
            reg.counter("repro_service_records_seen_total")
            reg.histogram("repro_service_publish_seconds")
            reg.histogram("repro_service_checkpoint_seconds")
            reg.gauge("repro_service_checkpoint_bytes")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "EstimatorService":
        """Launch the supervisor thread (idempotent while running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self._status = "serving"
            self._thread = threading.Thread(
                target=self._loop, name="repro-estimator-service", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float | None = 30.0) -> None:
        """Stop the supervisor, final-checkpoint, and release the pool."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._ckpt_stop.set()
        with self._ckpt_cond:
            self._ckpt_cond.notify_all()
        writer = self._ckpt_thread
        if writer is not None:
            writer.join(timeout)
        with self._lock:
            if self._status == "serving":
                self._status = "stopped"

    def join(self, timeout: float | None = None) -> None:
        """Wait for the supervisor to finish draining a sealed stream."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def __enter__(self) -> "EstimatorService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # The supervisor loop.
    # ------------------------------------------------------------------

    def _next_ready_start(self) -> float | None:
        """Start of the next window whose population is final, else None.

        The grid is the replay grid (window *i* at ``i * step`` while
        ``i * step < horizon``); an unsealed stream additionally holds a
        window back until the horizon clears its *end*, because tasks
        with entries inside a still-open window could yet be revealed.
        """
        est = self.estimator
        horizon = self.stream.horizon
        if horizon <= 0.0:
            return None
        t0 = est.n_windows_done * est.step
        if t0 >= horizon:
            return None
        sealed = getattr(self.stream, "sealed", True)
        if not sealed and horizon < t0 + est.window:
            return None
        return t0

    def _loop(self) -> None:
        try:
            while not self._stop.is_set():
                # Read `sealed` BEFORE scanning the grid: seal is monotone,
                # so a seal landing after this read only makes more windows
                # ready — caught next iteration.  Reading it after the scan
                # would race: a seal between the two could grow the grid
                # and still let this iteration declare "finished" with
                # windows left unprocessed.  (Streams without a seal
                # notion — a replay source — are treated as always-sealed,
                # same as in _next_ready_start.)
                sealed = getattr(self.stream, "sealed", True)
                t0 = self._next_ready_start()
                if t0 is not None:
                    est = self.estimator
                    started = time.monotonic()
                    with telemetry.window_trace(
                        est.n_windows_done, t0, t0 + est.window
                    ):
                        with self._window_lock:
                            estimate = est.process_window(t0)
                        with telemetry.phase("publish"):
                            self._publish(estimate, started=started)
                    continue
                if sealed:
                    with self._lock:
                        self._status = "finished"
                    break
                self._wait_for_progress()
        except Exception as exc:  # noqa: BLE001 — surfaced via health()
            with self._lock:
                self._status = "failed"
                self._error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
        finally:
            try:
                self._checkpoint_now()
            finally:
                self.estimator.close()

    def _wait_for_progress(self) -> None:
        waiter = getattr(self.stream, "wait_for_progress", None)
        if waiter is not None:
            waiter(self.poll_interval)
        else:
            time.sleep(self.poll_interval)

    def _publish(self, estimate: StreamEstimate, started: float | None = None) -> None:
        latency = (
            float("nan") if started is None else time.monotonic() - started
        )
        n_new_anomalies = 0
        with self._lock:
            self._published.append(estimate)
            self.published_at.append(time.time())
            self.publish_latency.append(latency)
            # Judge only the fresh window, against a bounded rolling tail:
            # older windows were judged when they were the fresh one (the
            # detector's per-window verdict depends only on its preceding
            # history, so accumulated flags never change retroactively).
            offset = max(0, len(self._published) - ANOMALY_TAIL_WINDOWS)
            newest = len(self._published) - 1 - offset
            for report in detect_anomalies(
                self._published[offset:], threshold=self.anomaly_threshold
            ):
                if report.window_index == newest:
                    self._anomalies.append(
                        replace(report, window_index=report.window_index + offset)
                    )
                    n_new_anomalies += 1
            self._windows_since_checkpoint += 1
            due = self._windows_since_checkpoint >= self.checkpoint_every
        if telemetry.enabled():
            telemetry.counter("repro_service_windows_published_total").inc()
            if n_new_anomalies:
                telemetry.counter("repro_service_anomalies_total").inc(
                    n_new_anomalies
                )
            if started is not None:
                telemetry.histogram("repro_service_publish_seconds").observe(
                    latency
                )
        if due:
            # Capture now, write in the background: publishing must not
            # wait on checkpoint I/O.
            self._checkpoint_now(wait=False)

    # ------------------------------------------------------------------
    # Query API (thread-safe; what the ingestion server exposes).
    # ------------------------------------------------------------------

    def estimates(self, since: int = 0) -> list[dict]:
        """Published window estimates from index *since* on, as records
        with their anomaly flags attached."""
        since = int(since)
        if since < 0:
            # A negative index would silently slice the tail while the
            # records still claim absolute window indices — reject it.
            raise IngestError(
                f"since must be a nonnegative window index, got {since}"
            )
        with self._lock:
            flagged = {(r.window_index, r.queue) for r in self._anomalies}
            out = []
            for i, w in enumerate(self._published[since:], start=since):
                record = estimate_to_record(w, i)
                record["anomalous_queues"] = sorted(
                    q for (idx, q) in flagged if idx == i
                )
                out.append(record)
            return out

    def anomalies(self) -> list[dict]:
        """Currently flagged (window, queue) anomaly reports."""
        with self._lock:
            return [
                {
                    "queue": r.queue,
                    "window_index": r.window_index,
                    "t_start": r.t_start,
                    "t_end": r.t_end,
                    "value": r.value,
                    "baseline": r.baseline,
                    "z_score": r.z_score,
                }
                for r in self._anomalies
            ]

    def windows(self) -> list[StreamEstimate]:
        """The raw published estimates (in-process consumers and tests)."""
        with self._lock:
            return list(self._published)

    def health(self) -> dict:
        """One versioned status record (the ``health`` command).

        Schema 1 nests the record into ``service`` / ``stream`` /
        ``workers`` sections (``stream`` and ``workers`` are ``None``
        when the service has no live stream / no worker pool; the wire
        server adds a ``server`` section).  Every pre-schema flat key is
        still mirrored at the top level for one release — see
        :func:`flatten_health`.
        """
        with self._lock:
            status = self._status
            error = self._error
            n_published = len(self._published)
            n_anomalies = len(self._anomalies)
        stream = self.stream
        service = {
            "status": status,
            "error": error,
            "windows_published": n_published,
            "anomalies": n_anomalies,
            "horizon": float(stream.horizon),
            "checkpointing": self.checkpoint_path is not None,
            "checkpoint_bytes": self.last_checkpoint_bytes,
            "checkpoint_error": self._ckpt_error,
            "checkpoint_meta": self.last_checkpoint_meta,
            "n_records_seen": self.n_records_seen,
        }
        stream_section = None
        if isinstance(stream, LiveTraceStream):
            stream_section = {
                "watermark": float(stream.watermark),
                "sealed": stream.sealed,
                "n_revealed": stream.n_revealed,
                "n_pending": stream.n_pending,
                "n_admitted": stream.n_admitted,
                "n_duplicates": stream.n_duplicates,
                "n_late": stream.n_late,
                "n_stragglers": stream.n_stragglers,
                "n_dropped_tasks": stream.n_dropped_tasks,
                "n_retained_tasks": stream.n_retained_tasks,
                "n_compacted_tasks": stream.n_compacted_tasks,
            }
        record = {
            "schema": 1,
            "service": service,
            "stream": stream_section,
            # Shard-worker liveness (None when the estimator is unpooled):
            # a monitoring consumer sees a killed worker here before the
            # next window trips over it, and the relaunch tally after.
            "workers": self.estimator.pool_stats(),
        }
        return flatten_health(record)

    def metrics_report(self, fmt: str = "snapshot"):
        """This process's telemetry (the ``metrics`` wire command).

        ``fmt="snapshot"`` returns the structured report dict (what the
        router merges and ``repro top`` consumes); ``"json"`` and
        ``"prometheus"`` return rendered text.
        """
        return render_metrics_report(telemetry.report(), fmt)

    # Ingestion passthroughs, so the server needs only this one object.

    def ingest(self, records: list[dict]) -> dict:
        """Admit measurement records into the live stream."""
        if not isinstance(self.stream, LiveTraceStream):
            raise IngestError("this service's stream does not accept ingestion")
        summary = self.stream.ingest(records)
        # Count only *after* the stream accepted the whole batch, so a
        # snapshot can never claim records the stream does not hold (the
        # safe direction: a snapshot between the ingest and this increment
        # merely makes a replayer re-send records the stream will drop as
        # duplicates).
        with self._lock:
            self.n_records_seen += len(records)
            # The clock rides the ack: a router tags its replay-spool
            # entries with it and compares against checkpoint coverage.
            summary["n_seen"] = self.n_records_seen
        if telemetry.enabled():
            telemetry.counter("repro_service_records_seen_total").inc(
                len(records)
            )
        return summary

    def advance_watermark(self, t: float) -> float:
        """Advance the live stream's watermark."""
        if not isinstance(self.stream, LiveTraceStream):
            raise IngestError("this service's stream has no watermark")
        return self.stream.advance_watermark(t)

    def seal(self) -> dict:
        """Seal the live stream (end of input)."""
        if not isinstance(self.stream, LiveTraceStream):
            raise IngestError("this service's stream cannot be sealed")
        return self.stream.seal()

    # ------------------------------------------------------------------
    # Checkpoint / restore.
    # ------------------------------------------------------------------

    def _build_snapshot(self) -> tuple[int, dict]:
        """Capture service state under the locks — no serialization, no
        I/O — and stamp it with a monotone sequence number."""
        with self._window_lock:  # never snapshot a half-processed window
            with self._lock:
                snapshot = {
                    "version": 1,
                    "stream": self.stream.snapshot_state(),
                    "estimator": self.estimator.state_dict(),
                    "published": list(self._published),
                    "service": {
                        "checkpoint_every": self.checkpoint_every,
                        "poll_interval": self.poll_interval,
                        "anomaly_threshold": self.anomaly_threshold,
                    },
                    "ingest": {"n_seen": self.n_records_seen},
                }
                self._windows_since_checkpoint = 0
                self._ckpt_seq += 1
                return self._ckpt_seq, snapshot

    def _write_snapshot(self, seq: int, snapshot: dict) -> None:
        """Serialize and atomically replace the checkpoint file.

        Runs off the window/publish locks, so window processing proceeds
        while the snapshot is on its way to disk.  Stale snapshots (a
        newer sequence already written) are dropped instead of clobbering
        fresher state.
        """
        with self._ckpt_io_lock:
            if seq <= self._ckpt_written:
                return
            with telemetry.phase("checkpoint"):
                t_start = time.perf_counter()
                payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
                tmp = f"{self.checkpoint_path}.tmp"
                with open(tmp, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, self.checkpoint_path)
                self._ckpt_written = seq
                self.last_checkpoint_bytes = len(payload)
                # Meta describes the snapshot that *reached disk* — never the
                # captured-but-unwritten one a crash would lose.
                self.last_checkpoint_meta = {
                    "n_seen": snapshot.get("ingest", {}).get("n_seen", 0),
                    "windows": len(snapshot.get("published", ())),
                }
            if telemetry.enabled():
                telemetry.histogram("repro_service_checkpoint_seconds").observe(
                    time.perf_counter() - t_start
                )
                telemetry.gauge("repro_service_checkpoint_bytes").set(
                    self.last_checkpoint_bytes
                )

    def _checkpoint_now(self, wait: bool = True) -> None:
        if self.checkpoint_path is None:
            return
        if not isinstance(self.stream, LiveTraceStream):
            return
        seq, snapshot = self._build_snapshot()
        if wait:
            self._write_snapshot(seq, snapshot)
            return
        with self._ckpt_cond:
            self._ckpt_pending = (seq, snapshot)  # newest snapshot wins
            self._ensure_ckpt_writer()
            self._ckpt_cond.notify_all()

    def _ensure_ckpt_writer(self) -> None:
        if self._ckpt_thread is not None and self._ckpt_thread.is_alive():
            return
        self._ckpt_thread = threading.Thread(
            target=self._ckpt_loop,
            name="repro-estimator-checkpoint",
            daemon=True,
        )
        self._ckpt_thread.start()

    def _ckpt_loop(self) -> None:
        while True:
            with self._ckpt_cond:
                while (
                    self._ckpt_pending is None
                    and not self._ckpt_stop.is_set()
                ):
                    self._ckpt_cond.wait(0.25)
                pending, self._ckpt_pending = self._ckpt_pending, None
            if pending is None:  # stop requested and the queue is drained
                return
            try:
                self._write_snapshot(*pending)
            except Exception as exc:  # noqa: BLE001 — surfaced via health()
                with self._lock:
                    self._ckpt_error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()

    def checkpoint(self) -> None:
        """Force a synchronous snapshot now (also runs on stop/finish)."""
        self._checkpoint_now()

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        transport=None,
        checkpoint_path: str | None = None,
        **overrides,
    ) -> "EstimatorService":
        """Rebuild a service (stream + estimator + published estimates)
        from a snapshot written by :meth:`checkpoint`.

        The restored estimator continues the snapshot's per-window seed
        stream exactly, so windows processed after the restart are bitwise
        the ones the uninterrupted service would have published.  Pass
        *transport* to rebuild socket-backed shard workers; *overrides*
        replace stored service options (``checkpoint_every`` etc.).
        By default the restored service keeps checkpointing to *path*.
        """
        with open(path, "rb") as fh:
            snapshot = pickle.load(fh)
        if snapshot.get("version") != 1:
            raise IngestError(
                f"unrecognized checkpoint version in {path!r}: "
                f"{snapshot.get('version')!r}"
            )
        stream = LiveTraceStream.from_state(snapshot["stream"])
        est_state = snapshot["estimator"]
        # Dispatch on the estimator name the checkpoint carries (older
        # snapshots predate the registry and were always StEM); the
        # config mapping may be any checkpoint version — EstimatorConfig
        # fills fields the capturing build did not have yet.
        estimator_cls = get_estimator(est_state.get("estimator", "stem"))
        estimator = estimator_cls(
            stream,
            transport=transport,
            config=EstimatorConfig.from_state(est_state["config"]),
        )
        estimator.load_state_dict(est_state)
        options = dict(snapshot["service"])
        options.update(overrides)
        service = cls(
            estimator,
            checkpoint_path=path if checkpoint_path is None else checkpoint_path,
            **options,
        )
        service._published = list(snapshot["published"])
        service.n_records_seen = snapshot.get("ingest", {}).get("n_seen", 0)
        # The restored state *is* the newest on-disk snapshot.
        service.last_checkpoint_meta = {
            "n_seen": service.n_records_seen,
            "windows": len(service._published),
        }
        # Publish times and latencies are per process lifetime;
        # pre-restart windows get nan so both lists stay index-aligned
        # with the published windows.
        service.published_at = [float("nan")] * len(service._published)
        service.publish_latency = [float("nan")] * len(service._published)
        service._anomalies = detect_anomalies(
            service._published, threshold=service.anomaly_threshold
        )
        return service
