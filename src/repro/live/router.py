"""Shared-nothing multi-service ingest tier behind one address.

One :class:`~repro.live.service.EstimatorService` owns one assembler
lock, so ingest throughput tops out at a single process no matter how
many clients ship records.  :class:`IngestRouter` scales past that by
partitioning the ingest keyspace across N independent service
*processes* — shared-nothing: each partition owns its own
:class:`~repro.live.stream.LiveTraceStream`, its own
:class:`~repro.online.streaming.StreamingEstimator` (with its own shard
workers), and its own checkpoint file — while clients keep seeing one
``LiveClient``-compatible address: the router implements the same
command surface the single service does, so ``LiveServer(router)``
serves the whole tier over the existing framed-HMAC protocol, and the
router itself speaks that same protocol down to every partition.

**Keyspace partitioning.**  The unit of placement is a *task*, keyed by
its entry slot (the queue-0 event counter, which is globally dense:
0, 1, 2, ...).  Slots are striped block-cyclically:
``partition = (slot // block) % N`` — the streaming analogue of
:func:`~repro.inference.shard.partition_tasks`' entry-contiguous blocks:
tasks that enter the system together (and therefore interact in the
frozen queue orders) land on the same partition, while steady load still
rotates across all N at block granularity.  Because every partition's
sub-stream must itself present a dense entry prefix, the router rebases
each entry record's counter to the partition-local slot
(:func:`rebase_slot` — a pure function of the global slot, so no
cross-partition coordination and no reordering).  Inner-queue records
keep their global counters: a restriction of a per-queue total order is
still a total order, which is all assembly needs.  Records that arrive
before their task's entry record are parked in a bounded pending buffer
and flushed the moment the entry record names their owner.

**Fault tolerance.**  A supervisor thread probes every partition:
process liveness via the child handle, service health over the wire.  A
dead service process is restarted from its checkpoint and the router
replays its *spool* — a bounded per-partition log of acked ingest
batches, trimmed as checkpoints land (each partition's health reports
the cumulative ingest count its newest on-disk snapshot covers, so the
router drops exactly the entries that are already durable).  Replayed
duplicates are dropped by the stream's at-least-once dedup, and the
restored estimator continues its per-window seed stream, so the windows
published after a crash are bitwise the windows the uninterrupted run
would have published.  Shard workers *inside* a partition are covered
one layer down: a kill -9'd worker shuts its warm pool, and the
streaming estimator relaunches the pool and re-runs the window from the
same seed child (``StreamingEstimator.worker_retries``).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from collections import deque

import inspect

from repro import telemetry
from repro.errors import IngestError, ReproError
from repro.live.server import DEFAULT_AUTHKEY, LiveClient, LiveServer
from repro.live.service import (
    EstimatorService,
    flatten_health,
    render_metrics_report,
)
from repro.live.stream import LiveTraceStream
from repro.online import EstimatorConfig, estimator_config_keys, get_estimator
from repro.rng import as_seed_sequence

#: Entry slots per stripe block (see module docstring).  Tasks entering
#: within one block stay together on one partition.
DEFAULT_BLOCK = 32


def _stream_keys() -> tuple[str, ...]:
    """Stream-construction keys accepted in a router ``service_config``.

    Derived from :class:`~repro.live.stream.LiveTraceStream`'s own
    signature (everything but ``n_queues``, which the router requires
    explicitly) — a new stream knob is routable without touching this
    module.  Estimator keys come from
    :func:`~repro.online.config.estimator_config_keys` the same way.
    """
    params = inspect.signature(LiveTraceStream.__init__).parameters
    return tuple(
        name for name in params if name not in ("self", "n_queues")
    )


#: Service-construction keys accepted in a router ``service_config``.
_SERVICE_KEYS = ("checkpoint_every", "poll_interval", "anomaly_threshold")

#: Ingest-summary keys the router sums across partition replies.
_SUMMARY_KEYS = ("admitted", "duplicates", "late", "stragglers",
                 "dropped_tasks", "resolved_slots")

#: Health counters summed across partitions into the merged record.
_HEALTH_SUMS = (
    "windows_published", "anomalies", "n_revealed", "n_pending",
    "n_admitted", "n_duplicates", "n_late", "n_stragglers",
    "n_dropped_tasks", "n_retained_tasks", "n_compacted_tasks",
    "n_records_seen",
)


def entry_partition(slot: int, n_partitions: int, block: int) -> int:
    """Which partition owns global entry slot *slot* (block-cyclic)."""
    return (slot // block) % n_partitions


def rebase_slot(slot: int, n_partitions: int, block: int) -> int:
    """The partition-local entry slot for global slot *slot*.

    Within its owner partition, slots enumerate densely (0, 1, 2, ...)
    in global-slot order: stripe cycle ``slot // (block * n_partitions)``
    contributes one block of ``block`` consecutive local slots.
    """
    cycle, offset = divmod(slot, block * n_partitions)
    return cycle * block + offset % block


def _partition_service_main(config, checkpoint_path, restore, authkey, conn):
    """Child entry point: one partition's stream + estimator + server.

    Reports ``("ready", address)`` (or ``("error", message)``) over
    *conn*, then serves until a ``shutdown`` command arrives or the
    parent process disappears (an orphaned partition must not outlive
    its router).
    """
    try:
        if restore and checkpoint_path and os.path.exists(checkpoint_path):
            service = EstimatorService.from_checkpoint(checkpoint_path)
        else:
            stream = LiveTraceStream(
                n_queues=config["n_queues"],
                **{k: config[k] for k in _stream_keys() if k in config},
            )
            estimator_cls = get_estimator(config.get("estimator", "stem"))
            estimator = estimator_cls(
                stream,
                random_state=config.get("random_state"),
                config=EstimatorConfig.from_mapping(config),
            )
            service = EstimatorService(
                estimator,
                checkpoint_path=checkpoint_path,
                **{k: config[k] for k in _SERVICE_KEYS if k in config},
            )
        server = LiveServer(service, authkey=authkey)
    except Exception as exc:  # noqa: BLE001 — must cross the pipe
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    with service.start(), server:
        conn.send(("ready", server.address))
        conn.close()
        parent = multiprocessing.parent_process()
        while not server.wait_for_shutdown(0.5):
            if parent is not None and not parent.is_alive():
                break


class _PartitionHandle:
    """Router-side handle of one partition: process, client, spool."""

    def __init__(self, index, config, checkpoint_path, authkey,
                 start_timeout) -> None:
        self.index = index
        self.config = config
        self.checkpoint_path = checkpoint_path
        self.authkey = authkey
        self.start_timeout = float(start_timeout)
        self.lock = threading.RLock()
        self.process = None
        self.client: LiveClient | None = None
        self.address: tuple[str, int] | None = None
        #: Acked ingest batches not yet known to be covered by an on-disk
        #: checkpoint, as ``(service ingest clock after the ack, batch)``.
        self.spool: deque[tuple[int, list]] = deque()
        self.spool_records = 0
        self.n_restarts = 0
        self.n_spool_evicted = 0

    def spawn(self, restore: bool) -> None:
        """Start (or restart) the partition process and connect to it."""
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe()
        # NOT daemonic: the partition process spawns shard workers of its
        # own; orphan cleanup is the parent-liveness watch in the child.
        proc = ctx.Process(
            target=_partition_service_main,
            args=(self.config, self.checkpoint_path, restore,
                  self.authkey, child_conn),
            name=f"repro-partition-{self.index}",
        )
        proc.start()
        child_conn.close()
        deadline = time.monotonic() + self.start_timeout
        try:
            while True:
                if parent_conn.poll(0.05):
                    try:
                        kind, payload = parent_conn.recv()
                    except EOFError:
                        proc.join(1.0)
                        raise IngestError(
                            f"partition {self.index} service died before "
                            f"reporting an address (exit code "
                            f"{proc.exitcode})"
                        ) from None
                    break
                if not proc.is_alive():
                    proc.join()
                    raise IngestError(
                        f"partition {self.index} service exited with code "
                        f"{proc.exitcode} before reporting an address "
                        "(crash during startup)"
                    )
                if time.monotonic() > deadline:
                    proc.terminate()
                    raise IngestError(
                        f"partition {self.index} service did not come up "
                        f"within {self.start_timeout:.0f}s"
                    )
        finally:
            parent_conn.close()
        if kind != "ready":
            proc.join(1.0)
            raise IngestError(
                f"partition {self.index} service failed to start: {payload}"
            )
        self.process = proc
        self.address = payload
        self.client = LiveClient(self.address, authkey=self.authkey)

    def stop(self, graceful: bool = True) -> None:
        """Shut the partition down; idempotent, never raises."""
        client, self.client = self.client, None
        if client is not None:
            if graceful:
                try:
                    client.shutdown()
                except (IngestError, OSError):
                    pass
            client.close()
        proc, self.process = self.process, None
        if proc is not None:
            proc.join(5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)

    def trim_spool(self, covered: int) -> None:
        """Drop spool entries an on-disk checkpoint already covers."""
        while self.spool and self.spool[0][0] <= covered:
            _, batch = self.spool.popleft()
            self.spool_records -= len(batch)


class IngestRouter:
    """Partition live ingestion across N supervised service processes.

    Implements the same command surface as
    :class:`~repro.live.service.EstimatorService` (``ingest`` /
    ``advance_watermark`` / ``seal`` / ``estimates`` / ``anomalies`` /
    ``health``), so ``LiveServer(router)`` exposes the whole tier at one
    address and any ``LiveClient`` talks to it unchanged.

    Parameters
    ----------
    n_partitions:
        Independent service processes to run.
    service_config:
        Per-partition construction options: ``n_queues`` and ``window``
        are required; optional stream keys (``lateness`` /
        ``max_pending`` / ``retain``), estimator keys (``step``,
        ``stem_iterations``, ``min_observed_tasks``, ``shards``,
        ``shard_workers``, ``repartition``, ``warm_workers``), service
        keys (``checkpoint_every``, ``poll_interval``,
        ``anomaly_threshold``), and ``random_state`` — the base seed,
        from which each partition receives its own spawned child, so a
        tier restarted with the same seed reproduces its estimates.
    block:
        Entry slots per stripe block (placement granularity).
    checkpoint_dir:
        Directory for per-partition checkpoint files
        (``partition-<i>.ckpt``); ``None`` disables checkpointing —
        a crashed partition then restarts empty and replays whatever the
        spool still holds.
    authkey:
        Shared HMAC secret for the router→service connections (give the
        front :class:`~repro.live.server.LiveServer` its own).
    max_spool_records:
        Per-partition replay-spool bound.  Entries evicted over the
        bound are counted (``n_spool_evicted`` in :meth:`health`): a
        crash after an eviction loses at most those records.
    max_pending_records:
        Bound on records parked while their task's entry record has not
        arrived; exceeding it is backpressure (an ``IngestError``).
    probe_interval:
        Seconds between supervisor liveness/health probes.
    start_timeout:
        Seconds a partition process gets to come up.
    """

    def __init__(
        self,
        n_partitions: int,
        service_config: dict,
        block: int = DEFAULT_BLOCK,
        checkpoint_dir: str | None = None,
        authkey: bytes = DEFAULT_AUTHKEY,
        max_spool_records: int = 100_000,
        max_pending_records: int = 100_000,
        probe_interval: float = 1.0,
        start_timeout: float = 60.0,
    ) -> None:
        if n_partitions < 1:
            raise IngestError(
                f"need at least one partition, got {n_partitions}"
            )
        if block < 1:
            raise IngestError(f"block must be >= 1, got {block}")
        for key in ("n_queues", "window"):
            if key not in service_config:
                raise IngestError(f"service_config must provide {key!r}")
        unknown = set(service_config) - {
            "n_queues", "random_state", "estimator",
            *_stream_keys(), *estimator_config_keys(), *_SERVICE_KEYS,
        }
        if unknown:
            raise IngestError(
                f"unknown service_config keys: {sorted(unknown)}"
            )
        if "estimator" in service_config:
            get_estimator(service_config["estimator"])  # validate eagerly
        self.n_partitions = int(n_partitions)
        self.block = int(block)
        self.checkpoint_dir = checkpoint_dir
        self.max_spool_records = int(max_spool_records)
        self.max_pending_records = int(max_pending_records)
        self.probe_interval = float(probe_interval)
        seeds = as_seed_sequence(
            service_config.get("random_state")
        ).spawn(self.n_partitions)
        self._partitions: list[_PartitionHandle] = []
        for i in range(self.n_partitions):
            config = dict(service_config)
            config["random_state"] = seeds[i]
            path = None
            if checkpoint_dir is not None:
                path = os.path.join(checkpoint_dir, f"partition-{i}.ckpt")
            self._partitions.append(
                _PartitionHandle(i, config, path, bytes(authkey),
                                 start_timeout)
            )
        # Routing state: which partition owns each task, plus records
        # parked until their task's entry record names an owner.
        self._route_lock = threading.Lock()
        self._owner: dict[int, int] = {}
        self._parked: dict[int, list[dict]] = {}
        self._n_parked = 0
        self._watermark = 0.0
        self._sealed = False
        self.n_records_routed = 0
        self.n_unroutable = 0
        self.n_restarts = 0
        self._stop = threading.Event()
        self._probe_thread: threading.Thread | None = None
        self._probe_error: str | None = None
        self._started = False
        if telemetry.enabled():
            self._register_metrics()

    def _register_metrics(self) -> None:
        """Pre-register the router's metric surface (weakref-bound gauges
        so a closed router does not linger in the registry)."""
        telemetry.counter("repro_router_records_routed_total")
        telemetry.counter("repro_router_unroutable_total")
        telemetry.counter("repro_router_spool_evicted_total")
        telemetry.counter("repro_router_restarts_total")
        ref = weakref.ref(self)

        def _parked() -> float:
            router = ref()
            if router is None:
                return float("nan")
            with router._route_lock:
                return float(router._n_parked)

        def _spool() -> float:
            router = ref()
            if router is None:
                return float("nan")
            return float(sum(h.spool_records for h in router._partitions))

        telemetry.gauge_callback("repro_router_parked_records", _parked)
        telemetry.gauge_callback("repro_router_spool_records", _spool)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "IngestRouter":
        """Spawn every partition service and the supervisor (idempotent)."""
        if self._started:
            return self
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        started = []
        try:
            for handle in self._partitions:
                handle.spawn(restore=False)
                started.append(handle)
        except BaseException:
            for handle in started:
                handle.stop(graceful=False)
            raise
        self._started = True
        self._stop.clear()
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="repro-router-probe", daemon=True
        )
        self._probe_thread.start()
        return self

    def close(self) -> None:
        """Stop the supervisor and every partition service; idempotent."""
        self._stop.set()
        thread, self._probe_thread = self._probe_thread, None
        if thread is not None:
            thread.join(self.probe_interval + 5.0)
        for handle in self._partitions:
            with handle.lock:
                handle.stop()
        self._started = False

    def __enter__(self) -> "IngestRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Supervision: liveness probes, restart, spool trimming.
    # ------------------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval):
            for p in range(self.n_partitions):
                if self._stop.is_set():
                    return
                handle = self._partitions[p]
                # Never block a probe behind an in-flight forward (or an
                # in-progress restart) — skip and re-probe next tick.
                if not handle.lock.acquire(blocking=False):
                    continue
                try:
                    self._probe_one(handle)
                except (IngestError, ReproError, OSError) as exc:
                    self._probe_error = f"partition {p}: {exc}"
                finally:
                    handle.lock.release()

    def _probe_one(self, handle: _PartitionHandle) -> None:
        if self._stop.is_set():
            return
        if (
            handle.process is None
            or not handle.process.is_alive()
            or handle.client is None
            or handle.client.dead is not None
        ):
            self._restore_partition(handle)
            return
        health = handle.client.health()
        meta = health.get("checkpoint_meta") or {}
        handle.trim_spool(int(meta.get("n_seen", 0)))

    def _restore_partition(self, handle: _PartitionHandle) -> None:
        """Restart a dead partition from its checkpoint, replay the spool.

        Caller holds ``handle.lock``.  The service resumes from its
        newest on-disk snapshot; every spooled batch the snapshot does
        not cover is re-shipped in order (duplicates are dropped by the
        stream), then the router's watermark — and seal, if the tier is
        sealed — is re-asserted, so the restored partition's windows
        continue bitwise where the uninterrupted run would have.
        """
        handle.n_restarts += 1
        self.n_restarts += 1
        if telemetry.enabled():
            telemetry.counter("repro_router_restarts_total").inc()
        handle.stop(graceful=False)
        handle.spawn(restore=True)
        try:
            health = handle.client.health()
            covered = int(
                (health.get("checkpoint_meta") or {}).get("n_seen", 0)
            )
        except IngestError:
            covered = 0
        handle.trim_spool(covered)
        # Replay, re-tagging each batch with the restored service's own
        # ingest clock so future checkpoint coverage compares on one
        # timeline (the pre-crash clock may have counted retried batches
        # the restored clock never sees).
        replayed: deque[tuple[int, list]] = deque()
        for _, batch in handle.spool:
            summary = handle.client.ingest(batch)
            replayed.append((int(summary.get("n_seen", 0)), batch))
        handle.spool = replayed
        if self._watermark > 0.0:
            handle.client.advance_watermark(self._watermark)
        if self._sealed:
            handle.client.seal()

    def _forward(self, p: int, method: str, *args):
        """One partition call with crash recovery: a dead connection (or
        process) triggers restore-from-checkpoint + spool replay, then one
        retry; a live service's own refusal (backpressure, bad arguments)
        propagates untouched."""
        handle = self._partitions[p]
        with handle.lock:
            for attempt in (0, 1):
                if (
                    handle.process is None
                    or not handle.process.is_alive()
                    or handle.client is None
                    or handle.client.dead is not None
                ):
                    self._restore_partition(handle)
                try:
                    return getattr(handle.client, method)(*args)
                except IngestError:
                    if handle.client is not None and handle.client.dead is None:
                        raise  # the service answered; its refusal stands
                    if attempt == 1:
                        raise

    # ------------------------------------------------------------------
    # Ingestion (the service-facing command surface).
    # ------------------------------------------------------------------

    def _route(self, records) -> dict[int, list[dict]]:
        """Group a batch by owner partition, rebasing entry slots."""
        groups: dict[int, list[dict]] = {}
        with self._route_lock:
            for record in records:
                try:
                    task = record["task"]
                    seq = record["seq"]
                except (TypeError, KeyError):
                    raise IngestError(
                        f"unroutable record (missing task/seq): {record!r}"
                    ) from None
                if seq == 0:
                    try:
                        slot = int(record["counter"])
                    except (KeyError, TypeError, ValueError):
                        raise IngestError(
                            f"entry record without a usable counter: "
                            f"{record!r}"
                        ) from None
                    p = entry_partition(slot, self.n_partitions, self.block)
                    rebased = dict(record)
                    rebased["counter"] = rebase_slot(
                        slot, self.n_partitions, self.block
                    )
                    # First claim wins; a conflicting duplicate still goes
                    # to the same partition, whose stream reports it.
                    self._owner.setdefault(task, p)
                    group = groups.setdefault(self._owner[task], [])
                    group.append(rebased)
                    parked = self._parked.pop(task, None)
                    if parked:
                        self._n_parked -= len(parked)
                        groups.setdefault(self._owner[task], []).extend(parked)
                else:
                    p = self._owner.get(task)
                    if p is None:
                        if self._n_parked >= self.max_pending_records:
                            raise IngestError(
                                f"{self._n_parked} records are parked "
                                "waiting for their tasks' entry records — "
                                "pending bound reached; ship entry records "
                                "(seq 0) first, or back off and retry"
                            )
                        self._parked.setdefault(task, []).append(record)
                        self._n_parked += 1
                    else:
                        groups.setdefault(p, []).append(record)
        return groups

    def ingest(self, records: list[dict]) -> dict:
        """Route a batch to its owner partitions; merge their summaries."""
        if self._sealed:
            raise IngestError("the tier is sealed; no further ingestion")
        groups = self._route(list(records))
        merged = dict.fromkeys(_SUMMARY_KEYS, 0)
        for p, batch in sorted(groups.items()):
            summary = self._forward(p, "ingest", batch)
            for key in _SUMMARY_KEYS:
                merged[key] += int(summary.get(key, 0))
            self._spool(self._partitions[p], batch,
                        int(summary.get("n_seen", 0)))
        n_routed = sum(len(b) for b in groups.values())
        with self._route_lock:
            self.n_records_routed += n_routed
            merged["parked"] = self._n_parked
        if n_routed and telemetry.enabled():
            telemetry.counter(
                "repro_router_records_routed_total"
            ).inc(n_routed)
        return merged

    def _spool(self, handle: _PartitionHandle, batch, clock: int) -> None:
        """Record an acked batch for post-crash replay (bounded)."""
        n_evicted = 0
        with handle.lock:
            handle.spool.append((clock, batch))
            handle.spool_records += len(batch)
            while (
                handle.spool_records > self.max_spool_records
                and len(handle.spool) > 1
            ):
                _, evicted = handle.spool.popleft()
                handle.spool_records -= len(evicted)
                handle.n_spool_evicted += len(evicted)
                n_evicted += len(evicted)
        if n_evicted and telemetry.enabled():
            telemetry.counter(
                "repro_router_spool_evicted_total"
            ).inc(n_evicted)

    def advance_watermark(self, t: float) -> float:
        """Advance every partition's watermark; returns the tier's
        watermark in force (the minimum across partitions)."""
        t = float(t)
        with self._route_lock:
            self._watermark = max(self._watermark, t)
        return min(
            float(self._forward(p, "advance_watermark", t))
            for p in range(self.n_partitions)
        )

    def seal(self) -> dict:
        """Seal every partition; parked records are dropped and counted."""
        with self._route_lock:
            dropped = self._n_parked
            self.n_unroutable += dropped
            self._parked.clear()
            self._n_parked = 0
            self._sealed = True
        if dropped and telemetry.enabled():
            telemetry.counter(
                "repro_router_unroutable_total"
            ).inc(dropped)
        merged: dict = {"unroutable_records": dropped}
        for p in range(self.n_partitions):
            summary = self._forward(p, "seal")
            for key, value in summary.items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        return merged

    # ------------------------------------------------------------------
    # Queries: fan out and merge.
    # ------------------------------------------------------------------

    def estimates(self, since: int = 0) -> list[dict]:
        """Every partition's published windows, merged.

        Records gain ``partition`` (owner) and ``partition_index`` (the
        owner's window index) and are ordered by ``(t_start,
        partition)``; ``index`` is the position in that merged order.
        Because partitions publish independently, a lagging partition's
        window can insert *before* already-seen entries — treat ``since``
        as a convenience over one snapshot and key exact bookkeeping on
        ``(partition, partition_index)``.
        """
        since = int(since)
        if since < 0:
            raise IngestError(
                f"since must be a nonnegative window index, got {since}"
            )
        merged: list[dict] = []
        for p in range(self.n_partitions):
            for record in self._forward(p, "estimates", 0):
                record = dict(record)
                record["partition"] = p
                record["partition_index"] = record.pop("index")
                merged.append(record)
        merged.sort(key=lambda r: (r["t_start"], r["partition"]))
        for i, record in enumerate(merged):
            record["index"] = i
        return merged[since:]

    def anomalies(self) -> list[dict]:
        """Every partition's anomaly reports, tagged and merged."""
        merged: list[dict] = []
        for p in range(self.n_partitions):
            for report in self._forward(p, "anomalies"):
                report = dict(report)
                report["partition"] = p
                merged.append(report)
        merged.sort(key=lambda r: (r["t_start"], r["partition"]))
        return merged

    def health(self) -> dict:
        """One merged health record: tier status, per-partition records,
        and the router's own vital signs."""
        partitions: list[dict] = []
        for p in range(self.n_partitions):
            try:
                partitions.append(self._forward(p, "health"))
            except (IngestError, ReproError, OSError) as exc:
                partitions.append({"status": "unreachable",
                                   "error": str(exc)})
        statuses = [h.get("status") for h in partitions]
        if "failed" in statuses:
            status = "failed"
        elif "unreachable" in statuses:
            status = "degraded"
        elif all(s == "finished" for s in statuses):
            status = "finished"
        elif len(set(statuses)) == 1:
            status = statuses[0]
        else:
            status = "serving"
        sums = {
            key: sum(int(h.get(key) or 0) for h in partitions)
            for key in _HEALTH_SUMS
        }
        service = {
            "status": status,
            "error": next(
                (h["error"] for h in partitions if h.get("error")), None
            ),
            "horizon": max(
                (h.get("horizon", 0.0) for h in partitions), default=0.0
            ),
            "windows_published": sums.pop("windows_published"),
            "anomalies": sums.pop("anomalies"),
            "n_records_seen": sums.pop("n_records_seen"),
        }
        stream_section = {
            "watermark": min(
                (h["watermark"] for h in partitions if "watermark" in h),
                default=0.0,
            ),
            "sealed": all(h.get("sealed", False) for h in partitions),
            **sums,
        }
        record: dict = {
            "schema": 1,
            "service": service,
            "stream": stream_section,
            "workers": None,
        }
        with self._route_lock:
            router = {
                "n_partitions": self.n_partitions,
                "block": self.block,
                "n_records_routed": self.n_records_routed,
                "n_parked": self._n_parked,
                "n_unroutable": self.n_unroutable,
                "n_restarts": self.n_restarts,
                "n_spool_evicted": sum(
                    h.n_spool_evicted for h in self._partitions
                ),
                "spool_records": sum(
                    h.spool_records for h in self._partitions
                ),
                "restarts_per_partition": [
                    h.n_restarts for h in self._partitions
                ],
                "probe_error": self._probe_error,
            }
        record["router"] = router
        record["partitions"] = partitions
        return flatten_health(record)

    def metrics_report(self, fmt: str = "snapshot"):
        """Tier-wide telemetry: every partition's report tagged with a
        ``partition`` provenance label, merged with the router's own.
        A partition that stays unreachable after the usual one-retry
        recovery is skipped — its series resume at the next poll.
        """
        reports: list[dict] = [telemetry.report()]
        for p in range(self.n_partitions):
            try:
                report = self._forward(p, "metrics", "snapshot")
            except (IngestError, ReproError, OSError):
                continue
            report = dict(report)
            report["metrics"] = telemetry.label_metrics(
                report.get("metrics") or [], partition=str(p)
            )
            report["window_traces"] = telemetry.label_traces(
                report.get("window_traces") or [], partition=p
            )
            reports.append(report)
        return render_metrics_report(telemetry.merge_reports(reports), fmt)
