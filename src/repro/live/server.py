"""Threaded ingestion + query server for the live estimation service.

One listener, many client connections, one wire format: every message is
a length-prefixed pickle frame over TCP, and every connection must pass
the same mutual HMAC handshake before any frame crosses — the framing and
handshake machinery is *shared* with the shard-worker transport
(:mod:`repro.inference.transport`), so a deployment that already ships
worker traffic over sockets speaks the ingestion protocol for free.

Protocol: the client sends ``(command, *args)`` tuples and receives
``("ok", result)`` or ``("error", message)``:

``("ingest", records)``
    Admit a batch of measurement records; result is the admission
    summary.  Backpressure surfaces as an ``error`` reply naming it —
    the client backs off and retries.
``("watermark", t)`` / ``("seal",)``
    Advance the stream's lateness promise / declare end of input.
``("estimates", since)`` / ``("anomalies",)`` / ``("health",)``
    Query the published window estimates (with anomaly flags), the
    current anomaly reports, or the service's health record.
``("shutdown",)``
    Ask the process hosting the server to exit its serve loop.

:class:`LiveClient` wraps the client side; ``repro ingest`` and the
examples use nothing else.
"""

from __future__ import annotations

import socket
import threading
import time

from repro import telemetry
from repro.errors import IngestError, ReproError
from repro.inference.transport import (
    SocketEndpoint,
    _master_handshake,
    _worker_handshake,
)

#: Development-only default shared secret.  Anything reachable from an
#: untrusted network MUST run with its own key (frames are pickles; the
#: handshake is what keeps unpickling attacker bytes impossible).
DEFAULT_AUTHKEY = b"repro-live-dev"

#: Commands a connection may issue, mapped to the service methods they call.
COMMANDS = (
    "ingest", "watermark", "seal", "estimates", "anomalies", "health",
    "metrics", "shutdown",
)


class LiveServer:
    """Serve a :class:`~repro.live.service.EstimatorService` over TCP.

    Parameters
    ----------
    service:
        The estimator service commands are dispatched to (it is *not*
        started or stopped by the server — the caller owns its lifecycle).
    host / port:
        Listen address; port 0 picks a free port (read :attr:`address`).
    authkey:
        Shared handshake secret; every client must present the same key.
    handshake_timeout:
        Seconds a dialing connection gets to complete the handshake, so a
        stuck or impostor peer cannot wedge its handler thread forever.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        authkey: bytes = DEFAULT_AUTHKEY,
        handshake_timeout: float = 10.0,
    ) -> None:
        self.service = service
        self.authkey = bytes(authkey)
        self.handshake_timeout = float(handshake_timeout)
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._shutdown_requested = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._endpoints: set[SocketEndpoint] = set()
        self._lock = threading.Lock()
        #: Connections dropped for failing the handshake (misconfigured
        #: clients show up here instead of as silent hangs).
        self.n_rejected = 0
        #: Commands that raised something *other* than the protocol's
        #: expected error types.  Each one is a bug in the service, but it
        #: must surface as an ``("error", ...)`` reply plus this counter —
        #: never as a dead handler thread with the client wedged in recv.
        self.n_dispatch_errors = 0
        #: Human-readable description of the newest unexpected failure.
        self.last_dispatch_error: str | None = None
        if telemetry.enabled():
            reg = telemetry.get_registry()
            for command in COMMANDS:
                reg.counter("repro_server_requests_total", command=command)
            reg.counter("repro_server_dispatch_errors_total")
            reg.counter("repro_server_rejected_connections_total")
            reg.histogram("repro_server_request_seconds")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "LiveServer":
        """Begin accepting connections (idempotent while running)."""
        if self._accept_thread is None or not self._accept_thread.is_alive():
            self._stop.clear()
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-live-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, drop every connection, join handler threads."""
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
        with self._lock:
            endpoints = list(self._endpoints)
            handlers = list(self._handlers)
        for endpoint in endpoints:
            endpoint.close()
        for thread in handlers:
            thread.join(5.0)
        try:
            self._listener.close()
        except OSError:
            pass

    def wait_for_shutdown(self, timeout: float | None = None) -> bool:
        """Block until a client issues ``shutdown`` (True) or timeout."""
        return self._shutdown_requested.wait(timeout)

    def __enter__(self) -> "LiveServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-live-conn", daemon=True,
            )
            with self._lock:
                # Prune finished handlers so an always-on server taking
                # short-lived connections does not accumulate dead Thread
                # objects for its whole lifetime.
                self._handlers = [t for t in self._handlers if t.is_alive()]
                self._handlers.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.handshake_timeout)
        try:
            authenticated = _master_handshake(conn, self.authkey)
        except (EOFError, OSError):
            authenticated = False
        if not authenticated:
            with self._lock:
                self.n_rejected += 1
            if telemetry.enabled():
                telemetry.counter(
                    "repro_server_rejected_connections_total"
                ).inc()
            try:
                conn.close()
            except OSError:
                pass
            return
        conn.settimeout(None)
        endpoint = SocketEndpoint(conn)
        with self._lock:
            self._endpoints.add(endpoint)
        try:
            while not self._stop.is_set():
                try:
                    message = endpoint.recv()
                except (EOFError, OSError):
                    return  # client hung up (or close() pulled the socket)
                reply = self._dispatch(message)
                try:
                    endpoint.send(reply)
                except OSError:
                    return  # client left without reading the reply
        finally:
            with self._lock:
                self._endpoints.discard(endpoint)
            endpoint.close()

    def _dispatch(self, message) -> tuple:
        if (
            not isinstance(message, tuple)
            or not message
            or message[0] not in COMMANDS
        ):
            return ("error", f"unknown command {message!r}; expected one of "
                             f"{COMMANDS}")
        command, *args = message
        reg = telemetry.get_registry()
        if not reg.enabled:
            return self._dispatch_command(command, args)
        reg.counter("repro_server_requests_total", command=command).inc()
        t_start = time.perf_counter()
        try:
            return self._dispatch_command(command, args)
        finally:
            reg.histogram("repro_server_request_seconds").observe(
                time.perf_counter() - t_start
            )

    def _dispatch_command(self, command: str, args: list) -> tuple:
        try:
            if command == "ingest":
                return ("ok", self.service.ingest(*args))
            if command == "watermark":
                return ("ok", self.service.advance_watermark(*args))
            if command == "seal":
                return ("ok", self.service.seal())
            if command == "estimates":
                return ("ok", self.service.estimates(*args))
            if command == "anomalies":
                return ("ok", self.service.anomalies())
            if command == "health":
                record = self.service.health()
                # Attach the wire layer's own vital signs: a monitoring
                # consumer polling health sees handshake rejections and
                # swallowed dispatch failures without a server-side log.
                record["server"] = self.stats()
                return ("ok", record)
            if command == "metrics":
                return ("ok", self.service.metrics_report(*args))
            if command == "shutdown":
                self._shutdown_requested.set()
                return ("ok", "shutting down")
            # A command listed in COMMANDS but not handled above is a
            # programming error; an error reply beats a surprise action.
            return ("error", f"command {command!r} has no handler")
        except ReproError as exc:
            return ("error", str(exc))
        except (TypeError, ValueError) as exc:
            return ("error", f"bad arguments for {command!r}: {exc}")
        except Exception as exc:  # noqa: BLE001 — reply, count, keep serving
            # Anything else is a service bug — but letting it unwind the
            # handler thread would leave the client blocked in recv()
            # until TCP keepalive fires, minutes later.  Reply, record it
            # (health() exposes the tally), and keep the connection alive.
            description = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self.n_dispatch_errors += 1
                self.last_dispatch_error = f"{command}: {description}"
            if telemetry.enabled():
                telemetry.counter("repro_server_dispatch_errors_total").inc()
            return (
                "error",
                f"internal error handling {command!r}: {description}",
            )

    def stats(self) -> dict:
        """The server's own counters (merged into ``health`` replies)."""
        with self._lock:
            return {
                "n_rejected": self.n_rejected,
                "n_dispatch_errors": self.n_dispatch_errors,
                "last_dispatch_error": self.last_dispatch_error,
            }


class LiveClient:
    """Client side of the ingestion/query protocol.

    Connects eagerly, handshakes, and exposes one method per command.
    Handshake failures raise a diagnosable
    :class:`~repro.errors.IngestError` ("wrong authkey" beats a hung
    socket); ``error`` replies raise :class:`IngestError` with the
    server's message.
    """

    def __init__(
        self,
        address: tuple[str, int],
        authkey: bytes = DEFAULT_AUTHKEY,
        timeout: float = 30.0,
    ) -> None:
        self.address = (address[0], int(address[1]))
        sock = socket.create_connection(self.address, timeout=timeout)
        try:
            accepted = _worker_handshake(sock, bytes(authkey))
        except (EOFError, OSError) as exc:
            sock.close()
            raise IngestError(
                f"server at {self.address} closed the connection during the "
                f"handshake ({exc}) — wrong authkey on one side, or the peer "
                "is not a repro-live server"
            ) from None
        if not accepted:
            sock.close()
            raise IngestError(
                f"handshake with {self.address} failed: wrong authkey, or "
                "the peer is not a repro-live server"
            )
        sock.settimeout(None)
        self._endpoint = SocketEndpoint(sock)
        self._lock = threading.Lock()
        #: Why this client is unusable (``None`` while healthy).  Once a
        #: connection has lost a reply or produced a frame that is not a
        #: ``(status, payload)`` pair, the request/reply pairing on the
        #: wire can no longer be trusted — a later call could read the
        #: stale reply of an earlier one — so the client stays dead and
        #: every subsequent call fails fast instead of desyncing quietly.
        self._dead: str | None = None

    @property
    def dead(self) -> str | None:
        """Why this client is permanently unusable (``None`` if healthy)."""
        return self._dead

    def _call(self, *message):
        with self._lock:
            if self._dead is not None:
                raise IngestError(
                    f"client for {self.address} is dead ({self._dead}); "
                    "open a new LiveClient"
                )
            try:
                self._endpoint.send(message)
                reply = self._endpoint.recv()
            except (EOFError, OSError) as exc:
                self._dead = f"connection lost mid-command: {exc}"
                raise IngestError(
                    f"connection to {self.address} lost mid-command ({exc})"
                ) from None
            if (
                not isinstance(reply, tuple)
                or len(reply) != 2
            ):
                self._dead = (
                    f"malformed reply to {message[0]!r}: {reply!r}"
                )
                self._endpoint.close()
                raise IngestError(
                    f"malformed reply from {self.address} to {message[0]!r}: "
                    f"expected a (status, payload) pair, got {reply!r} — "
                    "closing the connection (framing can no longer be trusted)"
                )
            status, payload = reply
        if status != "ok":
            raise IngestError(f"server refused {message[0]!r}: {payload}")
        return payload

    def ingest(self, records: list[dict]) -> dict:
        """Ship a batch of measurement records; returns admission counts."""
        return self._call("ingest", list(records))

    def advance_watermark(self, t: float) -> float:
        """Advance the server's watermark; returns the watermark in force."""
        return self._call("watermark", float(t))

    def seal(self) -> dict:
        """Declare end of input."""
        return self._call("seal")

    def estimates(self, since: int = 0) -> list[dict]:
        """Published window estimates (with anomaly flags) from *since* on."""
        return self._call("estimates", int(since))

    def anomalies(self) -> list[dict]:
        """Current anomaly reports."""
        return self._call("anomalies")

    def health(self) -> dict:
        """The service's health record."""
        return self._call("health")

    def metrics(self, fmt: str = "snapshot"):
        """The serving process's telemetry: a structured snapshot dict,
        or rendered ``"json"`` / ``"prometheus"`` text."""
        return self._call("metrics", str(fmt))

    def shutdown(self) -> None:
        """Ask the serving process to exit its serve loop."""
        self._call("shutdown")

    def close(self) -> None:
        """Close the connection; idempotent."""
        self._endpoint.close()

    def __enter__(self) -> "LiveClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
