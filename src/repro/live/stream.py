"""A :class:`~repro.online.streaming.TraceStream` fed by live ingestion.

:class:`LiveTraceStream` is the live counterpart of
:class:`~repro.online.streaming.ReplayTraceStream`: instead of replaying a
recorded trace it accumulates measurement records
(:mod:`repro.live.records`) as an instrumented system emits them, and
reveals tasks to the estimator only once their entry estimates can never
change again.  Three mechanisms make that honest under real traffic:

**Out-of-order buffer.**  Records land in any order; a task is held until
all of its events (``seq 0 .. k``, the ``last`` flag closing the range)
have arrived, and the assembled trace only ever contains the *contiguous
prefix* of queue-0 counters — a task whose entry counter is 7 cannot be
assembled while counter 6 is still in flight, because its position in the
entry order (which entry-time interpolation depends on) would be wrong.

**Watermark + lateness bound.**  The watermark is the stream's "no
measurement older than this is still coming" promise, advanced by the
reporting side (:meth:`advance_watermark`) and to infinity by
:meth:`seal`.  Records are admitted while their measured times are no
older than ``watermark - lateness``; anything older is a straggler —
counted, dropped, and its task purged (a partial task can never be
assembled).  Task reveal additionally waits for the watermark to pass the
task's entry estimate, so the horizon advances watermark-monotonically.

**Bounded-queue backpressure.**  At most ``max_pending`` records may sit
unassembled; ingestion beyond that raises
:class:`~repro.errors.IngestError` so a fast producer blocks/retries
instead of growing the buffer without bound.

Equivalence contract (pinned by ``tests/live/test_stream.py`` and the
acceptance suite): ingesting a recorded task-id-major trace in order,
with no stragglers, and sealing yields a stream whose reveals, horizon,
and window sub-traces are **bitwise identical** to
:class:`~repro.online.streaming.ReplayTraceStream` over the same trace —
so live window estimates match the replay/windowed path exactly at the
same seed, for any shard-worker count.

Finality argument (why a revealed entry estimate never changes): entry
times are interpolated by position between *anchors* — tasks whose first
real arrival was measured; anchor times are non-decreasing along the
entry order.  Within the contiguous assembled prefix every anchor is
known, interpolation between two anchors touches only those two anchors,
and later tasks only ever append positions after the prefix — so every
estimate at a position no later than the prefix's last anchor is final.
Positions beyond the last anchor would be clamped to it, a value a future
anchor *could* change, so they are revealed only by :meth:`seal`, which
is also when the clamp semantics become bitwise those of the replay
source.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import IngestError, InvalidEventSetError
from repro.events.serialization import validate_measurement_record
from repro.events.subset import SubsetIndex, subset_trace
from repro.live.records import assemble_trace, record_times
from repro.observation import ObservedTrace
from repro.online.streaming import TraceStream


class LiveTraceStream(TraceStream):
    """An incrementally revealed trace fed by :meth:`ingest`.

    Parameters
    ----------
    n_queues:
        Queue count of the monitored network (queue 0 is the entry queue,
        as everywhere in this package).
    lateness:
        Grace interval behind the watermark within which measurements are
        still admitted (counted as *late*); anything older is a straggler
        and is dropped together with its task.
    max_pending:
        Bound on buffered (not yet assembled) records — the backpressure
        threshold.
    """

    def __init__(
        self,
        n_queues: int,
        lateness: float = 0.0,
        max_pending: int = 100_000,
    ) -> None:
        if n_queues < 2:
            raise IngestError("n_queues must include queue 0 plus real queues")
        if lateness < 0.0:
            raise IngestError(f"lateness must be >= 0, got {lateness}")
        if max_pending < 1:
            raise IngestError(f"max_pending must be >= 1, got {max_pending}")
        self.n_queues = int(n_queues)
        self.lateness = float(lateness)
        self.max_pending = int(max_pending)
        self._lock = threading.RLock()
        self._progress = threading.Condition(self._lock)
        # Out-of-order buffer: task -> seq -> record, plus the expected
        # event count once the `last` record has arrived.
        self._buffer: dict[int, dict[int, dict]] = {}
        self._expected: dict[int, int] = {}
        self._n_buffered = 0
        # Queue-0 counter bookkeeping: slot -> task, and the resolved
        # ("final" / "dropped") prefix the assembled trace is built from.
        self._slot_task: dict[int, int] = {}
        self._resolved: dict[int, str] = {}
        self._next_slot = 0
        self._final_records: dict[int, list[dict]] = {}  # in finalize order
        self._dropped_tasks: set[int] = set()
        # Watermark state.
        self._watermark = -np.inf
        self._sealed = False
        # Assembled-trace cache, rebuilt lazily on access (`trace` /
        # `subset`) when the finalized prefix grew — never per batch.
        self._trace: ObservedTrace | None = None
        self._trace_n_tasks = 0
        self._index: SubsetIndex | None = None
        # Reveal state.  Entry estimation works on two append-only
        # columns maintained at finalize time — the task sequence in
        # entry order and each task's anchor (its first real arrival,
        # when measured; nan otherwise) — so per-batch reveal work is one
        # C-speed interpolation, not a Python trace rebuild.  The
        # interpolation is the same ``np.interp`` call (same positions,
        # same anchors) `_entry_time_estimates` makes over the assembled
        # trace, so revealed values stay bitwise the replay source's.
        self._reveal_tasks: list[int] = []
        self._reveal_anchors: list[float] = []
        self._entry_values: np.ndarray | None = None
        self._ready: list[tuple[int, float]] = []
        self._ready_upto = 0  # entry-prefix positions already revealed
        self._cursor = 0
        # Telemetry.
        self.n_admitted = 0
        self.n_duplicates = 0
        self.n_late = 0
        self.n_stragglers = 0
        self.n_dropped_tasks = 0

    # ------------------------------------------------------------------
    # Ingestion API.
    # ------------------------------------------------------------------

    def ingest(self, records: list[dict]) -> dict:
        """Admit a batch of measurement records; returns admission counts.

        Idempotent under at-least-once delivery: records for tasks already
        assembled (or already in the buffer) are counted as duplicates and
        ignored, so a client may safely retry a batch after a timeout or a
        server restart.

        Raises
        ------
        IngestError
            If the stream is sealed, if admitting the batch would exceed
            ``max_pending`` buffered records (backpressure — retry after
            the assembler drains), or if a record is malformed or
            conflicts with an already admitted one.
        """
        with self._lock:
            if self._sealed:
                raise IngestError("the stream is sealed; no more records")
            summary = {
                "admitted": 0, "duplicates": 0, "late": 0,
                "stragglers": 0, "dropped_tasks": 0,
            }
            try:
                for raw in records:
                    try:
                        record = validate_measurement_record(raw)
                    except InvalidEventSetError as exc:
                        raise IngestError(str(exc)) from None
                    self._admit(record, summary)
            finally:
                # Assemble even when the batch aborted mid-way (e.g. on
                # backpressure): records admitted before the error must
                # still drain the buffer, or a full buffer could never
                # empty and retries would livelock.  Resolved entry slots
                # (a dropped task's late seq-0 record) count as progress
                # too — they can unblock the whole prefix.
                if (
                    summary["admitted"]
                    or summary["dropped_tasks"]
                    or summary.get("resolved_slots")
                ):
                    self._advance_prefix()
                    self._advance_reveal()
                    self._progress.notify_all()
            return summary

    def _admit(self, record: dict, summary: dict) -> None:
        task = record["task"]
        if record["queue"] >= self.n_queues:
            raise IngestError(
                f"record for task {task} references queue {record['queue']} "
                f"but the stream serves n_queues={self.n_queues}"
            )
        if task in self._dropped_tasks:
            summary["stragglers"] += 1
            self.n_stragglers += 1
            if record["seq"] == 0:
                # The task was dropped before its entry record arrived;
                # resolve the slot now or the prefix would stall on the
                # hole forever (no seal on an always-on stream).
                if self._resolved.setdefault(record["counter"], "dropped") == "dropped":
                    summary["resolved_slots"] = summary.get("resolved_slots", 0) + 1
            return
        if task in self._final_records or (
            task in self._buffer and record["seq"] in self._buffer[task]
        ):
            summary["duplicates"] += 1
            self.n_duplicates += 1
            return
        times = record_times(record)
        cutoff = self._watermark - self.lateness
        if any(t < cutoff for t in times):
            # Straggler: too old to ever be admitted — the task can no
            # longer be completed, so purge everything it buffered.
            summary["stragglers"] += 1
            self.n_stragglers += 1
            self._drop_task(task, summary)
            return
        if any(t < self._watermark for t in times):
            summary["late"] += 1
            self.n_late += 1
        if task not in self._buffer and self._n_buffered >= self.max_pending:
            # Backpressure applies to records *opening* tasks; records
            # completing already-buffered tasks are always admitted (they
            # are what lets the assembler drain the buffer at all).
            raise IngestError(
                f"ingest buffer full ({self.max_pending} pending records); "
                "backpressure — retry once the assembler drains"
            )
        per_task = self._buffer.setdefault(task, {})
        if record["last"]:
            expected = record["seq"] + 1
            prior = self._expected.get(task)
            if prior is not None and prior != expected:
                raise IngestError(
                    f"task {task}: conflicting `last` records claim "
                    f"{prior} and {expected} events"
                )
            # Retro-check records that landed before the `last` one did:
            # with every buffered seq proven < expected, a count match is
            # a completeness proof (keys are unique), so an out-of-order
            # seq-gap task can never pass the gate and poison assembly.
            stale = sorted(s for s in per_task if s >= expected)
            if stale:
                raise IngestError(
                    f"task {task}: buffered records at seq {stale} lie "
                    f"beyond the declared last event (seq {expected - 1})"
                )
            self._expected[task] = expected
        expected = self._expected.get(task)
        if expected is not None and record["seq"] >= expected:
            raise IngestError(
                f"task {task}: record seq {record['seq']} beyond the "
                f"declared last event (seq {expected - 1})"
            )
        if record["seq"] == 0:
            slot = record["counter"]
            owner = self._slot_task.get(slot)
            if owner is not None and owner != task:
                raise IngestError(
                    f"entry counter {slot} claimed by tasks {owner} and "
                    f"{task}: the reporting side is emitting corrupt counters"
                )
            self._slot_task[slot] = task
        per_task[record["seq"]] = record
        self._n_buffered += 1
        self.n_admitted += 1
        summary["admitted"] += 1

    def _drop_task(self, task: int, summary: dict) -> None:
        """Purge a task that can no longer be assembled."""
        dropped = self._buffer.pop(task, {})
        self._n_buffered -= len(dropped)
        self._expected.pop(task, None)
        self._dropped_tasks.add(task)
        self.n_dropped_tasks += 1
        summary["dropped_tasks"] += 1
        # The task's entry slot is its buffered seq-0 record's counter —
        # a slot only ever enters _slot_task at seq-0 admission, so there
        # is nothing to resolve when that record has not arrived yet (the
        # dropped-task branch of _admit resolves it on late arrival).
        seq0 = dropped.get(0)
        if seq0 is not None:
            self._resolved[seq0["counter"]] = "dropped"

    def advance_watermark(self, t: float) -> float:
        """Promise that no measurement older than *t* is still coming.

        Monotone (an older watermark is ignored); advancing it both arms
        the straggler cutoff for future records and lets reveals catch up
        to tasks whose entry estimates it passed.  Returns the watermark
        now in force.
        """
        with self._lock:
            t = float(t)
            if t > self._watermark:
                self._watermark = t
                self._advance_reveal()
                self._progress.notify_all()
            return self._watermark

    def seal(self) -> dict:
        """End of input: finalize everything that can be, drop the rest.

        Sets the watermark to infinity, drops still-incomplete buffered
        tasks (counted), resolves their entry slots, and reveals every
        assembled task — from here the stream behaves exactly like a
        :class:`~repro.online.streaming.ReplayTraceStream` over the
        assembled trace.  Idempotent.
        """
        with self._lock:
            if self._sealed:
                return {"dropped_tasks": 0}
            self._sealed = True
            self._watermark = np.inf
            summary = {"dropped_tasks": 0}
            for task in list(self._buffer):
                # Complete tasks merely blocked behind a hole in the entry
                # prefix are kept — resolving the holes below lets them
                # assemble; only genuinely partial tasks are unbuildable.
                if not self._task_complete(task):
                    self._drop_task(task, summary)
            # Entry slots below the highest known one whose seq-0 record
            # never arrived can no longer be filled: resolve them as
            # dropped so complete tasks behind the hole still assemble.
            if self._slot_task:
                for slot in range(self._next_slot, max(self._slot_task)):
                    if slot not in self._slot_task and slot not in self._resolved:
                        self._resolved[slot] = "dropped"
                        self.n_dropped_tasks += 1
                        summary["dropped_tasks"] += 1
            self._advance_prefix()
            self._advance_reveal()
            self._progress.notify_all()
            return summary

    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` has been called."""
        return self._sealed

    @property
    def watermark(self) -> float:
        """The watermark currently in force."""
        return self._watermark

    @property
    def n_pending(self) -> int:
        """Records buffered but not yet assembled (the backpressure gauge)."""
        with self._lock:
            return self._n_buffered

    def wait_for_progress(self, timeout: float | None = None) -> None:
        """Block until ingestion/watermark/seal makes progress (or timeout)."""
        with self._progress:
            self._progress.wait(timeout)

    # ------------------------------------------------------------------
    # Assembly: completeness -> contiguous prefix -> reveal.
    # ------------------------------------------------------------------

    def _task_complete(self, task: int) -> bool:
        expected = self._expected.get(task)
        if expected is None:
            return False
        return len(self._buffer.get(task, ())) == expected

    def _advance_prefix(self) -> None:
        """Resolve queue-0 slots in order; assemble completed tasks."""
        while True:
            slot = self._next_slot
            if self._resolved.get(slot) == "dropped":
                self._next_slot += 1
                continue
            task = self._slot_task.get(slot)
            if task is None or not self._task_complete(task):
                return
            records = self._buffer.pop(task)
            self._n_buffered -= len(records)
            self._expected.pop(task)
            ordered = [records[s] for s in sorted(records)]
            self._final_records[task] = ordered
            self._resolved[slot] = "final"
            self._next_slot += 1
            self._append_reveal_columns(task, ordered)
            self._trace = None  # prefix grew; rebuild lazily on access

    def _assembled(self) -> ObservedTrace | None:
        """The trace over the finalized prefix, rebuilt lazily on access.

        Rebuilds happen at most once per prefix growth *and only when a
        window actually reads the trace* — never per ingest batch — but
        each rebuild is still O(total history): the replay path's
        asymptotics per window, paid while the stream grows.  A fully
        incremental assembler (append columns + splice queue orders in
        place) is the known next step for unbounded streams; see
        ROADMAP.
        """
        if not self._final_records:
            return None
        if self._trace is None or self._trace_n_tasks != len(self._final_records):
            self._trace = assemble_trace(
                list(self._final_records.values()), n_queues=self.n_queues
            )
            self._trace_n_tasks = len(self._final_records)
            self._index = SubsetIndex(self._trace.skeleton)
        return self._trace

    def _append_reveal_columns(self, task: int, ordered: list[dict]) -> None:
        """Extend the entry-order reveal columns for one finalized task.

        The anchor is the task's first real arrival when it was measured
        — exactly the events `_entry_time_estimates` anchors interpolation
        on (a queue-0 event's successor arrival equals the entry time by
        the ``a_e = d_{pi(e)}`` identity).
        """
        anchor = np.nan
        if len(ordered) > 1 and ordered[1]["arrival"] is not None:
            anchor = float(ordered[1]["arrival"])
        self._reveal_tasks.append(int(task))
        self._reveal_anchors.append(anchor)
        self._entry_values = None  # interpolation inputs grew

    def _advance_reveal(self) -> None:
        """Append newly *final* entry estimates to the reveal list."""
        n = len(self._reveal_tasks)
        if self._ready_upto >= n:
            return
        anchors = np.asarray(self._reveal_anchors, dtype=float)
        known = np.flatnonzero(~np.isnan(anchors))
        if known.size == 0:
            return
        if self._entry_values is None or self._entry_values.size != n:
            # The same interpolation `_entry_time_estimates` runs over the
            # assembled trace: positions in entry order, anchored where
            # the first real arrival was observed — bitwise identical.
            positions = np.arange(n, dtype=float)
            self._entry_values = np.interp(
                positions, positions[known], anchors[known]
            )
        if self._sealed:
            final_upto = n  # clamp semantics are final now
        else:
            final_upto = int(known.max()) + 1
        for pos in range(self._ready_upto, final_upto):
            entry = float(self._entry_values[pos])
            if not self._sealed and entry > self._watermark:
                final_upto = pos
                break
            self._ready.append((self._reveal_tasks[pos], entry))
        self._ready_upto = max(self._ready_upto, final_upto)

    # ------------------------------------------------------------------
    # TraceStream contract.
    # ------------------------------------------------------------------

    @property
    def trace(self) -> ObservedTrace:
        with self._lock:
            trace = self._assembled()
            if trace is None:
                raise IngestError(
                    "no task has been fully ingested yet; the stream has "
                    "no trace to expose"
                )
            return trace

    @property
    def horizon(self) -> float:
        with self._lock:
            if not self._ready:
                return 0.0
            return self._ready[-1][1]

    @property
    def n_revealed(self) -> int:
        """Tasks handed out by :meth:`poll` so far."""
        with self._lock:
            return self._cursor

    def poll(self, until: float) -> list[tuple[int, float]]:
        with self._lock:
            out: list[tuple[int, float]] = []
            while (
                self._cursor < len(self._ready)
                and self._ready[self._cursor][1] < until
            ):
                out.append(self._ready[self._cursor])
                self._cursor += 1
            return out

    def subset(self, task_ids) -> ObservedTrace:
        with self._lock:
            trace = self._assembled()
            if trace is None:
                raise IngestError("no task has been fully ingested yet")
            return subset_trace(trace, task_ids, index=self._index)

    def exhausted(self) -> bool:
        with self._lock:
            return (
                self._sealed
                and self._cursor >= len(self._ready)
                and not self._buffer
            )

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Everything needed to rebuild this stream after a restart.

        Plain picklable containers only.  The assembled trace itself is
        *not* stored — :meth:`from_state` reassembles it from the record
        log deterministically, which is what makes restored window
        estimates bitwise identical.
        """
        with self._lock:
            return {
                "version": 1,
                "n_queues": self.n_queues,
                "lateness": self.lateness,
                "max_pending": self.max_pending,
                "watermark": float(self._watermark),
                "sealed": self._sealed,
                "buffer": {t: dict(v) for t, v in self._buffer.items()},
                "expected": dict(self._expected),
                "slot_task": dict(self._slot_task),
                "resolved": dict(self._resolved),
                "next_slot": self._next_slot,
                "final_records": {
                    t: list(v) for t, v in self._final_records.items()
                },
                "dropped_tasks": sorted(self._dropped_tasks),
                "n_polled": self._cursor,
                "counters": {
                    "n_admitted": self.n_admitted,
                    "n_duplicates": self.n_duplicates,
                    "n_late": self.n_late,
                    "n_stragglers": self.n_stragglers,
                    "n_dropped_tasks": self.n_dropped_tasks,
                },
            }

    @classmethod
    def from_state(cls, state: dict) -> "LiveTraceStream":
        """Rebuild a stream from :meth:`snapshot_state` output.

        The reveal list is *recomputed* from the restored record log (the
        same deterministic path normal ingestion takes), then the poll
        cursor is moved back to where the snapshot left it — so the next
        :meth:`poll` hands the estimator exactly the tasks it had not yet
        consumed.
        """
        stream = cls(
            n_queues=state["n_queues"],
            lateness=state["lateness"],
            max_pending=state["max_pending"],
        )
        stream._watermark = state["watermark"]
        stream._sealed = state["sealed"]
        stream._buffer = {
            int(t): {int(s): r for s, r in v.items()}
            for t, v in state["buffer"].items()
        }
        stream._n_buffered = sum(len(v) for v in stream._buffer.values())
        stream._expected = {int(t): int(n) for t, n in state["expected"].items()}
        stream._slot_task = {int(s): int(t) for s, t in state["slot_task"].items()}
        stream._resolved = {int(s): v for s, v in state["resolved"].items()}
        stream._next_slot = int(state["next_slot"])
        stream._final_records = {
            int(t): list(v) for t, v in state["final_records"].items()
        }
        stream._dropped_tasks = set(state["dropped_tasks"])
        for name, value in state["counters"].items():
            setattr(stream, name, int(value))
        # Rebuild the entry-order reveal columns from the record log (its
        # insertion order *is* the finalize order), then re-reveal — the
        # same deterministic path normal ingestion takes.
        for task, ordered in stream._final_records.items():
            stream._append_reveal_columns(task, ordered)
        stream._advance_reveal()
        n_polled = int(state["n_polled"])
        if n_polled > len(stream._ready):
            raise IngestError(
                f"corrupt snapshot: {n_polled} tasks were polled but only "
                f"{len(stream._ready)} are revealable from the record log"
            )
        stream._cursor = n_polled
        return stream
