"""A :class:`~repro.online.streaming.TraceStream` fed by live ingestion.

:class:`LiveTraceStream` is the live counterpart of
:class:`~repro.online.streaming.ReplayTraceStream`: instead of replaying a
recorded trace it accumulates measurement records
(:mod:`repro.live.records`) as an instrumented system emits them, and
reveals tasks to the estimator only once their entry estimates can never
change again.  Three mechanisms make that honest under real traffic:

**Out-of-order buffer.**  Records land in any order; a task is held until
all of its events (``seq 0 .. k``, the ``last`` flag closing the range)
have arrived, and the assembled trace only ever contains the *contiguous
prefix* of queue-0 counters — a task whose entry counter is 7 cannot be
assembled while counter 6 is still in flight, because its position in the
entry order (which entry-time interpolation depends on) would be wrong.

**Watermark + lateness bound.**  The watermark is the stream's "no
measurement older than this is still coming" promise, advanced by the
reporting side (:meth:`advance_watermark`) and to infinity by
:meth:`seal`.  Records are admitted while their measured times are no
older than ``watermark - lateness``; anything older is a straggler —
counted, dropped, and its task purged (a partial task can never be
assembled).  Task reveal additionally waits for the watermark to pass the
task's entry estimate, so the horizon advances watermark-monotonically.

**Bounded-queue backpressure.**  At most ``max_pending`` records may sit
unassembled; ingestion beyond that raises
:class:`~repro.errors.IngestError` so a fast producer blocks/retries
instead of growing the buffer without bound.

**Incremental assembly + prefix compaction.**  The assembled trace is
maintained by an :class:`~repro.live.records.IncrementalAssembler`:
finalizing a task appends its columns and splices its events into the
per-queue orders in O(task), and a window access materializes the trace
from the retained columns — never a Python re-walk of history.  With a
``retain`` horizon set, :meth:`compact` folds tasks that are polled and
older than every reachable window into a :class:`CompactionSummary`
(per-queue event counts and service-time sufficient statistics) and
evicts their records, so RSS, per-window trace cost, and the checkpoint
record log are all bounded by the retention horizon instead of growing
with stream age.  Re-delivered records of compacted tasks count as
duplicates (task ids are monotone on the compaction path), so
at-least-once clients stay safe.

Equivalence contract (pinned by ``tests/live/test_stream.py`` and the
acceptance suite): ingesting a recorded task-id-major trace in order,
with no stragglers, and sealing yields a stream whose reveals, horizon,
and window sub-traces are **bitwise identical** to
:class:`~repro.online.streaming.ReplayTraceStream` over the same trace —
so live window estimates match the replay/windowed path exactly at the
same seed, for any shard-worker count.

Finality argument (why a revealed entry estimate never changes): entry
times are interpolated by position between *anchors* — tasks whose first
real arrival was measured; anchor times are non-decreasing along the
entry order.  Within the contiguous assembled prefix every anchor is
known, interpolation between two anchors touches only those two anchors,
and later tasks only ever append positions after the prefix — so every
estimate at a position no later than the prefix's last anchor is final.
Positions beyond the last anchor would be clamped to it, a value a future
anchor *could* change, so they are revealed only by :meth:`seal`, which
is also when the clamp semantics become bitwise those of the replay
source.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import IngestError, InvalidEventSetError
from repro.events.serialization import validate_measurement_record
from repro.events.subset import SubsetIndex, subset_trace
from repro.live.records import IncrementalAssembler, assemble_trace, record_times
from repro.observation import ObservedTrace
from repro.online.streaming import TraceStream

# Per-registry cache of the stream's counter/histogram handles so the
# per-batch ingest cost is a few lock-free dict reads, not registry
# lookups (the overhead gate in bench_telemetry.py watches this path).
_METRIC_HANDLES: tuple | None = None

_MEMORY_CONTAINERS = (
    "buffered_records", "retained_tasks", "retained_events",
    "reveal_positions", "ready_entries", "slot_entries", "resolved_slots",
    "dropped_tasks", "compacted_tasks", "compacted_events",
)


def _stream_metrics() -> dict:
    global _METRIC_HANDLES
    reg = telemetry.get_registry()
    cached = _METRIC_HANDLES
    if cached is not None and cached[0] is reg:
        return cached[1]
    handles = {
        "batches": reg.counter("repro_stream_ingest_batches_total"),
        "admitted": reg.counter("repro_stream_records_admitted_total"),
        "duplicates": reg.counter("repro_stream_records_duplicate_total"),
        "late": reg.counter("repro_stream_records_late_total"),
        "stragglers": reg.counter("repro_stream_records_straggler_total"),
        "dropped_tasks": reg.counter("repro_stream_tasks_dropped_total"),
        "revealed": reg.counter("repro_stream_tasks_revealed_total"),
        "tasks_compacted": reg.counter("repro_stream_tasks_compacted_total"),
        "events_compacted": reg.counter("repro_stream_events_compacted_total"),
        "batch_seconds": reg.histogram("repro_stream_ingest_batch_seconds"),
    }
    _METRIC_HANDLES = (reg, handles)
    return handles


def _register_stream_gauges(stream: "LiveTraceStream") -> None:
    """Bind the buffer gauges to *stream* via weakref (a replaced stream
    must not be kept alive by its telemetry callbacks)."""
    reg = telemetry.get_registry()
    ref = weakref.ref(stream)

    def _attr(name):
        def _value():
            live = ref()
            return float("nan") if live is None else float(getattr(live, name))
        return _value

    def _mem(key):
        def _value():
            live = ref()
            return float("nan") if live is None else float(live.memory_stats()[key])
        return _value

    reg.gauge_callback("repro_stream_watermark", _attr("watermark"))
    reg.gauge_callback("repro_stream_horizon", _attr("_horizon"))
    for key in _MEMORY_CONTAINERS:
        reg.gauge_callback("repro_stream_memory", _mem(key), container=key)


@dataclass
class CompactionSummary:
    """What compaction keeps of the tasks it folds away.

    Enough to answer the monitoring questions the raw records answered —
    how much traffic each queue carried and its measured service-time
    moments — without the records themselves.  Sufficient statistics are
    over *measured* services only (``departure - max(arrival, d_rho)``
    where all inputs were observed); censored positions contribute to
    the event counts but not the moments.  Stream-level straggler /
    duplicate / late tallies are monotone counters on the stream itself
    and survive compaction untouched.
    """

    n_queues: int
    n_tasks: int = 0
    n_events: int = 0
    first_entry: float = float("inf")
    last_entry: float = -float("inf")
    events_per_queue: list[int] = field(default_factory=list)
    observed_services_per_queue: list[int] = field(default_factory=list)
    service_time_sum: list[float] = field(default_factory=list)
    service_time_sumsq: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in (
            "events_per_queue", "observed_services_per_queue",
            "service_time_sum", "service_time_sumsq",
        ):
            if not getattr(self, name):
                zero = 0 if "events" in name or "observed" in name else 0.0
                setattr(self, name, [zero] * self.n_queues)

    def mean_service(self, q: int) -> float:
        """Measured mean service time at queue *q* over compacted tasks."""
        n = self.observed_services_per_queue[q]
        return float("nan") if n == 0 else self.service_time_sum[q] / n

    def to_dict(self) -> dict:
        return {
            "n_queues": self.n_queues,
            "n_tasks": self.n_tasks,
            "n_events": self.n_events,
            "first_entry": self.first_entry,
            "last_entry": self.last_entry,
            "events_per_queue": list(self.events_per_queue),
            "observed_services_per_queue": list(
                self.observed_services_per_queue
            ),
            "service_time_sum": list(self.service_time_sum),
            "service_time_sumsq": list(self.service_time_sumsq),
        }

    @classmethod
    def from_dict(cls, state: dict) -> "CompactionSummary":
        return cls(**state)


class LiveTraceStream(TraceStream):
    """An incrementally revealed trace fed by :meth:`ingest`.

    Parameters
    ----------
    n_queues:
        Queue count of the monitored network (queue 0 is the entry queue,
        as everywhere in this package).
    lateness:
        Grace interval behind the watermark within which measurements are
        still admitted (counted as *late*); anything older is a straggler
        and is dropped together with its task.
    max_pending:
        Bound on buffered (not yet assembled) records — the backpressure
        threshold.
    retain:
        History retention horizon: how far behind the watermark task
        records are kept once polled.  ``None`` (default) keeps
        everything — the sealed-batch behavior.  With a value set,
        :meth:`compact` folds tasks whose entry is older than both
        ``watermark - retain`` and the caller's reachability bound into
        a :class:`CompactionSummary` and evicts their records, bounding
        memory and checkpoint size for an always-on stream.
    """

    def __init__(
        self,
        n_queues: int,
        lateness: float = 0.0,
        max_pending: int = 100_000,
        retain: float | None = None,
    ) -> None:
        if n_queues < 2:
            raise IngestError("n_queues must include queue 0 plus real queues")
        if lateness < 0.0:
            raise IngestError(f"lateness must be >= 0, got {lateness}")
        if max_pending < 1:
            raise IngestError(f"max_pending must be >= 1, got {max_pending}")
        if retain is not None and retain < 0.0:
            raise IngestError(f"retain must be >= 0 or None, got {retain}")
        self.n_queues = int(n_queues)
        self.lateness = float(lateness)
        self.max_pending = int(max_pending)
        self.retain = None if retain is None else float(retain)
        self._lock = threading.RLock()
        self._progress = threading.Condition(self._lock)
        # Out-of-order buffer: task -> seq -> record, plus the expected
        # event count once the `last` record has arrived.
        self._buffer: dict[int, dict[int, dict]] = {}
        self._expected: dict[int, int] = {}
        self._n_buffered = 0
        # Queue-0 counter bookkeeping: slot -> task, and the resolved
        # ("final" / "dropped") prefix the assembled trace is built from.
        self._slot_task: dict[int, int] = {}
        self._resolved: dict[int, str] = {}
        self._next_slot = 0
        self._final_records: dict[int, list[dict]] = {}  # in finalize order
        self._final_slots: dict[int, int] = {}  # finalized task -> entry slot
        self._dropped_tasks: set[int] = set()
        # Watermark state.
        self._watermark = -np.inf
        self._sealed = False
        # The incremental assembler holds the finalized prefix as
        # append-in-place columns; building the trace from them is cached
        # per version inside it.  It is replaced by ``None`` — falling
        # back to the sort-based `assemble_trace` rebuild forever — the
        # first time task ids finalize out of ascending order (a source
        # whose entry counters are not monotone in task id).
        self._assembler: IncrementalAssembler | None = IncrementalAssembler(
            self.n_queues
        )
        self._trace: ObservedTrace | None = None
        self._trace_n_tasks = 0
        self._index: SubsetIndex | None = None
        # Compaction state: reveal positions folded away so far (one per
        # evicted task), the highest evicted task id (the duplicate
        # cutoff for re-deliveries), the entry slots swept, and the
        # running summary.
        self._compacted_upto = 0
        self._compacted_hwm: int | None = None
        self._compacted_slot_upto = 0
        self._summary: CompactionSummary | None = None
        self.n_compacted_events = 0
        # Reveal state.  Entry estimation works on two append-only
        # columns maintained at finalize time — the task sequence in
        # entry order and each task's anchor (its first real arrival,
        # when measured; nan otherwise) — so per-batch reveal work is one
        # C-speed interpolation, not a Python trace rebuild.  The
        # interpolation is the same ``np.interp`` call (same positions,
        # same anchors) `_entry_time_estimates` makes over the assembled
        # trace, so revealed values stay bitwise the replay source's.
        # Compaction trims the columns' prefix (tracked by the offsets
        # below); the trim keeps the left interpolation anchor, so
        # future values stay bitwise the untrimmed ones.
        self._reveal_tasks: list[int] = []
        self._reveal_anchors: list[float] = []
        self._reveal_offset = 0  # trimmed reveal-column positions
        self._entry_values: np.ndarray | None = None
        self._ready: list[tuple[int, float]] = []
        self._ready_offset = 0  # trimmed (compacted) ready positions
        self._ready_upto = 0  # entry-prefix positions already revealed
        self._cursor = 0
        self._horizon = 0.0  # last revealed entry (survives trimming)
        # Telemetry.
        self.n_admitted = 0
        self.n_duplicates = 0
        self.n_late = 0
        self.n_stragglers = 0
        self.n_dropped_tasks = 0
        if telemetry.enabled():
            _stream_metrics()  # pre-register the stream counter names
            _register_stream_gauges(self)

    # ------------------------------------------------------------------
    # Ingestion API.
    # ------------------------------------------------------------------

    def ingest(self, records: list[dict]) -> dict:
        """Admit a batch of measurement records; returns admission counts.

        Idempotent under at-least-once delivery: records for tasks already
        assembled (or already in the buffer) are counted as duplicates and
        ignored, so a client may safely retry a batch after a timeout or a
        server restart.

        Raises
        ------
        IngestError
            If the stream is sealed, if admitting the batch would exceed
            ``max_pending`` buffered records (backpressure — retry after
            the assembler drains), or if a record is malformed or
            conflicts with an already admitted one.
        """
        summary = {
            "admitted": 0, "duplicates": 0, "late": 0,
            "stragglers": 0, "dropped_tasks": 0,
        }
        reg = telemetry.get_registry()
        if not reg.enabled:
            return self._ingest_locked(records, summary)
        t_start = time.perf_counter()
        try:
            return self._ingest_locked(records, summary)
        finally:
            # Counted even when the batch aborted part-way (backpressure):
            # the series must agree with the stream's own n_* attributes.
            metrics = _stream_metrics()
            metrics["batches"].inc()
            for key in ("admitted", "duplicates", "late", "stragglers",
                        "dropped_tasks"):
                if summary[key]:
                    metrics[key].inc(summary[key])
            metrics["batch_seconds"].observe(time.perf_counter() - t_start)

    def _ingest_locked(self, records: list[dict], summary: dict) -> dict:
        with self._lock:
            if self._sealed:
                raise IngestError("the stream is sealed; no more records")
            try:
                for raw in records:
                    try:
                        record = validate_measurement_record(raw)
                    except InvalidEventSetError as exc:
                        raise IngestError(str(exc)) from None
                    self._admit(record, summary)
            finally:
                # Assemble even when the batch aborted mid-way (e.g. on
                # backpressure): records admitted before the error must
                # still drain the buffer, or a full buffer could never
                # empty and retries would livelock.  Resolved entry slots
                # (a dropped task's late seq-0 record) count as progress
                # too — they can unblock the whole prefix.
                if (
                    summary["admitted"]
                    or summary["dropped_tasks"]
                    or summary.get("resolved_slots")
                ):
                    self._advance_prefix()
                    self._advance_reveal()
                    self._progress.notify_all()
            return summary

    def _admit(self, record: dict, summary: dict) -> None:
        task = record["task"]
        if record["queue"] >= self.n_queues:
            raise IngestError(
                f"record for task {task} references queue {record['queue']} "
                f"but the stream serves n_queues={self.n_queues}"
            )
        if task in self._dropped_tasks:
            summary["stragglers"] += 1
            self.n_stragglers += 1
            if record["seq"] == 0:
                # The task was dropped before its entry record arrived;
                # resolve the slot now or the prefix would stall on the
                # hole forever (no seal on an always-on stream).
                if self._resolved.setdefault(record["counter"], "dropped") == "dropped":
                    summary["resolved_slots"] = summary.get("resolved_slots", 0) + 1
            return
        if task in self._final_records or (
            task in self._buffer and record["seq"] in self._buffer[task]
        ):
            summary["duplicates"] += 1
            self.n_duplicates += 1
            return
        if (
            self._compacted_hwm is not None
            and task <= self._compacted_hwm
            and task not in self._buffer
        ):
            # At or below the compaction high-water mark this can only be
            # a re-delivery: task ids are monotone in entry order on the
            # compaction path, and compaction only ever evicts a fully
            # finalized prefix — every genuinely new task sits above the
            # mark.  (Late records of long-dropped tasks whose drop entry
            # was itself compacted land here too; they are equally dead.)
            summary["duplicates"] += 1
            self.n_duplicates += 1
            return
        times = record_times(record)
        cutoff = self._watermark - self.lateness
        if any(t < cutoff for t in times):
            if self._would_complete(task, record):
                # Assemble-then-check: the record is older than the
                # cutoff, but it is the task's *final* missing piece — a
                # fully buffered task one step from assembly must not be
                # purged at the boundary.  Admit it as late; the task
                # finalizes in this very batch.
                summary["late"] += 1
                self.n_late += 1
            else:
                # Straggler: too old to ever be admitted, and the task
                # stays incomplete — it can no longer be assembled, so
                # purge everything it buffered.
                summary["stragglers"] += 1
                self.n_stragglers += 1
                self._drop_task(task, summary)
                return
        elif any(t < self._watermark for t in times):
            summary["late"] += 1
            self.n_late += 1
        if task not in self._buffer and self._n_buffered >= self.max_pending:
            # Backpressure applies to records *opening* tasks; records
            # completing already-buffered tasks are always admitted (they
            # are what lets the assembler drain the buffer at all).
            raise IngestError(
                f"ingest buffer full ({self.max_pending} pending records); "
                "backpressure — retry once the assembler drains"
            )
        per_task = self._buffer.setdefault(task, {})
        if record["last"]:
            expected = record["seq"] + 1
            prior = self._expected.get(task)
            if prior is not None and prior != expected:
                raise IngestError(
                    f"task {task}: conflicting `last` records claim "
                    f"{prior} and {expected} events"
                )
            # Retro-check records that landed before the `last` one did:
            # with every buffered seq proven < expected, a count match is
            # a completeness proof (keys are unique), so an out-of-order
            # seq-gap task can never pass the gate and poison assembly.
            stale = sorted(s for s in per_task if s >= expected)
            if stale:
                raise IngestError(
                    f"task {task}: buffered records at seq {stale} lie "
                    f"beyond the declared last event (seq {expected - 1})"
                )
            self._expected[task] = expected
        expected = self._expected.get(task)
        if expected is not None and record["seq"] >= expected:
            raise IngestError(
                f"task {task}: record seq {record['seq']} beyond the "
                f"declared last event (seq {expected - 1})"
            )
        if record["seq"] == 0:
            slot = record["counter"]
            owner = self._slot_task.get(slot)
            if owner is not None and owner != task:
                raise IngestError(
                    f"entry counter {slot} claimed by tasks {owner} and "
                    f"{task}: the reporting side is emitting corrupt counters"
                )
            self._slot_task[slot] = task
        per_task[record["seq"]] = record
        self._n_buffered += 1
        self.n_admitted += 1
        summary["admitted"] += 1

    def _would_complete(self, task: int, record: dict) -> bool:
        """Whether admitting *record* completes *task* (every event
        buffered, event count known) — the straggler purge's
        assemble-then-check gate."""
        per = self._buffer.get(task)
        expected = self._expected.get(task)
        if record["last"]:
            claimed = record["seq"] + 1
            if expected is not None and expected != claimed:
                return False  # conflicting `last` claims; not completable
            expected = claimed
        if expected is None:
            return False  # event count unknown: cannot be the last piece
        if per is None:
            # No buffered siblings: complete only as a single-event task.
            return expected == 1 and record["seq"] == 0
        if record["seq"] >= expected or any(s >= expected for s in per):
            return False  # seq beyond the declared range: malformed
        return record["seq"] not in per and len(per) + 1 == expected

    def _drop_task(self, task: int, summary: dict) -> None:
        """Purge a task that can no longer be assembled."""
        dropped = self._buffer.pop(task, {})
        self._n_buffered -= len(dropped)
        self._expected.pop(task, None)
        self._dropped_tasks.add(task)
        self.n_dropped_tasks += 1
        summary["dropped_tasks"] += 1
        # The task's entry slot is its buffered seq-0 record's counter —
        # a slot only ever enters _slot_task at seq-0 admission, so there
        # is nothing to resolve when that record has not arrived yet (the
        # dropped-task branch of _admit resolves it on late arrival).
        seq0 = dropped.get(0)
        if seq0 is not None:
            self._resolved[seq0["counter"]] = "dropped"

    def advance_watermark(self, t: float) -> float:
        """Promise that no measurement older than *t* is still coming.

        Monotone (an older watermark is ignored); advancing it both arms
        the straggler cutoff for future records and lets reveals catch up
        to tasks whose entry estimates it passed.  Returns the watermark
        now in force.
        """
        with self._lock:
            t = float(t)
            if t > self._watermark:
                self._watermark = t
                self._advance_reveal()
                self._progress.notify_all()
            return self._watermark

    def seal(self) -> dict:
        """End of input: finalize everything that can be, drop the rest.

        Sets the watermark to infinity, drops still-incomplete buffered
        tasks (counted), resolves their entry slots, and reveals every
        assembled task — from here the stream behaves exactly like a
        :class:`~repro.online.streaming.ReplayTraceStream` over the
        assembled trace.  Idempotent.
        """
        with self._lock:
            if self._sealed:
                return {"dropped_tasks": 0}
            self._sealed = True
            self._watermark = np.inf
            summary = {"dropped_tasks": 0}
            for task in list(self._buffer):
                # Complete tasks merely blocked behind a hole in the entry
                # prefix are kept — resolving the holes below lets them
                # assemble; only genuinely partial tasks are unbuildable.
                if not self._task_complete(task):
                    self._drop_task(task, summary)
            # Entry slots below the highest known one whose seq-0 record
            # never arrived can no longer be filled: resolve them as
            # dropped so complete tasks behind the hole still assemble.
            if self._slot_task:
                for slot in range(self._next_slot, max(self._slot_task)):
                    if slot not in self._slot_task and slot not in self._resolved:
                        self._resolved[slot] = "dropped"
                        self.n_dropped_tasks += 1
                        summary["dropped_tasks"] += 1
            self._advance_prefix()
            self._advance_reveal()
            self._progress.notify_all()
            return summary

    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` has been called."""
        return self._sealed

    @property
    def watermark(self) -> float:
        """The watermark currently in force."""
        return self._watermark

    @property
    def n_pending(self) -> int:
        """Records buffered but not yet assembled (the backpressure gauge)."""
        with self._lock:
            return self._n_buffered

    def wait_for_progress(self, timeout: float | None = None) -> None:
        """Block until ingestion/watermark/seal makes progress (or timeout)."""
        with self._progress:
            self._progress.wait(timeout)

    # ------------------------------------------------------------------
    # Assembly: completeness -> contiguous prefix -> reveal.
    # ------------------------------------------------------------------

    def _task_complete(self, task: int) -> bool:
        expected = self._expected.get(task)
        if expected is None:
            return False
        return len(self._buffer.get(task, ())) == expected

    def _advance_prefix(self) -> None:
        """Resolve queue-0 slots in order; assemble completed tasks."""
        while True:
            slot = self._next_slot
            if self._resolved.get(slot) == "dropped":
                self._next_slot += 1
                continue
            task = self._slot_task.get(slot)
            if task is None or not self._task_complete(task):
                return
            records = self._buffer.pop(task)
            self._n_buffered -= len(records)
            self._expected.pop(task)
            ordered = [records[s] for s in sorted(records)]
            self._final_records[task] = ordered
            self._final_slots[task] = slot
            self._resolved[slot] = "final"
            self._next_slot += 1
            if self._assembler is not None and not self._assembler.append(
                ordered
            ):
                # Task ids finalized out of ascending order: permanent
                # fallback to the sort-based rebuild (and no compaction —
                # the duplicate cutoff below the high-water mark needs
                # monotone ids).
                self._assembler = None
            self._append_reveal_columns(task, ordered)
            self._trace = None  # prefix grew; (re)build lazily on access

    def _assembled(self) -> ObservedTrace | None:
        """The trace over the finalized (retained) prefix.

        Fast path: the :class:`~repro.live.records.IncrementalAssembler`
        already holds the columns — finalizing a task appended them in
        O(task) — so this is a cached O(retained) array materialization,
        bitwise equal to the rebuild below (the conformance suite's
        equivalence oracle pins it).  Fallback (non-monotone task ids
        only): the original sort-based `assemble_trace` re-walk, rebuilt
        at most once per prefix growth.
        """
        if self._assembler is not None:
            if self._assembler.n_events == 0:
                return None
            self._trace, self._index = self._assembler.build()
            return self._trace
        if not self._final_records:
            return None
        if self._trace is None or self._trace_n_tasks != len(self._final_records):
            self._trace = assemble_trace(
                list(self._final_records.values()), n_queues=self.n_queues
            )
            self._trace_n_tasks = len(self._final_records)
            self._index = SubsetIndex(self._trace.skeleton)
        return self._trace

    def _append_reveal_columns(self, task: int, ordered: list[dict]) -> None:
        """Extend the entry-order reveal columns for one finalized task.

        The anchor is the task's first real arrival when it was measured
        — exactly the events `_entry_time_estimates` anchors interpolation
        on (a queue-0 event's successor arrival equals the entry time by
        the ``a_e = d_{pi(e)}`` identity).
        """
        anchor = np.nan
        if len(ordered) > 1 and ordered[1]["arrival"] is not None:
            anchor = float(ordered[1]["arrival"])
        self._reveal_tasks.append(int(task))
        self._reveal_anchors.append(anchor)
        self._entry_values = None  # interpolation inputs grew

    def _advance_reveal(self) -> None:
        """Append newly *final* entry estimates to the reveal list."""
        total = self._reveal_offset + len(self._reveal_tasks)
        if self._ready_upto >= total:
            return
        anchors = np.asarray(self._reveal_anchors, dtype=float)
        known = np.flatnonzero(~np.isnan(anchors))
        if known.size == 0:
            return
        if self._entry_values is None or self._entry_values.size != anchors.size:
            # The same interpolation `_entry_time_estimates` runs over the
            # assembled trace: positions in entry order, anchored where
            # the first real arrival was observed — bitwise identical.
            # After compaction the positions are shifted by the trimmed
            # prefix; integer-valued positions subtract exactly in
            # floating point and the trim keeps the left anchor, so the
            # interpolated values stay bitwise the untrimmed ones.
            positions = np.arange(anchors.size, dtype=float)
            self._entry_values = np.interp(
                positions, positions[known], anchors[known]
            )
        if self._sealed:
            final_upto = total  # clamp semantics are final now
        else:
            final_upto = self._reveal_offset + int(known.max()) + 1
        for pos in range(self._ready_upto, final_upto):
            entry = float(self._entry_values[pos - self._reveal_offset])
            if not self._sealed and entry > self._watermark:
                final_upto = pos
                break
            self._ready.append(
                (self._reveal_tasks[pos - self._reveal_offset], entry)
            )
            self._horizon = entry
        self._ready_upto = max(self._ready_upto, final_upto)

    # ------------------------------------------------------------------
    # TraceStream contract.
    # ------------------------------------------------------------------

    @property
    def trace(self) -> ObservedTrace:
        with self._lock:
            trace = self._assembled()
            if trace is None:
                raise IngestError(
                    "no task has been fully ingested yet; the stream has "
                    "no trace to expose"
                )
            return trace

    @property
    def horizon(self) -> float:
        with self._lock:
            return self._horizon

    @property
    def n_revealed(self) -> int:
        """Tasks handed out by :meth:`poll` so far (compacted included)."""
        with self._lock:
            return self._cursor

    def poll(self, until: float) -> list[tuple[int, float]]:
        with self._lock:
            out: list[tuple[int, float]] = []
            total = self._ready_offset + len(self._ready)
            while (
                self._cursor < total
                and self._ready[self._cursor - self._ready_offset][1] < until
            ):
                out.append(self._ready[self._cursor - self._ready_offset])
                self._cursor += 1
        if out and telemetry.enabled():
            _stream_metrics()["revealed"].inc(len(out))
        return out

    def subset(self, task_ids) -> ObservedTrace:
        with self._lock:
            trace = self._assembled()
            if trace is None:
                raise IngestError("no task has been fully ingested yet")
            if self._compacted_hwm is not None:
                gone = sorted(
                    t
                    for t in {int(t) for t in task_ids}
                    if t <= self._compacted_hwm and t not in self._final_records
                )
                if gone:
                    raise IngestError(
                        f"tasks {gone} were compacted past the retention "
                        f"horizon (retain={self.retain}); windows may only "
                        "subset tasks inside the retained tail"
                    )
            return subset_trace(trace, task_ids, index=self._index)

    def exhausted(self) -> bool:
        with self._lock:
            return (
                self._sealed
                and self._cursor >= self._ready_offset + len(self._ready)
                and not self._buffer
            )

    # ------------------------------------------------------------------
    # Prefix compaction.
    # ------------------------------------------------------------------

    @property
    def n_compacted_tasks(self) -> int:
        """Tasks folded into the compaction summary so far."""
        return self._compacted_upto

    @property
    def n_retained_tasks(self) -> int:
        """Finalized tasks whose records are still held."""
        with self._lock:
            return len(self._final_records)

    @property
    def compaction(self) -> CompactionSummary | None:
        """Aggregate statistics of compacted tasks (None before any)."""
        with self._lock:
            return self._summary

    def compact(self, before: float | None = None) -> dict:
        """Fold away polled tasks no reachable window can touch again.

        A task is evictable when it has been *polled* (the estimator saw
        it), its entry estimate is older than ``watermark - retain``, and
        — when *before* is given (the streaming estimator passes its next
        window start) — older than *before* too.  Evictable tasks form a
        prefix of the finalize order; their per-queue event counts and
        measured service-time moments are folded into
        :attr:`compaction`, their records leave ``_final_records`` (and
        therefore every future checkpoint), and their rows leave the
        incremental assembler.  The newest finalized task is always
        retained so the stream keeps a valid trace.

        No-op without a ``retain`` horizon, and on the non-monotone
        fallback path (where the re-delivery cutoff would be unsound).
        Returns ``{"compacted_tasks": k, "compacted_events": m}`` for
        this call.
        """
        with self._lock:
            out = {"compacted_tasks": 0, "compacted_events": 0}
            if self.retain is None or self._assembler is None:
                return out
            limit = self._watermark - self.retain
            if before is not None:
                limit = min(limit, float(before))
            total_final = self._reveal_offset + len(self._reveal_tasks)
            # Walk the evictable prefix: polled, older than the limit,
            # and never the newest finalized task.
            p = self._compacted_upto
            stop = min(self._cursor, total_final - 1)
            while (
                p < stop and self._ready[p - self._ready_offset][1] < limit
            ):
                p += 1
            k = p - self._compacted_upto
            if k == 0:
                return out
            trace = self._assembled()
            m = self._assembler.prefix_events(k)
            self._fold_summary(trace, k, m, p)
            evicted = [
                self._reveal_tasks[pos - self._reveal_offset]
                for pos in range(self._compacted_upto, p)
            ]
            for task in evicted:
                del self._final_records[task]
                slot = self._final_slots.pop(task)
                self._slot_task.pop(slot, None)
                self._resolved.pop(slot, None)
            self._compacted_hwm = evicted[-1]
            # Sweep every entry slot below the first retained finalized
            # task's: each is an evicted task's or a dropped hole no
            # legitimate record can revisit (re-deliveries die at the
            # high-water mark above).
            next_task = self._reveal_tasks[p - self._reveal_offset]
            slot_upto = self._final_slots[next_task]
            for slot in range(self._compacted_slot_upto, slot_upto):
                self._slot_task.pop(slot, None)
                self._resolved.pop(slot, None)
            self._compacted_slot_upto = max(self._compacted_slot_upto, slot_upto)
            hwm = self._compacted_hwm
            self._dropped_tasks = {t for t in self._dropped_tasks if t > hwm}
            self._assembler.evict(k)
            self._trace = None
            self._index = None
            self._compacted_upto = p
            self.n_compacted_events += m
            # Trim the ready list to the folded prefix (poll never
            # revisits positions below the cursor, and compaction only
            # ever folds polled ones).
            del self._ready[: p - self._ready_offset]
            self._ready_offset = p
            # Trim the reveal columns — but never past the last known
            # anchor at or below the revealed frontier: it is the left
            # interpolation anchor of every future reveal, and dropping
            # it would change (break finality of) future entry values.
            anchors = np.asarray(self._reveal_anchors, dtype=float)
            known = np.flatnonzero(~np.isnan(anchors)) + self._reveal_offset
            eligible = known[known <= self._ready_upto]
            trim_to = min(int(eligible.max()), p) if eligible.size else 0
            if trim_to > self._reveal_offset:
                cut = trim_to - self._reveal_offset
                del self._reveal_tasks[:cut]
                del self._reveal_anchors[:cut]
                self._reveal_offset = trim_to
                self._entry_values = None
            out = {"compacted_tasks": k, "compacted_events": m}
        if telemetry.enabled():
            metrics = _stream_metrics()
            metrics["tasks_compacted"].inc(k)
            metrics["events_compacted"].inc(m)
        return out

    def _fold_summary(
        self, trace: ObservedTrace, k: int, m: int, p_end: int
    ) -> None:
        """Accumulate the first *m* rows (*k* tasks) into the summary."""
        sk = trace.skeleton
        services = sk.service_times()[:m]
        queues = sk.queue[:m]
        valid = ~np.isnan(services)
        counts = np.bincount(queues, minlength=self.n_queues)
        n_obs = np.bincount(queues[valid], minlength=self.n_queues)
        s_sum = np.bincount(
            queues[valid], weights=services[valid], minlength=self.n_queues
        )
        s_sq = np.bincount(
            queues[valid], weights=services[valid] ** 2,
            minlength=self.n_queues,
        )
        if self._summary is None:
            self._summary = CompactionSummary(n_queues=self.n_queues)
        s = self._summary
        s.n_tasks += k
        s.n_events += m
        first = self._ready[self._compacted_upto - self._ready_offset][1]
        last = self._ready[p_end - 1 - self._ready_offset][1]
        s.first_entry = min(s.first_entry, first)
        s.last_entry = max(s.last_entry, last)
        for q in range(self.n_queues):
            s.events_per_queue[q] += int(counts[q])
            s.observed_services_per_queue[q] += int(n_obs[q])
            s.service_time_sum[q] += float(s_sum[q])
            s.service_time_sumsq[q] += float(s_sq[q])

    def memory_stats(self) -> dict:
        """Sizes of every growable container (the soak test's RSS proxy).

        With a retention horizon and an advancing watermark each of these
        is bounded; without one, ``retained_tasks`` / ``retained_events``
        / ``ready_entries`` grow with the stream — exactly the unbounded
        history this PR's compaction exists to cut.
        """
        with self._lock:
            retained_events = (
                self._assembler.n_events
                if self._assembler is not None
                else sum(len(v) for v in self._final_records.values())
            )
            return {
                "buffered_records": self._n_buffered,
                "retained_tasks": len(self._final_records),
                "retained_events": retained_events,
                "reveal_positions": len(self._reveal_tasks),
                "ready_entries": len(self._ready),
                "slot_entries": len(self._slot_task),
                "resolved_slots": len(self._resolved),
                "dropped_tasks": len(self._dropped_tasks),
                "compacted_tasks": self._compacted_upto,
                "compacted_events": self.n_compacted_events,
            }

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Everything needed to rebuild this stream after a restart.

        Plain picklable containers only.  The assembled trace itself is
        *not* stored — :meth:`from_state` reassembles it from the record
        log deterministically, which is what makes restored window
        estimates bitwise identical.  With compaction the record log
        holds only the retained tail (the compacted prefix ships as its
        summary plus the trimmed reveal columns), so the snapshot is
        bounded by the retention horizon instead of stream age.
        """
        with self._lock:
            return {
                "version": 2,
                "n_queues": self.n_queues,
                "lateness": self.lateness,
                "max_pending": self.max_pending,
                "retain": self.retain,
                "watermark": float(self._watermark),
                "sealed": self._sealed,
                "buffer": {t: dict(v) for t, v in self._buffer.items()},
                "expected": dict(self._expected),
                "slot_task": dict(self._slot_task),
                "resolved": dict(self._resolved),
                "next_slot": self._next_slot,
                "final_records": {
                    t: list(v) for t, v in self._final_records.items()
                },
                "dropped_tasks": sorted(self._dropped_tasks),
                "n_polled": self._cursor,
                "reveal_offset": self._reveal_offset,
                "reveal_tasks": list(self._reveal_tasks),
                "reveal_anchors": list(self._reveal_anchors),
                "ready_offset": self._ready_offset,
                "ready": list(self._ready),
                "ready_upto": self._ready_upto,
                "horizon": self._horizon,
                "compacted_upto": self._compacted_upto,
                "compacted_hwm": self._compacted_hwm,
                "compacted_slot_upto": self._compacted_slot_upto,
                "n_compacted_events": self.n_compacted_events,
                "compaction_summary": (
                    None if self._summary is None else self._summary.to_dict()
                ),
                "counters": {
                    "n_admitted": self.n_admitted,
                    "n_duplicates": self.n_duplicates,
                    "n_late": self.n_late,
                    "n_stragglers": self.n_stragglers,
                    "n_dropped_tasks": self.n_dropped_tasks,
                },
            }

    @classmethod
    def from_state(cls, state: dict) -> "LiveTraceStream":
        """Rebuild a stream from :meth:`snapshot_state` output.

        Accepts version 1 (pre-compaction) and version 2 snapshots.  The
        retained record log replays through the incremental assembler
        (falling back to the sort-based path exactly when the original
        did), reveal state is restored verbatim (v2) or recomputed from
        the record log (v1), and the poll cursor returns to where the
        snapshot left it — so the next :meth:`poll` hands the estimator
        exactly the tasks it had not yet consumed.
        """
        version = state.get("version")
        if version not in (1, 2):
            raise IngestError(
                f"unrecognized stream snapshot version: {version!r}"
            )
        stream = cls(
            n_queues=state["n_queues"],
            lateness=state["lateness"],
            max_pending=state["max_pending"],
            retain=state.get("retain"),
        )
        stream._watermark = state["watermark"]
        stream._sealed = state["sealed"]
        stream._buffer = {
            int(t): {int(s): r for s, r in v.items()}
            for t, v in state["buffer"].items()
        }
        stream._n_buffered = sum(len(v) for v in stream._buffer.values())
        stream._expected = {int(t): int(n) for t, n in state["expected"].items()}
        stream._slot_task = {int(s): int(t) for s, t in state["slot_task"].items()}
        stream._resolved = {int(s): v for s, v in state["resolved"].items()}
        stream._next_slot = int(state["next_slot"])
        stream._final_records = {
            int(t): list(v) for t, v in state["final_records"].items()
        }
        stream._dropped_tasks = set(state["dropped_tasks"])
        for name, value in state["counters"].items():
            setattr(stream, name, int(value))
        # Replay the retained record log through the incremental
        # assembler (insertion order *is* the finalize order).
        for task, ordered in stream._final_records.items():
            if stream._assembler is not None and not stream._assembler.append(
                ordered
            ):
                stream._assembler = None
        stream._final_slots = {
            task: slot
            for slot, task in stream._slot_task.items()
            if stream._resolved.get(slot) == "final"
        }
        n_polled = int(state["n_polled"])
        if version == 1:
            # Pre-compaction snapshot: recompute the reveal columns from
            # the record log, the deterministic path ingestion takes.
            for task, ordered in stream._final_records.items():
                stream._append_reveal_columns(task, ordered)
            stream._advance_reveal()
        else:
            stream._reveal_offset = int(state["reveal_offset"])
            stream._reveal_tasks = [int(t) for t in state["reveal_tasks"]]
            stream._reveal_anchors = [
                float(a) for a in state["reveal_anchors"]
            ]
            stream._ready_offset = int(state["ready_offset"])
            stream._ready = [(int(t), float(e)) for t, e in state["ready"]]
            stream._ready_upto = int(state["ready_upto"])
            stream._horizon = float(state["horizon"])
            stream._compacted_upto = int(state["compacted_upto"])
            hwm = state["compacted_hwm"]
            stream._compacted_hwm = None if hwm is None else int(hwm)
            stream._compacted_slot_upto = int(state["compacted_slot_upto"])
            stream.n_compacted_events = int(state["n_compacted_events"])
            summary = state["compaction_summary"]
            if summary is not None:
                stream._summary = CompactionSummary.from_dict(summary)
            # Integrity: every retained (non-compacted) reveal position
            # must be backed by its task's records.
            start = stream._compacted_upto - stream._reveal_offset
            if any(
                t not in stream._final_records
                for t in stream._reveal_tasks[start:]
            ):
                raise IngestError(
                    "corrupt snapshot: revealed tasks are missing from the "
                    "record log"
                )
            stream._advance_reveal()
        if n_polled > stream._ready_offset + len(stream._ready):
            raise IngestError(
                f"corrupt snapshot: {n_polled} tasks were polled but only "
                f"{stream._ready_offset + len(stream._ready)} are revealable "
                "from the record log"
            )
        stream._cursor = n_polled
        return stream
