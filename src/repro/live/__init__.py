"""Live ingestion + serving: the streaming estimator as an always-on service.

The source paper infers the queueing behavior of a *running* system from
partial observations — which only pays off when the estimator runs beside
that system continuously.  This package closes that loop on top of the
PR 2–4 engine stack:

* :mod:`repro.live.records` — measurement records: one event's identity,
  its queue's event-counter value (what pins the frozen order), and any
  measured times; plus the record↔trace converters.
* :mod:`repro.live.stream` — :class:`LiveTraceStream`, a
  :class:`~repro.online.streaming.TraceStream` fed by an ingest API: an
  out-of-order buffer, watermark-based horizon advancement with a
  configurable lateness bound (stragglers are counted and dropped), and
  bounded-queue backpressure.
* :mod:`repro.live.server` — :class:`LiveServer`/:class:`LiveClient`, a
  threaded TCP ingestion + query protocol reusing the length-prefixed
  frame and HMAC handshake machinery of
  :mod:`repro.inference.transport`.
* :mod:`repro.live.service` — :class:`EstimatorService`, the supervisor
  that drives a :class:`~repro.online.streaming.StreamingEstimator` as
  the stream's horizon advances, publishes every window estimate with
  anomaly flags, and checkpoints so a restarted service resumes bitwise.

Equivalence contract: a recorded trace ingested in order with no
stragglers yields window estimates **bitwise identical** to the
replay/windowed path at the same seed, for any shard-worker count —
``tests/live/`` pins it, together with checkpoint→restart→resume
bitwise reproduction of frozen windows.
"""

from repro.live.records import (
    IncrementalAssembler,
    assemble_trace,
    replay_batches,
    trace_to_records,
)
from repro.live.router import (
    DEFAULT_BLOCK,
    IngestRouter,
    entry_partition,
    rebase_slot,
)
from repro.live.server import DEFAULT_AUTHKEY, LiveClient, LiveServer
from repro.live.service import EstimatorService, estimate_to_record
from repro.live.stream import CompactionSummary, LiveTraceStream

__all__ = [
    "LiveTraceStream",
    "CompactionSummary",
    "IncrementalAssembler",
    "LiveServer",
    "LiveClient",
    "EstimatorService",
    "IngestRouter",
    "DEFAULT_BLOCK",
    "entry_partition",
    "rebase_slot",
    "estimate_to_record",
    "trace_to_records",
    "assemble_trace",
    "replay_batches",
    "DEFAULT_AUTHKEY",
]
