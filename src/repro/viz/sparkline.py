"""Width-bounded sparkline primitives for the live ops console.

``repro top`` redraws a fixed-width terminal frame every refresh, so
unlike :mod:`repro.viz.ascii_plots` (one tick per sample, unbounded
width) these primitives resample a series of any length down to a fixed
column budget and render partial-block horizontal bars for latency /
utilization panels.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.viz.ascii_plots import sparkline

__all__ = ["resample", "spark", "hbar", "bar_row", "liveness_dots"]

_PARTIAL_BLOCKS = " ▏▎▍▌▋▊▉█"


def resample(values: Sequence[float], width: int) -> list[float]:
    """Reduce *values* to at most *width* points by bucket-averaging.

    Each output point is the mean of the finite samples in its bucket
    (NaN when a bucket holds none), preserving the overall shape of a
    long series inside a fixed column budget.
    """
    vals = [float(v) for v in values]
    if width <= 0:
        return []
    if len(vals) <= width:
        return vals
    out = []
    for i in range(width):
        lo = (i * len(vals)) // width
        hi = max(lo + 1, ((i + 1) * len(vals)) // width)
        bucket = [v for v in vals[lo:hi] if math.isfinite(v)]
        out.append(sum(bucket) / len(bucket) if bucket else float("nan"))
    return out


def spark(
    values: Sequence[float],
    width: int = 32,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """A sparkline clamped to *width* columns (resampling as needed)."""
    return sparkline(resample(values, width), lo=lo, hi=hi)


def hbar(fraction: float, width: int = 20) -> str:
    """A horizontal bar filling *fraction* (0..1) of *width* columns,
    using eighth-block characters for sub-column resolution."""
    if width <= 0:
        return ""
    if not math.isfinite(fraction):
        return "?" * 1 + " " * (width - 1)
    fraction = min(max(fraction, 0.0), 1.0)
    eighths = int(round(fraction * width * 8))
    full, rem = divmod(eighths, 8)
    full = min(full, width)
    bar = "█" * full
    if rem and full < width:
        bar += _PARTIAL_BLOCKS[rem]
    return bar + " " * (width - len(bar))


def bar_row(
    label: str,
    value: float,
    scale: float,
    width: int = 20,
    label_width: int = 12,
    value_format: str = "{:>10.4g}",
) -> str:
    """One ``label  value |bar|`` row; *scale* pins full-width."""
    fraction = value / scale if scale > 0 and math.isfinite(value) else float("nan")
    return (
        f"{label:<{label_width}} {value_format.format(value)} "
        f"|{hbar(fraction, width)}|"
    )


def liveness_dots(alive: int, total: int) -> str:
    """Worker liveness as filled/hollow dots, e.g. ``●●●○``."""
    alive = max(0, min(alive, total))
    return "●" * alive + "○" * (total - alive)
