"""Terminal (ASCII) visualization of experiment results.

The paper's figures are scatter/series plots; this package renders their
text equivalents so the benchmark harness and examples can show the
*shape* of a result — error boxplots per observation rate (Figure 4),
per-queue estimate series (Figure 5), response-time curves — directly in
a terminal, with no plotting dependency.
"""

from repro.viz.sparkline import bar_row, hbar, liveness_dots, resample, spark

# After the submodule import above: loading repro.viz.sparkline rebinds
# this package's `sparkline` attribute to the module, so the function of
# the same name must be (re)imported last to win.
from repro.viz.ascii_plots import boxplot_panel, series_panel, sparkline

__all__ = [
    "sparkline",
    "series_panel",
    "boxplot_panel",
    "resample",
    "spark",
    "hbar",
    "bar_row",
    "liveness_dots",
]
