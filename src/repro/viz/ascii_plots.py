"""ASCII sparklines, series panels, and boxplot panels."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """Render a numeric series as a unicode sparkline.

    Non-finite values render as spaces.  *lo*/*hi* pin the scale (useful
    when aligning several sparklines); they default to the finite min/max.
    """
    arr = np.asarray(list(values), dtype=float)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo = float(finite.min()) if lo is None else lo
    hi = float(finite.max()) if hi is None else hi
    span = hi - lo
    chars = []
    for v in arr:
        if not math.isfinite(v):
            chars.append(" ")
            continue
        if span <= 0.0:
            chars.append(_TICKS[0])
            continue
        idx = int((v - lo) / span * (len(_TICKS) - 1) + 0.5)
        chars.append(_TICKS[min(max(idx, 0), len(_TICKS) - 1)])
    return "".join(chars)


def series_panel(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str] | None = None,
    title: str | None = None,
    value_format: str = "{:.3f}",
) -> str:
    """Aligned sparklines + last values for several named series.

    All series share one vertical scale so relative magnitudes read
    correctly — the Figure 5 layout (one line per queue).
    """
    all_values = [v for vals in series.values() for v in vals if math.isfinite(v)]
    lo = min(all_values) if all_values else 0.0
    hi = max(all_values) if all_values else 1.0
    name_width = max((len(n) for n in series), default=4)
    lines = []
    if title:
        lines.append(title)
    if x_labels is not None:
        lines.append(" " * (name_width + 2) + " ".join(x_labels))
    for name, vals in series.items():
        vals = list(vals)
        last = next(
            (v for v in reversed(vals) if math.isfinite(v)), float("nan")
        )
        lines.append(
            f"{name:<{name_width}}  {sparkline(vals, lo, hi)}  "
            f"{value_format.format(last)}"
        )
    lines.append(f"{'':<{name_width}}  scale: [{lo:.4g}, {hi:.4g}]")
    return "\n".join(lines)


def boxplot_panel(
    groups: Mapping[str, Sequence[float]],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal ASCII boxplots, one row per group (the Figure 4 layout).

    Whiskers span min..max, the box spans q1..q3, ``|`` marks the median.
    All rows share one horizontal scale.
    """
    cleaned = {
        name: np.asarray([v for v in vals if math.isfinite(v)], dtype=float)
        for name, vals in groups.items()
    }
    cleaned = {name: vals for name, vals in cleaned.items() if vals.size}
    if not cleaned:
        return title or ""
    lo = min(float(v.min()) for v in cleaned.values())
    hi = max(float(v.max()) for v in cleaned.values())
    span = max(hi - lo, 1e-300)

    def col(x: float) -> int:
        return int((x - lo) / span * (width - 1) + 0.5)

    name_width = max(len(n) for n in cleaned)
    lines = []
    if title:
        lines.append(title)
    for name, vals in cleaned.items():
        q1, med, q3 = (float(np.percentile(vals, p)) for p in (25, 50, 75))
        row = [" "] * width
        for x in range(col(float(vals.min())), col(float(vals.max())) + 1):
            row[x] = "-"
        for x in range(col(q1), col(q3) + 1):
            row[x] = "="
        row[col(med)] = "|"
        lines.append(
            f"{name:<{name_width}}  [{''.join(row)}]  median {med:.4g}"
        )
    lines.append(f"{'':<{name_width}}   scale: [{lo:.4g}, {hi:.4g}]")
    return "\n".join(lines)
