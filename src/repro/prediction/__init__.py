"""What-if prediction from estimated parameters (the paper's Section 1 hook).

"Queueing models predict the explosion in system latency under high
workload ... allowing the model to extrapolate from performance under low
load to performance under high load.  This is useful because it allows us
to predict the amount of load that will cause a system to become
unresponsive, without actually allowing it to fail."

Once StEM has estimated a network's rates from a thin trace, this package
answers the classical capacity-planning questions *from those estimates*:
response-time curves vs hypothetical load (analytically via Jackson
product form, or by re-simulating the fitted network), and the maximum
sustainable arrival rate.
"""

from repro.prediction.whatif import (
    LoadSweepResult,
    predict_response_curve,
    saturation_point,
    simulate_at_load,
)

__all__ = [
    "predict_response_curve",
    "simulate_at_load",
    "saturation_point",
    "LoadSweepResult",
]
