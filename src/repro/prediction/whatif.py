"""Load extrapolation from a fitted queueing network."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.network import QueueingNetwork
from repro.queueing_theory import analyze_jackson
from repro.rng import RandomState, as_generator, spawn
from repro.simulate import simulate_network


@dataclass(frozen=True)
class LoadSweepResult:
    """Predicted response times across hypothetical arrival rates.

    Attributes
    ----------
    arrival_rates:
        The swept hypothetical ``lambda`` values.
    mean_response:
        Predicted end-to-end mean response per rate (``inf`` where some
        queue saturates, analytic mode only).
    per_queue_waiting:
        Array of shape ``(n_rates, n_queues)``: predicted per-queue mean
        waiting (``nan``/``inf`` where unstable).
    mode:
        ``"analytic"`` (Jackson product form) or ``"simulation"``.
    """

    arrival_rates: np.ndarray
    mean_response: np.ndarray
    per_queue_waiting: np.ndarray
    mode: str

    def knee(self, factor: float = 3.0) -> float | None:
        """First swept rate whose response exceeds *factor* x the lowest.

        A simple "load that makes the system unresponsive" indicator; None
        if the sweep never crosses the threshold.
        """
        finite = self.mean_response[np.isfinite(self.mean_response)]
        if finite.size == 0:
            return None
        base = float(finite.min())
        for rate, resp in zip(self.arrival_rates, self.mean_response):
            if not np.isfinite(resp) or resp > factor * base:
                return float(rate)
        return None


def predict_response_curve(
    network: QueueingNetwork,
    arrival_rates: np.ndarray,
    mode: str = "analytic",
    n_tasks: int = 2000,
    n_repetitions: int = 3,
    random_state: RandomState = None,
) -> LoadSweepResult:
    """Predict response times of *network* under hypothetical loads.

    Parameters
    ----------
    network:
        Typically the fitted network, e.g.
        ``original.with_rates(stem_result.rates)``.
    arrival_rates:
        Hypothetical ``lambda`` values to sweep.
    mode:
        ``"analytic"`` uses Jackson product form (exact for the M/M/1
        model, instantaneous, reports ``inf`` past saturation);
        ``"simulation"`` re-simulates the fitted network, which also
        resolves the *transient* behaviour of overloaded regimes.
    n_tasks, n_repetitions:
        Simulation-mode effort per swept rate.
    """
    arrival_rates = np.asarray(arrival_rates, dtype=float)
    if arrival_rates.ndim != 1 or arrival_rates.size == 0 or np.any(arrival_rates <= 0):
        raise ConfigurationError("arrival_rates must be a non-empty positive 1-D array")
    if mode not in ("analytic", "simulation"):
        raise ConfigurationError(f"unknown prediction mode {mode!r}")
    n_queues = network.n_queues
    responses = np.empty(arrival_rates.size)
    waiting = np.full((arrival_rates.size, n_queues), np.nan)
    rng = as_generator(random_state)
    for i, lam in enumerate(arrival_rates):
        rates = network.rates_vector()
        rates[0] = lam
        scaled = network.with_rates(rates)
        if mode == "analytic":
            analysis = analyze_jackson(scaled)
            responses[i] = analysis.mean_response
            for q in range(1, n_queues):
                metrics = analysis.per_queue[q]
                waiting[i, q] = metrics.mean_waiting if metrics else np.inf
        else:
            reps = []
            per_queue = []
            for stream in spawn(rng, n_repetitions):
                sim = simulate_network(scaled, n_tasks, random_state=stream)
                reps.append(np.mean(list(sim.events.task_response_times().values())))
                per_queue.append(sim.events.mean_waiting_by_queue())
            responses[i] = float(np.mean(reps))
            waiting[i] = np.mean(per_queue, axis=0)
    return LoadSweepResult(
        arrival_rates=arrival_rates,
        mean_response=responses,
        per_queue_waiting=waiting,
        mode=mode,
    )


def simulate_at_load(
    network: QueueingNetwork,
    arrival_rate: float,
    n_tasks: int = 2000,
    random_state: RandomState = None,
):
    """Re-simulate the fitted network at one hypothetical arrival rate."""
    rates = network.rates_vector()
    rates[0] = float(arrival_rate)
    return simulate_network(network.with_rates(rates), n_tasks, random_state=random_state)


def saturation_point(network: QueueingNetwork) -> float:
    """The largest arrival rate with a steady state (the capacity limit).

    Solves ``max lambda s.t. lambda * visits_q * mean_service_q < 1`` for
    every queue: the bottleneck queue's capacity divided by its expected
    visits per task.
    """
    visits = network.fsm.expected_visits()
    limit = np.inf
    for q in range(1, network.n_queues):
        if visits[q] <= 0.0:
            continue
        capacity = 1.0 / network.service_of(q).mean
        limit = min(limit, capacity / visits[q])
    if not np.isfinite(limit):
        raise ConfigurationError("no queue is ever visited; capacity is unbounded")
    return float(limit)
