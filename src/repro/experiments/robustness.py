"""Robustness to service-distribution misspecification.

The paper's Section 1 critique: queueing theory "has a reputation ... for
making unrealistic assumptions on the distributions over system response
times, and of lacking robustness to divergence from the modeling
assumptions".  Its rebuttal is that the *inference framework* is flexible
even when the fitted family is wrong.  This experiment quantifies that:
generate traces whose true service law sweeps the SCV axis (deterministic
-> Erlang -> exponential -> hyper-exponential / log-normal) while the
inference keeps assuming M/M/1, and measure the service-MEAN recovery
error.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    ServiceDistribution,
)
from repro.inference import run_stem
from repro.network import QueueingNetwork, build_tandem_network
from repro.observation import TaskSampling
from repro.rng import RandomState, spawn
from repro.simulate import simulate_network


def service_family(name: str, mean: float) -> ServiceDistribution:
    """A named service distribution with the requested mean.

    Families (by squared coefficient of variation): ``deterministic``
    (SCV 0), ``erlang4`` (0.25), ``exponential`` (1), ``lognormal2``
    (2), ``hyperexp4`` (~4).
    """
    if name == "deterministic":
        return Deterministic(value=mean)
    if name == "erlang4":
        return Erlang(k=4, rate=4.0 / mean)
    if name == "exponential":
        return Exponential(rate=1.0 / mean)
    if name == "lognormal2":
        return LogNormal.from_mean_scv(mean=mean, scv=2.0)
    if name == "hyperexp4":
        # Two-branch balanced-means hyper-exponential with SCV ~ 4.
        return HyperExponential(
            probs=(0.9, 0.1), rates=(0.9 / (0.5 * mean), 0.1 / (0.5 * mean))
        )
    raise ValueError(f"unknown family {name!r}")


@dataclass
class RobustnessPoint:
    """Error of the M/M/1 inference under one true service family."""

    family: str
    scv: float
    mean_abs_error: float
    relative_error: float


def run_robustness(
    families: tuple[str, ...] = (
        "deterministic", "erlang4", "exponential", "lognormal2", "hyperexp4",
    ),
    arrival_rate: float = 3.0,
    mean_service: float = 0.2,
    n_tasks: int = 500,
    n_repetitions: int = 3,
    fraction: float = 0.15,
    stem_iterations: int = 60,
    random_state: RandomState = None,
) -> list[RobustnessPoint]:
    """Sweep true service families while fitting the M/M/1 model.

    A two-queue tandem at moderate load; the reported error is on the
    estimated *mean* service time, the quantity localization needs.
    """
    base = build_tandem_network(arrival_rate, [1.0 / mean_service] * 2)
    streams = iter(spawn(random_state, len(families) * n_repetitions * 3))
    out = []
    for family in families:
        dist = service_family(family, mean_service)
        services = dict(base.services)
        for name in ("q1", "q2"):
            services[name] = dist
        network = QueueingNetwork(
            queue_names=base.queue_names, services=services, fsm=base.fsm
        )
        errors = []
        for _ in range(n_repetitions):
            sim = simulate_network(network, n_tasks, random_state=next(streams))
            trace = TaskSampling(fraction=fraction).observe(
                sim.events, random_state=next(streams)
            )
            stem = run_stem(
                trace, n_iterations=stem_iterations, init_method="heuristic",
                random_state=next(streams),
            )
            true_means = sim.events.mean_service_by_queue()[1:]
            est_means = stem.mean_service_times()[1:]
            errors.append(float(np.mean(np.abs(est_means - true_means))))
        err = float(np.mean(errors))
        out.append(
            RobustnessPoint(
                family=family,
                scv=float(dist.scv),
                mean_abs_error=err,
                relative_error=err / mean_service,
            )
        )
    return out
