"""The Section 5.1 in-text comparison: StEM vs the observed-mean baseline.

"Comparing these estimators, although the mean error is almost identical,
StEM has only two-thirds of the variance (StEM variance: 9.09e-4,
Mean-observed-service variance: 1.37e-3)."

We reproduce that table: across repetitions, compute each estimator's
service-time estimate per queue, then the estimator variance (variance of
the estimate across repetitions, averaged over queues and structures) and
the mean absolute error of both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import observed_mean_service
from repro.experiments.fig4 import Fig4Config
from repro.inference import run_stem
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.rng import RandomState, spawn
from repro.simulate import simulate_network


@dataclass
class VarianceComparison:
    """Estimator variance and error of StEM vs the observed-mean oracle.

    Attributes
    ----------
    stem_variance / baseline_variance:
        Variance of the per-queue service estimate across repetitions,
        averaged over (structure, queue) cells — the paper's quantity.
    stem_mean_error / baseline_mean_error:
        Mean absolute service-time error of each estimator.
    """

    stem_variance: float
    baseline_variance: float
    stem_mean_error: float
    baseline_mean_error: float
    n_cells: int

    @property
    def variance_ratio(self) -> float:
        """``StEM variance / baseline variance`` (paper: about two thirds)."""
        return self.stem_variance / self.baseline_variance


def run_variance_comparison(
    config: Fig4Config,
    fraction: float = 0.05,
    random_state: RandomState = None,
) -> VarianceComparison:
    """Run the 5 %-observed comparison between StEM and the oracle baseline.

    Uses a *common-random-numbers* design: both estimators see the same
    simulated traces and the same observed task subsets, isolating the
    estimator difference from workload noise.
    """
    streams = iter(
        spawn(random_state, len(config.structures) * config.n_repetitions * 3)
    )
    stem_cells: dict[tuple[str, int], list[float]] = {}
    base_cells: dict[tuple[str, int], list[float]] = {}
    stem_errors: list[float] = []
    base_errors: list[float] = []
    for structure_name, servers in config.structures:
        network = build_three_tier_network(
            arrival_rate=config.arrival_rate,
            servers_per_tier=servers,
            service_rate=config.service_rate,
        )
        for _ in range(config.n_repetitions):
            sim = simulate_network(network, config.n_tasks, random_state=next(streams))
            true_service = sim.events.mean_service_by_queue()
            trace = TaskSampling(fraction=fraction).observe(
                sim.events, random_state=next(streams)
            )
            stem = run_stem(
                trace,
                n_iterations=config.stem_iterations,
                init_method="heuristic",
                random_state=next(streams),
            )
            stem_est = stem.mean_service_times()
            base_est = observed_mean_service(sim.events, trace)
            for q in range(1, sim.events.n_queues):
                key = (structure_name, q)
                stem_cells.setdefault(key, []).append(float(stem_est[q]))
                stem_errors.append(abs(stem_est[q] - true_service[q]))
                if np.isfinite(base_est[q]):
                    base_cells.setdefault(key, []).append(float(base_est[q]))
                    base_errors.append(abs(base_est[q] - true_service[q]))

    def cell_variance(cells: dict[tuple[str, int], list[float]]) -> float:
        variances = [
            np.var(vals, ddof=1) for vals in cells.values() if len(vals) >= 2
        ]
        return float(np.mean(variances)) if variances else float("nan")

    return VarianceComparison(
        stem_variance=cell_variance(stem_cells),
        baseline_variance=cell_variance(base_cells),
        stem_mean_error=float(np.mean(stem_errors)),
        baseline_mean_error=float(np.mean(base_errors)),
        n_cells=len(stem_cells),
    )
