"""Experiment drivers reproducing every table and figure of the paper.

Each driver is shared between the ``benchmarks/`` harness (which prints
the paper-comparable rows) and the ``examples/`` scripts.  Configurations
come in two sizes: ``paper_*`` (the exact scale of the paper) and
``quick_*`` (reduced scale for CI-friendly benchmark runs); the benchmark
files select via the ``REPRO_FULL`` environment variable.
"""

from repro.experiments.fig4 import (
    Fig4Config,
    Fig4Point,
    Fig4Result,
    paper_fig4_config,
    quick_fig4_config,
    run_fig4,
)
from repro.experiments.fig5 import (
    Fig5Config,
    Fig5Result,
    paper_fig5_config,
    quick_fig5_config,
    run_fig5,
)
from repro.experiments.results import quartile_row, render_table
from repro.experiments.variance import VarianceComparison, run_variance_comparison

__all__ = [
    "Fig4Config",
    "Fig4Point",
    "Fig4Result",
    "run_fig4",
    "paper_fig4_config",
    "quick_fig4_config",
    "Fig5Config",
    "Fig5Result",
    "run_fig5",
    "paper_fig5_config",
    "quick_fig5_config",
    "VarianceComparison",
    "run_variance_comparison",
    "render_table",
    "quartile_row",
]
