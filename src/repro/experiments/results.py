"""Result-table utilities shared by the benchmark harness."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def quartile_row(values: Sequence[float]) -> dict[str, float]:
    """Five-number summary of a sample (the data behind a boxplot panel)."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=float)
    if arr.size == 0:
        return {"min": np.nan, "q1": np.nan, "median": np.nan, "q3": np.nan, "max": np.nan}
    return {
        "min": float(arr.min()),
        "q1": float(np.percentile(arr, 25)),
        "median": float(np.median(arr)),
        "q3": float(np.percentile(arr, 75)),
        "max": float(arr.max()),
    }


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table (floats shown with 4 significant digits)."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if np.isnan(cell):
                return "nan"
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
