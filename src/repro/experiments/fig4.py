"""Figure 4: estimation error vs observation rate on synthetic networks.

Paper Section 5.1: three-tier networks (Figure 1 without the network
queues), arrival rate ``lambda = 10``, every service rate ``mu = 5``, five
structures varying servers per tier, 1 000 tasks each, 10 repetitions;
observe all arrivals of a random task sample at 5 %, 10 %, 25 %; plot the
absolute error of the recovered per-queue service time (left panel) and
waiting time (right panel).

Each point of the figure is "the absolute error in the estimate for one
queue in one repetition for one simulated structure" — the driver returns
exactly those points, and the benchmark prints their quartiles per panel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.results import quartile_row
from repro.inference import estimate_posterior, run_stem
from repro.network import build_three_tier_network, paper_synthetic_structures
from repro.observation import TaskSampling
from repro.rng import RandomState, spawn
from repro.simulate import simulate_network


@dataclass(frozen=True)
class Fig4Config:
    """Scale knobs for the Figure-4 experiment."""

    structures: tuple[tuple[str, tuple[int, int, int]], ...]
    fractions: tuple[float, ...] = (0.05, 0.10, 0.25)
    n_tasks: int = 1000
    n_repetitions: int = 10
    arrival_rate: float = 10.0
    service_rate: float = 5.0
    stem_iterations: int = 100
    posterior_samples: int = 25
    posterior_burn_in: int = 10


def paper_fig4_config() -> Fig4Config:
    """The paper's full scale: 5 structures x 10 repetitions x 1000 tasks."""
    return Fig4Config(structures=tuple(paper_synthetic_structures()))


def quick_fig4_config() -> Fig4Config:
    """Reduced scale for fast benchmark runs (same code path)."""
    return Fig4Config(
        structures=tuple(paper_synthetic_structures()[:3]),
        n_tasks=300,
        n_repetitions=2,
        stem_iterations=60,
        posterior_samples=15,
        posterior_burn_in=5,
    )


@dataclass(frozen=True)
class Fig4Point:
    """One dot of Figure 4: one queue, one repetition, one structure."""

    structure: str
    fraction: float
    repetition: int
    queue: int
    service_error: float
    waiting_error: float
    service_estimate: float
    service_truth: float
    waiting_estimate: float
    waiting_truth: float


@dataclass
class Fig4Result:
    """All Figure-4 points plus the summaries the paper quotes."""

    points: list[Fig4Point] = field(default_factory=list)

    def errors(self, fraction: float, kind: str) -> np.ndarray:
        """All absolute errors for one x-axis position and panel."""
        key = "service_error" if kind == "service" else "waiting_error"
        return np.array(
            [getattr(p, key) for p in self.points if p.fraction == fraction]
        )

    def panel_quartiles(self, kind: str) -> dict[float, dict[str, float]]:
        """Boxplot data per observed fraction for one panel."""
        fractions = sorted({p.fraction for p in self.points})
        return {f: quartile_row(self.errors(f, kind)) for f in fractions}

    def median_error(self, fraction: float, kind: str) -> float:
        """The paper's headline summary (e.g. 0.033 service @ 5 %)."""
        errs = self.errors(fraction, kind)
        return float(np.median(errs[np.isfinite(errs)]))


def run_fig4(config: Fig4Config, random_state: RandomState = None) -> Fig4Result:
    """Run the full sweep: structures x repetitions x observation fractions.

    For each run: simulate ground truth, censor with
    :class:`~repro.observation.TaskSampling`, estimate rates with StEM,
    then estimate waiting times by running the Gibbs sampler at the fixed
    estimate (paper Section 4).  Service estimates are the model means
    ``1 / mu_hat``; truths are the realized per-queue means of the ground
    truth.
    """
    result = Fig4Result()
    n_runs = len(config.structures) * config.n_repetitions
    streams = iter(spawn(random_state, n_runs * (1 + 2 * len(config.fractions))))
    for structure_name, servers in config.structures:
        network = build_three_tier_network(
            arrival_rate=config.arrival_rate,
            servers_per_tier=servers,
            service_rate=config.service_rate,
        )
        for rep in range(config.n_repetitions):
            sim = simulate_network(network, config.n_tasks, random_state=next(streams))
            true_service = sim.events.mean_service_by_queue()
            true_waiting = sim.events.mean_waiting_by_queue()
            for fraction in config.fractions:
                trace = TaskSampling(fraction=fraction).observe(
                    sim.events, random_state=next(streams)
                )
                rng = next(streams)
                stem = run_stem(
                    trace,
                    n_iterations=config.stem_iterations,
                    init_method="heuristic",
                    random_state=rng,
                )
                posterior = estimate_posterior(
                    trace,
                    rates=stem.rates,
                    n_samples=config.posterior_samples,
                    burn_in=config.posterior_burn_in,
                    state=stem.sampler.state,
                    random_state=rng,
                )
                est_service = stem.mean_service_times()
                est_waiting = posterior.waiting_mean
                for q in range(1, sim.events.n_queues):
                    result.points.append(
                        Fig4Point(
                            structure=structure_name,
                            fraction=fraction,
                            repetition=rep,
                            queue=q,
                            service_error=abs(est_service[q] - true_service[q]),
                            waiting_error=abs(est_waiting[q] - true_waiting[q]),
                            service_estimate=float(est_service[q]),
                            service_truth=float(true_service[q]),
                            waiting_estimate=float(est_waiting[q]),
                            waiting_truth=float(true_waiting[q]),
                        )
                    )
    return result
