"""Figure 5: per-queue estimates vs observation rate on the web application.

Paper Section 5.2: the movie-voting application's trace (simulated here —
see :mod:`repro.webapp` and DESIGN.md) is censored at a range of observed
fractions up to 50 %; for each fraction, StEM estimates every queue's
mean service time (left panel) and the Gibbs sampler at the estimate gives
the mean waiting time (right panel).  The paper's qualitative findings to
reproduce: estimates stable down to ~10 %, and one web server (19 requests
assigned) visibly unstable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.inference import estimate_posterior, run_stem
from repro.observation import TaskSampling
from repro.rng import RandomState, spawn
from repro.simulate import SimulationResult
from repro.webapp import WebAppConfig, generate_webapp_trace


@dataclass(frozen=True)
class Fig5Config:
    """Scale knobs for the Figure-5 experiment."""

    webapp: WebAppConfig
    fractions: tuple[float, ...] = (0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50)
    stem_iterations: int = 80
    posterior_samples: int = 20
    posterior_burn_in: int = 10


def paper_fig5_config() -> Fig5Config:
    """Full scale: 5 759 requests / 23 036 events, seven fractions."""
    return Fig5Config(webapp=WebAppConfig())


def quick_fig5_config() -> Fig5Config:
    """Reduced scale (same topology and starved server) for fast benches."""
    return Fig5Config(
        webapp=WebAppConfig(n_requests=800, duration=250.0),
        fractions=(0.05, 0.10, 0.25, 0.50),
        stem_iterations=50,
        posterior_samples=12,
        posterior_burn_in=6,
    )


@dataclass
class Fig5Result:
    """Estimate series per queue and observed fraction.

    ``service[f][q]`` / ``waiting[f][q]`` hold the estimates at observed
    fraction ``f``; ``requests_per_queue`` counts ground-truth events so
    the starved server can be identified.
    """

    queue_names: tuple[str, ...]
    fractions: tuple[float, ...]
    service: dict[float, np.ndarray] = field(default_factory=dict)
    waiting: dict[float, np.ndarray] = field(default_factory=dict)
    true_service: np.ndarray | None = None
    true_waiting: np.ndarray | None = None
    requests_per_queue: np.ndarray | None = None

    def starved_queue(self) -> int:
        """Index of the web server the balancer starved."""
        counts = self.requests_per_queue.copy().astype(float)
        counts[0] = np.inf  # arrival queue
        return int(np.argmin(counts))

    def stability_spread(self, q: int, min_fraction: float = 0.10) -> float:
        """Max - min of a queue's service estimates over fractions >= min_fraction.

        The paper's stability claim: for well-fed queues this spread is
        small once at least ~10 % of requests are observed.
        """
        vals = [
            self.service[f][q] for f in self.fractions if f >= min_fraction
        ]
        return float(np.max(vals) - np.min(vals))


def run_fig5(
    config: Fig5Config,
    random_state: RandomState = None,
    sim: SimulationResult | None = None,
) -> Fig5Result:
    """Run the observation-rate sweep on the (simulated) web application."""
    streams = iter(spawn(random_state, 1 + 2 * len(config.fractions)))
    if sim is None:
        sim = generate_webapp_trace(config.webapp, random_state=next(streams))
    else:
        next(streams)
    events = sim.events
    result = Fig5Result(
        queue_names=sim.network.queue_names,
        fractions=tuple(config.fractions),
        true_service=events.mean_service_by_queue(),
        true_waiting=events.mean_waiting_by_queue(),
        requests_per_queue=events.events_per_queue(),
    )
    for fraction in config.fractions:
        trace = TaskSampling(fraction=fraction).observe(
            events, random_state=next(streams)
        )
        rng = next(streams)
        stem = run_stem(
            trace,
            n_iterations=config.stem_iterations,
            init_method="heuristic",
            random_state=rng,
        )
        posterior = estimate_posterior(
            trace,
            rates=stem.rates,
            n_samples=config.posterior_samples,
            burn_in=config.posterior_burn_in,
            state=stem.sampler.state,
            random_state=rng,
        )
        result.service[fraction] = stem.mean_service_times()
        result.waiting[fraction] = posterior.waiting_mean
    return result
