"""Classical steady-state fitting — what pre-paper practice would do.

Given observed per-queue responses, invert the M/M/1 sojourn formula
``E[R] = 1 / (mu - lambda_q)`` to get ``mu = lambda_q + 1 / mean(R)``.
This requires (a) believing the steady-state model and (b) a stable queue;
on the paper's overloaded tiers the formula produces garbage or no answer
at all, which is precisely the critique of Section 1.
"""

from __future__ import annotations

import numpy as np

from repro.observation import ObservedTrace


def steady_state_fit(
    trace: ObservedTrace, arrival_rates: np.ndarray | None = None
) -> np.ndarray:
    """Fit per-queue service rates by inverting the M/M/1 response formula.

    Parameters
    ----------
    trace:
        Observed trace; only events with observed arrival and pinned
        departure contribute responses.
    arrival_rates:
        Per-queue arrival rates ``lambda_q``; estimated from observed
        per-queue event counts and the observed time span when omitted.

    Returns
    -------
    numpy.ndarray
        Estimated rates (index 0 = system arrival rate); ``nan`` where no
        responses were observed.  No stability check is applied — for an
        overloaded queue the estimate is meaningless by construction, which
        is the point of the comparison.
    """
    skeleton = trace.skeleton
    n_queues = skeleton.n_queues
    responses: list[list[float]] = [[] for _ in range(n_queues)]
    observed_times: list[float] = []
    for e in range(skeleton.n_events):
        if not trace.arrival_observed[e] or skeleton.seq[e] == 0:
            continue
        observed_times.append(float(skeleton.arrival[e]))
        if not trace.departure_is_fixed(e):
            continue
        q = int(skeleton.queue[e])
        responses[q].append(float(skeleton.departure[e] - skeleton.arrival[e]))
    if arrival_rates is None:
        # The observed arrivals are a uniform subsample, so their span is a
        # good proxy for the full trace span; the *total* per-queue event
        # counts are known exactly from the skeleton (event counters).
        arrival_rates = np.zeros(n_queues)
        if len(observed_times) >= 2:
            span = max(observed_times) - min(observed_times)
            for q in range(1, n_queues):
                total_at_q = skeleton.queue_order(q).size
                arrival_rates[q] = total_at_q / max(span, 1e-12)
    rates = np.full(n_queues, np.nan)
    for q in range(1, n_queues):
        if not responses[q]:
            continue
        mean_r = float(np.mean(responses[q]))
        rates[q] = arrival_rates[q] + 1.0 / max(mean_r, 1e-12)
    if len(observed_times) >= 2:
        span = max(observed_times) - min(observed_times)
        rates[0] = max(skeleton.n_tasks - 1, 1) / max(span, 1e-12)
    return rates
