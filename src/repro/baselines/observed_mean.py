"""The paper's oracle baseline: mean true service time of observed tasks.

"As a baseline, we use the sample mean of the service time for the tasks
that are observed."  (Paper Section 5.1.)  The baseline needs the true
service times, which involve the departures of *other* (possibly
unobserved) tasks through ``max(a_e, d_rho(e))`` — information no real
measurement at this observation rate provides — hence "unfair to StEM".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ObservationError
from repro.events import EventSet
from repro.observation import ObservedTrace


def _observed_task_events(ground_truth: EventSet, trace: ObservedTrace) -> np.ndarray:
    """Mask of events belonging to fully observed tasks."""
    if ground_truth.n_events != trace.skeleton.n_events:
        raise ObservationError("trace does not match the ground-truth event set")
    mask = np.zeros(ground_truth.n_events, dtype=bool)
    for task_id in ground_truth.task_ids:
        idx = ground_truth.events_of_task(task_id)
        non_init = idx[ground_truth.seq[idx] != 0]
        if non_init.size and np.all(trace.arrival_observed[non_init]):
            mask[idx] = True
    return mask


def observed_mean_service(
    ground_truth: EventSet, trace: ObservedTrace
) -> np.ndarray:
    """Per-queue mean of the *true* service times over observed tasks.

    Returns ``nan`` for queues that served no observed task (the paper's
    web-application experiment hits exactly this for the starved server).
    Index 0 reports the mean interarrival gap of observed initial events.
    """
    mask = _observed_task_events(ground_truth, trace)
    services = ground_truth.service_times()
    out = np.full(ground_truth.n_queues, np.nan)
    for q in range(ground_truth.n_queues):
        members = ground_truth.queue_order(q)
        members = members[mask[members]]
        if members.size:
            out[q] = float(services[members].mean())
    return out


def observed_mean_waiting(
    ground_truth: EventSet, trace: ObservedTrace
) -> np.ndarray:
    """Per-queue mean of the *true* waiting times over observed tasks."""
    mask = _observed_task_events(ground_truth, trace)
    waits = ground_truth.waiting_times()
    out = np.full(ground_truth.n_queues, np.nan)
    for q in range(ground_truth.n_queues):
        members = ground_truth.queue_order(q)
        members = members[mask[members]]
        if members.size:
            out[q] = float(waits[members].mean())
    return out
