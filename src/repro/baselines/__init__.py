"""Baseline estimators the paper compares against (Section 5.1).

* :func:`~repro.baselines.observed_mean.observed_mean_service` — the
  paper's baseline: "the sample mean of the service time for the tasks
  that are observed".  As the paper notes, "this comparison is unfair to
  StEM, because the baseline uses the true service times from the observed
  tasks, information that is not available to StEM" — it is an *oracle*
  that reads ground-truth service times for the observed subset.
* :func:`~repro.baselines.complete_mle.complete_data_mle` — the stronger
  oracle that sees everything (the best any estimator could do).
* :func:`~repro.baselines.steady_state.steady_state_fit` — what classical
  queueing theory would do: fit ``mu`` by inverting the M/M/1 response-time
  formula on observed responses (only defined for stable queues; the
  contrast the paper's Section 1 critique draws).
"""

from repro.baselines.complete_mle import complete_data_mle
from repro.baselines.observed_mean import observed_mean_service, observed_mean_waiting
from repro.baselines.steady_state import steady_state_fit

__all__ = [
    "observed_mean_service",
    "observed_mean_waiting",
    "complete_data_mle",
    "steady_state_fit",
]
