"""Complete-data oracle: the MLE when *everything* is observed.

This is the estimator StEM would become with a 100 % observation rate —
the ceiling on achievable accuracy for any incomplete-data method, used by
tests and benchmarks to normalize StEM's error.
"""

from __future__ import annotations

import numpy as np

from repro.events import EventSet
from repro.inference.mstep import mle_rates


def complete_data_mle(ground_truth: EventSet) -> np.ndarray:
    """Exponential-rate MLE per queue from the full trace.

    Identical to one M-step on the ground truth; returned as rates
    (index 0 = arrival rate).
    """
    return mle_rates(ground_truth)
