"""Shared estimator configuration: one dataclass, every construction path.

Before this module existed the estimator knobs were a 13-kwarg signature
copy-pasted across ``StreamingEstimator``, ``EstimatorService`` checkpoints,
``IngestRouter`` key tuples, and two CLI call sites.  ``EstimatorConfig``
is now the single source of truth: estimators hold one, checkpoints carry
``dataclasses.asdict(config)``, the router filters its ``service_config``
against :func:`estimator_config_keys`, and the CLI builds one instance and
hands it to whichever estimator the ``--estimator`` flag names.

Validation lives in ``__post_init__`` so every path — legacy kwargs, the
``config=`` spelling, checkpoint restore, router service configs — rejects
bad values with the same messages the old constructor raised.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Mapping

from repro.errors import InferenceError
from repro.inference.gibbs import KERNELS
from repro.online.windowed import validate_window_params

#: How the streaming estimator re-partitions work between windows.
REPARTITION_MODES = ("incremental", "cold")


@dataclass
class EstimatorConfig:
    """Every estimator knob, in one validated place.

    ``window`` is the only required field.  ``step`` defaults to the
    window (non-overlapping).  The StEM fields (``stem_iterations``,
    ``shards``, ``shard_workers``, ``repartition``, ``warm_workers``) are
    ignored by the SMC estimator; the SMC fields (``n_particles``,
    ``ess_threshold``, ``rejuvenation_sweeps``) are ignored by StEM.
    Both estimators honor ``kernel``/``threads``/``worker_retries`` and
    the window geometry.
    """

    window: float
    step: float | None = None
    stem_iterations: int = 40
    min_observed_tasks: int = 3
    shards: int = 1
    shard_workers: int | None = None
    repartition: str = "incremental"
    warm_workers: bool = True
    kernel: str = "array"
    threads: int = 1
    worker_retries: int = 1
    n_particles: int = 16
    ess_threshold: float = 0.5
    rejuvenation_sweeps: int = 1

    def __post_init__(self) -> None:
        validate_window_params(self.window, self.step, self.stem_iterations, self.shards)
        self.window = float(self.window)
        self.step = self.window if self.step is None else float(self.step)
        self.stem_iterations = int(self.stem_iterations)
        self.min_observed_tasks = int(self.min_observed_tasks)
        self.shards = int(self.shards)
        if self.kernel not in KERNELS:
            raise InferenceError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        self.threads = int(self.threads)
        if self.threads < 1:
            raise InferenceError(f"need at least one thread, got {self.threads}")
        if self.shard_workers is not None:
            self.shard_workers = int(self.shard_workers)
            if self.shard_workers < 1:
                raise InferenceError(
                    f"need at least one shard worker, got {self.shard_workers}"
                )
            if self.shards == 1:
                raise InferenceError(
                    "shard_workers requires shards > 1 — a single shard "
                    "sweeps in-process"
                )
        if self.repartition not in REPARTITION_MODES:
            raise InferenceError(
                f"repartition must be one of {REPARTITION_MODES}, "
                f"got {self.repartition!r}"
            )
        self.warm_workers = bool(self.warm_workers)
        self.worker_retries = int(self.worker_retries)
        if self.worker_retries < 0:
            raise InferenceError(
                f"worker_retries must be >= 0, got {self.worker_retries}"
            )
        self.n_particles = int(self.n_particles)
        if self.n_particles < 2:
            raise InferenceError(
                f"need at least two particles, got {self.n_particles}"
            )
        self.ess_threshold = float(self.ess_threshold)
        if not 0.0 < self.ess_threshold <= 1.0:
            raise InferenceError(
                f"ess_threshold must be in (0, 1], got {self.ess_threshold}"
            )
        self.rejuvenation_sweeps = int(self.rejuvenation_sweeps)
        if self.rejuvenation_sweeps < 1:
            raise InferenceError(
                "need at least one rejuvenation sweep per trigger, "
                f"got {self.rejuvenation_sweeps}"
            )

    def as_dict(self) -> dict:
        """Plain-dict spelling, suitable for checkpoints (all JSON types)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_state(cls, config: Mapping) -> "EstimatorConfig":
        """Rebuild from a checkpoint's config mapping, any version.

        Older checkpoints predate some fields (v1 lacked ``kernel``/
        ``threads``; pre-SMC v2 lacked the particle knobs) — every
        missing field falls back to its dataclass default, which matches
        what those estimators actually ran with.
        """
        state = dict(config)
        for field in fields(cls):
            if field.default is not dataclasses.MISSING:
                state.setdefault(field.name, field.default)
        unknown = set(state) - {field.name for field in fields(cls)}
        if unknown:
            raise InferenceError(
                f"unknown estimator config keys: {sorted(unknown)}"
            )
        return cls(**state)

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "EstimatorConfig":
        """Build from a loose mapping, ignoring keys that are not fields.

        The router's ``service_config`` mixes estimator, stream, and
        service keys in one flat dict; this picks out ours.
        """
        names = {field.name for field in fields(cls)}
        return cls(**{k: v for k, v in dict(mapping).items() if k in names})


def estimator_config_keys() -> tuple[str, ...]:
    """Field names of :class:`EstimatorConfig`, in declaration order."""
    return tuple(field.name for field in fields(EstimatorConfig))
