"""Sequential Monte Carlo estimation: O(arrival) online rate updates.

The streaming StEM path re-runs an M-step-coupled Gibbs chain per window,
so its cost per window scales with the window's *size* even when
consecutive windows overlap almost entirely — exactly the regime live
serving sits in (``step << window``).  :class:`SMCEstimator` replaces the
per-window rebuild with a **particle population over the rate vector**
advanced per ``poll()`` batch, in the iterated-batch-importance-sampling /
resample–move scheme (Chopin 2002; the ``ParticleFilter``/``MCMC`` split
of the tomcat-coordination exemplar):

1. **Reweight — O(new arrivals).**  Each newly revealed task contributes
   cheap observed-only sufficient statistics (entry gaps for queue 0's
   interarrival process; within-task response gaps for the service
   queues), reduced to per-queue ``(count, total)``.  Under particle
   rates θ the batch's surrogate log-likelihood is
   ``Σ_q count_q·log θ_q − θ_q·total_q`` — a vectorized
   ``(n_particles × n_queues)`` update touching nothing but the new
   records.  The surrogate is deliberately crude (response gaps include
   queueing delay); it only *steers resampling* and never reaches a
   published estimate directly, because —

2. **Resample + rejuvenate — only when the population degrades.**  When
   the effective sample size ``1/Σ w²`` falls below
   ``ess_threshold · n_particles``, particles are systematically
   resampled and then **rejuvenated through the exact window posterior**:
   one shared heuristic initialization and one shared
   :class:`~repro.inference.gibbs.GibbsSampler` (array/native kernel,
   blanket caches built once) serve the whole population — per particle
   the sampler is reseeded (:meth:`~repro.inference.gibbs.GibbsSampler.reseed`),
   loaded with the shared initial times
   (:meth:`~repro.inference.gibbs.GibbsSampler.load_times`), swept
   ``rejuvenation_sweeps`` times at the particle's rates, and the rates
   are refreshed from the swept latent state's conjugate Gamma
   conditional.  This is a valid MCMC move for the window posterior, so
   the published weighted-mean rates inherit the Gibbs chain's
   exactness, not the surrogate's bias.

3. **Publish.**  The window estimate is the weighted particle mean, in
   the same :class:`~repro.online.streaming.StreamEstimate` envelope the
   StEM estimator emits — services, routers, checkpoints, and the wire
   protocol cannot tell the estimators apart.

Cost model: a StEM window pays one initialization plus
``stem_iterations`` coupled sweep/M-step rounds (default 40) on *every*
window; SMC pays a vectorized reweight per window and, only on ESS
triggers, one initialization plus a shared ``stem_iterations // 2``
burn-in plus ``n_particles · rejuvenation_sweeps`` per-particle sweeps.
Under heavy overlap (``step << window``) most windows never trigger,
which is the latency crossover ``benchmarks/bench_smc.py`` gates on.

Seeding follows the streaming estimator's discipline exactly: window *i*
consumes the *i*-th spawn of the seed material, and every window derives
its resample/rejuvenation streams from a pristine clone of its own
child — runs are bit-reproducible and checkpoint→restore→resume is
bitwise (``state_dict`` carries θ, log-weights, and the spawn counter).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.errors import InferenceError
from repro.inference.gibbs import GibbsSampler
from repro.inference.init_heuristic import initial_rates_from_observed
from repro.inference.mstep import mle_rates_from_stats
from repro.inference.pool import initialize_state
from repro.observation import ObservedTrace
from repro.online.streaming import StreamEstimate, StreamingEstimator
from repro.rng import as_generator

#: Rate clamps shared with the M-step (`repro.inference.mstep.mle_rates`).
_MIN_RATE = 1e-9
_MAX_RATE = 1e12

#: Power applied to the surrogate batch log-likelihood before it touches
#: the particle weights.  The surrogate is overconfident by construction
#: — observed response gaps include queueing delay, so treating them as
#: iid exponential service draws overstates the information a batch
#: carries about θ.  Raising the surrogate to a fractional power (a
#: power-posterior / tempered-likelihood correction for a misspecified
#: likelihood) slows the ESS decay to match the surrogate's real
#: information content: degradation still accumulates monotonically, so
#: drift always triggers rejuvenation eventually, but stable stretches
#: stop paying for Gibbs moves the population does not need.
_SURROGATE_POWER = 0.4


def systematic_resample(weights, random_state=None) -> np.ndarray:
    """Systematic (low-variance) resampling: ancestor indices for *weights*.

    One uniform offset ``u ~ U[0, 1)`` places ``n`` equally spaced
    pointers ``(u + i) / n`` on the cumulative weight profile, so every
    particle's offspring count is ``floor(n·w_i)`` or ``ceil(n·w_i)`` —
    the minimum-variance unbiased counts — at the cost of a single draw.

    Weights need not be normalized (they are normalized internally) but
    must be finite, nonnegative, and not all zero; a fully degenerate
    population is an error, not a silent reset, because it means every
    particle's surrogate likelihood underflowed and the caller's state is
    no longer a posterior approximation at all.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise InferenceError(
            f"weights must be a nonempty 1-d array, got shape {weights.shape}"
        )
    if np.any(~np.isfinite(weights)) or np.any(weights < 0.0):
        raise InferenceError("weights must be finite and nonnegative")
    total = float(weights.sum())
    if total <= 0.0:
        raise InferenceError(
            "cannot resample an all-zero weight vector — every particle "
            "has degenerate weight"
        )
    n = weights.size
    rng = as_generator(random_state)
    positions = (rng.random() + np.arange(n)) / n
    cumulative = np.cumsum(weights / total)
    cumulative[-1] = 1.0  # guard the top edge against rounding
    return np.searchsorted(cumulative, positions, side="left").astype(np.int64)


def effective_sample_size(log_weights) -> float:
    """``1 / Σ w²`` of the normalized weights — the resampling trigger."""
    w = _normalize_log_weights(np.asarray(log_weights, dtype=float))
    return float(1.0 / np.sum(w * w))


def _normalize_log_weights(log_weights: np.ndarray) -> np.ndarray:
    shift = float(np.max(log_weights))
    if not np.isfinite(shift):
        raise InferenceError(
            "particle log-weights are degenerate (no finite weight left)"
        )
    w = np.exp(log_weights - shift)
    return w / w.sum()


class SMCEstimator(StreamingEstimator):
    """Particle-filter streaming estimator behind the StEM surface.

    Construction mirrors :class:`~repro.online.streaming.StreamingEstimator`
    (same kwargs, same ``config=`` spelling, same seed discipline); the
    SMC-specific knobs are ``n_particles``, ``ess_threshold``, and
    ``rejuvenation_sweeps`` on :class:`~repro.online.config.EstimatorConfig`.
    Rejuvenation runs in-process on the shared sweep kernel, so the
    sharded-sweep knobs are rejected rather than silently ignored.
    """

    estimator_name = "smc"

    def __init__(self, stream, *args, **kwargs) -> None:
        super().__init__(stream, *args, **kwargs)
        if self.shards != 1 or self.shard_workers:
            raise InferenceError(
                "the SMC estimator rejuvenates every particle in-process "
                "on one shared kernel; sharded sweeps are not supported — "
                "drop shards/shard_workers or use the stem estimator"
            )
        # Particle state.  θ lives in a (n_particles, n_queues) array —
        # None until the first estimable window sizes it from the trace.
        self._thetas: np.ndarray | None = None
        self._log_weights = np.zeros(self.n_particles)
        #: ESS-triggered resample+rejuvenation passes (observability).
        self.n_rejuvenations = 0

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["smc"] = {
            "thetas": None if self._thetas is None else self._thetas.tolist(),
            "log_weights": self._log_weights.tolist(),
            "n_rejuvenations": int(self.n_rejuvenations),
        }
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        smc = state.get("smc", {})
        thetas = smc.get("thetas")
        self._thetas = None if thetas is None else np.asarray(thetas, dtype=float)
        log_weights = smc.get("log_weights")
        self._log_weights = (
            np.zeros(self.n_particles)
            if log_weights is None
            else np.asarray(log_weights, dtype=float)
        )
        self.n_rejuvenations = int(smc.get("n_rejuvenations", 0))

    # ------------------------------------------------------------------
    # Window processing.
    # ------------------------------------------------------------------

    def _process_window(self, t0: float) -> StreamEstimate:
        t0, t1, arrived, aged, tasks, n_observed, window_seed = (
            self._begin_window(t0)
        )
        if len(tasks) < 2 or n_observed < self.min_observed_tasks:
            return StreamEstimate(
                t0, t1, len(tasks), n_observed, None,
                n_new_tasks=len(arrived), n_aged_out=len(aged),
            )
        # The poll advanced the revealed prefix by one step (by a full
        # window for the very first window) — the exposure interval of
        # the batch's Poisson arrival-count likelihood.
        interval = self.window if self.n_windows_done == 1 else self.step
        rates = None
        failure = None
        try:
            rates = self._advance(tasks, arrived, interval, window_seed)
        except InferenceError as exc:
            failure = str(exc)  # a failed window is data, not a crash
        return StreamEstimate(
            t0, t1, len(tasks), n_observed, rates, failure,
            n_new_tasks=len(arrived), n_aged_out=len(aged),
        )

    def _advance(
        self,
        tasks: np.ndarray,
        arrived: list[tuple[int, float]],
        interval: float,
        window_seed: np.random.SeedSequence,
    ) -> np.ndarray:
        """One SMC step: reweight on the batch, maybe move, publish."""
        # The window's streams: a pristine clone of the window's seed
        # child (the retry-safe discipline _attempt_seed documents), split
        # deterministically — children are spawned whether or not the
        # trigger fires, so the draw tree is a pure function of the
        # window index.
        resample_seed, burnin_seed, move_seed = (
            self._attempt_seed(window_seed).spawn(3)
        )
        # 1. Reweight on the newly revealed records (O(arrivals)).
        with telemetry.phase("reweight"):
            counts, totals = self._batch_statistics(arrived, interval)
            if self._thetas is not None and totals.sum() > 0.0:
                theta = self._thetas
                self._log_weights = self._log_weights + _SURROGATE_POWER * (
                    np.log(theta) @ counts - theta @ totals
                )
                # Keep the stored log-weights bounded over long streams.
                self._log_weights = self._log_weights - np.max(self._log_weights)
        # 2. Resample + rejuvenate when the population degraded (or was
        # never initialized).
        weights = _normalize_log_weights(self._log_weights)
        ess = 1.0 / float(np.sum(weights * weights))
        if telemetry.enabled():
            telemetry.gauge("repro_smc_ess").set(ess)
        if self._thetas is None or ess < self.ess_threshold * self.n_particles:
            # Only a triggering window materializes its task subset —
            # between triggers a window's cost stays O(new arrivals),
            # never O(window).
            with telemetry.phase("subset"):
                window_trace = self.stream.subset(tasks)
            self._rejuvenate(
                window_trace, weights, resample_seed, burnin_seed, move_seed
            )
            weights = _normalize_log_weights(self._log_weights)
        # 3. Publish the weighted particle mean.
        return np.clip(weights @ self._thetas, _MIN_RATE, _MAX_RATE)

    def _batch_statistics(
        self, arrived, interval: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Observed-only per-queue ``(count, total)`` of a poll batch.

        Queue 0 (the interarrival process): the batch's Poisson count
        likelihood — ``len(arrived)`` entries over the poll's exposure
        *interval* (``k·log λ − λ·Δ``).  Crucially this carries signal
        even when the batch is *empty*: a quiet step is evidence against
        high-λ particles, so a draining stream degrades the ESS and
        triggers re-anchoring on the current window instead of freezing
        the population on stale rates.  Service queues: within-task
        response gaps between consecutive *observed* arrivals (the gap a
        task spent at the earlier event's queue) plus the final observed
        departure gap.  Everything here is read off revealed records —
        no latent state — which is what keeps the fast path O(arrivals).
        """
        trace = self.stream.trace
        skeleton = trace.skeleton
        counts = np.zeros(skeleton.n_queues)
        totals = np.zeros(skeleton.n_queues)
        counts[0] += len(arrived)
        totals[0] += float(interval)
        for task_id, _ in arrived:
            events = skeleton.events_of_task(int(task_id))
            observed = trace.arrival_observed[events]
            arrival = skeleton.arrival[events]
            queue = skeleton.queue[events]
            seq = skeleton.seq[events]
            for i in range(events.size - 1):
                if seq[i] < 1 or not (observed[i] and observed[i + 1]):
                    continue
                gap = float(arrival[i + 1] - arrival[i])
                if np.isfinite(gap) and gap >= 0.0:
                    counts[queue[i]] += 1
                    totals[queue[i]] += gap
            last = int(events[-1])
            if seq[-1] >= 1 and observed[-1] and trace.departure_observed[last]:
                gap = float(skeleton.departure[last] - arrival[-1])
                if np.isfinite(gap) and gap >= 0.0:
                    counts[queue[-1]] += 1
                    totals[queue[-1]] += gap
        return counts, totals

    def _rejuvenate(
        self,
        window_trace: ObservedTrace,
        weights: np.ndarray,
        resample_seed: np.random.SeedSequence,
        burnin_seed: np.random.SeedSequence,
        move_seed: np.random.SeedSequence,
    ) -> None:
        """Systematic resample, then exact MCMC moves through the window.

        The expensive substrate — heuristic initialization, a shared
        latent-state burn-in, and the sampler with its blanket caches and
        batch kernel — is built *once* and shared by the whole
        population.  The burn-in is a short StEM loop
        (``stem_iterations // 2`` coupled sweep/M-step rounds, the same
        count StEM itself discards as burn-in) that carries the heuristic
        initialization into the posterior's bulk; without it a handful of
        per-particle sweeps would still reflect the initializer.  Per
        particle only the random stream, the time columns, and the rates
        are swapped (:meth:`~repro.inference.gibbs.GibbsSampler.reseed` /
        :meth:`~repro.inference.gibbs.GibbsSampler.load_times`): each
        particle sweeps the latent times at its own θ and then redraws θ
        from the conjugate Gamma conditional of its swept state, which
        leaves the window posterior invariant.
        """
        n_queues = window_trace.skeleton.n_queues
        needs_init = self._thetas is None
        if needs_init:
            base_rates = np.clip(
                initial_rates_from_observed(window_trace), _MIN_RATE, _MAX_RATE
            )
            thetas = np.tile(base_rates, (self.n_particles, 1))
        else:
            if self._thetas.shape[1] != n_queues:
                raise InferenceError(
                    f"stream changed queue count: particles track "
                    f"{self._thetas.shape[1]} queues, window has {n_queues}"
                )
            indices = systematic_resample(weights, as_generator(resample_seed))
            thetas = self._thetas[indices]
            base_rates = np.clip(weights @ self._thetas, _MIN_RATE, _MAX_RATE)
        state = initialize_state(window_trace, base_rates, method="heuristic")
        event_counts = window_trace.skeleton.events_per_queue().astype(float)
        sampler = GibbsSampler(
            window_trace,
            state,
            base_rates,
            random_state=burnin_seed,
            kernel=self.kernel,
            threads=self.threads,
        )
        try:
            with telemetry.phase("burn-in"):
                for _ in range(max(1, self.stem_iterations // 2)):
                    sampler.sweep()
                    base_rates = mle_rates_from_stats(
                        event_counts, [sampler.service_totals()],
                        min_rate=_MIN_RATE, max_rate=_MAX_RATE,
                    )
                    sampler.set_rates(base_rates)
            init_arrival = state.arrival.copy()
            init_departure = state.departure.copy()
            if needs_init:
                # Particles anchor on the burned-in rates; the first
                # Gamma refresh below scatters them into the posterior.
                thetas = np.tile(base_rates, (self.n_particles, 1))
            with telemetry.phase("sweeps"):
                for p, child in enumerate(move_seed.spawn(self.n_particles)):
                    rng = as_generator(child)
                    sampler.reseed(rng)
                    sampler.load_times(init_arrival, init_departure)
                    # Rates are loaded before each sweep, not after each
                    # refresh: the last refreshed θ is stored without a final
                    # set_rates, whose rebuilt rate caches no draw would read.
                    theta = thetas[p]
                    for _ in range(self.rejuvenation_sweeps):
                        sampler.set_rates(theta)
                        sampler.sweep()
                        theta = self._gamma_refresh(
                            event_counts, sampler.service_totals(), rng
                        )
                    thetas[p] = theta
        finally:
            sampler.close()
        self._thetas = thetas
        self._log_weights = np.zeros(self.n_particles)
        self.n_rejuvenations += 1
        if telemetry.enabled():
            telemetry.counter("repro_smc_rejuvenations_total").inc()

    @staticmethod
    def _gamma_refresh(
        counts: np.ndarray, totals: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw rates from the conjugate conditional given complete times.

        With exponential services, ``θ_q | times ~ Gamma(c_q + 1,
        s_q)`` under a unit-shape reference prior — the stochastic
        counterpart of the M-step's ``c_q / s_q`` point estimate, with
        the same clamps for empty or degenerate queues.
        """
        draw = rng.gamma(counts + 1.0) / np.maximum(totals, 1e-300)
        draw[counts == 0.0] = _MIN_RATE
        return np.clip(draw, _MIN_RATE, _MAX_RATE)
