"""Change-point detection on windowed rate series.

The paper's introduction motivates performance models with "anomaly
detection, and diagnosis of performance bugs".  Given the per-window
service-time series from :class:`~repro.online.windowed.WindowedEstimator`,
this module flags windows where a queue's estimated mean service time
departs from its recent history — a robust z-score against the rolling
median/MAD, so a single faulty window or a genuine regime change is
flagged without being masked by earlier noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.online.windowed import WindowEstimate

#: MAD -> standard-deviation scale factor for normal data.
_MAD_SCALE = 1.4826


@dataclass(frozen=True)
class AnomalyReport:
    """One flagged (queue, window) cell.

    Attributes
    ----------
    queue:
        Queue index whose service estimate jumped.
    window_index:
        Index into the window list.
    t_start / t_end:
        The flagged window's interval.
    value:
        The window's estimated mean service time.
    baseline:
        Rolling median of the preceding windows.
    z_score:
        Robust z-score ``(value - baseline) / (MAD * 1.4826)``.
    """

    queue: int
    window_index: int
    t_start: float
    t_end: float
    value: float
    baseline: float
    z_score: float


def detect_anomalies(
    windows: list[WindowEstimate],
    queues: list[int] | None = None,
    threshold: float = 4.0,
    min_history: int = 3,
    min_scale_frac: float = 0.1,
) -> list[AnomalyReport]:
    """Flag service-time change points in a window series.

    Parameters
    ----------
    windows:
        Output of :meth:`WindowedEstimator.run` (time ordered).
    queues:
        Queue indices to monitor; defaults to every real queue.
    threshold:
        Robust z-score above which a window is flagged.
    min_history:
        Minimum number of earlier successful windows required before a
        window can be judged (no flags during warm-up).
    min_scale_frac:
        Noise floor for the z-score scale, as a fraction of the rolling
        baseline.  The MAD of the 3-5 window estimates a short history
        holds badly underestimates the per-window StEM noise (three nearly
        equal estimates give a near-zero MAD), which turns ordinary
        estimator jitter into huge z-scores; per-window estimates on tens
        of tasks carry ~10%+ relative noise, so scales below
        ``min_scale_frac * baseline`` are clamped up to it.

    Returns
    -------
    list[AnomalyReport]
        Flagged cells, ordered by window then queue.
    """
    if threshold <= 0.0:
        raise InferenceError(f"threshold must be positive, got {threshold}")
    if min_scale_frac < 0.0:
        raise InferenceError(
            f"min_scale_frac must be nonnegative, got {min_scale_frac}"
        )
    usable = [w for w in windows if w.ok]
    if not usable:
        return []
    n_queues = usable[0].rates.size
    if queues is None:
        queues = list(range(1, n_queues))
    reports: list[AnomalyReport] = []
    for q in queues:
        history: list[float] = []
        for i, w in enumerate(windows):
            if not w.ok:
                continue
            value = w.mean_service(q)
            if len(history) >= min_history:
                baseline = float(np.median(history))
                mad = float(np.median(np.abs(np.asarray(history) - baseline)))
                scale = max(
                    mad * _MAD_SCALE,
                    min_scale_frac * abs(baseline),
                    1e-3 * max(abs(baseline), 1e-12),
                )
                z = (value - baseline) / scale
                if abs(z) >= threshold:
                    reports.append(
                        AnomalyReport(
                            queue=q,
                            window_index=i,
                            t_start=w.t_start,
                            t_end=w.t_end,
                            value=value,
                            baseline=baseline,
                            z_score=float(z),
                        )
                    )
            history.append(value)
    reports.sort(key=lambda r: (r.window_index, r.queue))
    return reports
