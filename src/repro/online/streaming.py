"""Streaming sharded estimation over an incrementally revealed trace.

The windowed estimator answers "what were the rates five minutes ago?"
by rebuilding *everything* per window — sub-trace, shard plan, worker
processes, blanket caches, kernels — even though consecutive windows
share almost all of their tasks.  This module is the online form the
paper points at: a :class:`TraceStream` reveals tasks as they enter the
system, a :class:`StreamingEstimator` slides a window over the revealed
prefix, and the expensive state is kept **warm across windows**:

* worker processes and their transport connections live in a
  :class:`~repro.inference.shard.WarmShardWorkerPool` for the whole
  stream — spawned once, never per window;
* the task partition is updated *incrementally*
  (:func:`~repro.inference.shard.refresh_partition`): surviving tasks
  keep their shard, arrivals join the shard pulling hardest on them,
  age-outs are dropped — so shards away from the window edges keep
  identical task sets and their workers keep their built blanket caches
  and conflict-free kernel batches, adopting only fresh time arrays;
* per-window bookkeeping (entry-time estimates, observed-task checks,
  sub-trace restriction via :class:`~repro.events.subset.SubsetIndex`)
  is O(window), independent of how much trace has already streamed past.

Equivalence contract (pinned by ``tests/test_streaming.py``): a frozen
window processed by the streaming path is **bitwise identical** to
:class:`~repro.online.windowed.WindowedEstimator` on the same sub-trace
at the same seed, for any worker count and any transport; with
``repartition="cold"`` this holds for *every* window of the stream.
Under incremental re-partitioning later windows use a different (equally
exact) scan order, so their estimates agree statistically rather than
bitwise — sharding never changes the posterior, only the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.errors import InferenceError
from repro.events.subset import SubsetIndex, subset_trace
from repro.inference import run_stem
from repro.inference.shard import (
    WarmShardWorkerPool,
    partition_tasks,
    refresh_partition,
)
from repro.inference.transport import WorkerTransport
from repro.observation import ObservedTrace

# Re-exported for backward compatibility (REPARTITION_MODES lived here
# before the config extraction).
from repro.online.config import REPARTITION_MODES, EstimatorConfig
from repro.online.windowed import (
    WindowEstimate,
    _entry_time_estimates,
    task_fully_observed,
)
from repro.rng import RandomState, as_generator, as_seed_sequence


class TraceStream:
    """An incrementally revealed censored trace.

    Subclasses reveal tasks in (estimated) system-entry order; the
    estimator only ever touches tasks the stream has revealed, which is
    what makes the adapter honest about what an online deployment could
    know.  :class:`ReplayTraceStream` replays a recorded trace for tests
    and benchmarks; :class:`~repro.live.stream.LiveTraceStream`
    accumulates measurements from a running system as they are reported.
    The contract both must satisfy — poll monotonicity, horizon
    semantics, subset stability — is pinned by
    ``tests/test_trace_stream_contract.py``.
    """

    @property
    def trace(self) -> ObservedTrace:
        """Backing store of everything revealed so far."""
        raise NotImplementedError

    @property
    def horizon(self) -> float:
        """Largest (estimated) entry time currently known to the stream.

        Fixed for a replay source; a live adapter may keep advancing it
        as tasks enter — the estimator re-reads it before every window,
        so the window grid simply grows with the stream.
        """
        raise NotImplementedError

    def poll(self, until: float) -> list[tuple[int, float]]:
        """Reveal ``(task id, entry time)`` pairs with entry < *until*."""
        raise NotImplementedError

    def subset(self, task_ids) -> ObservedTrace:
        """Sub-trace over already revealed tasks."""
        raise NotImplementedError

    def exhausted(self) -> bool:
        """Whether every task has been revealed."""
        raise NotImplementedError


class ReplayTraceStream(TraceStream):
    """Replays a recorded censored trace in estimated entry order.

    The replay source for tests and benchmarks — and the reference
    semantics for live adapters: entry times come from the same
    interpolation the windowed estimator uses, tasks are revealed in
    entry order, and sub-traces are restricted through a
    :class:`~repro.events.subset.SubsetIndex` so each window costs
    O(window) regardless of the full trace length.
    """

    def __init__(self, trace: ObservedTrace) -> None:
        self._trace = trace
        self._entries = _entry_time_estimates(trace)
        # Entry estimates are non-decreasing along the queue-0 order (the
        # anchors are the frozen entry order's own times), so revelation
        # is a cursor over this list.
        self._pending = list(self._entries.items())
        self._cursor = 0
        self._index = SubsetIndex(trace.skeleton)

    @property
    def trace(self) -> ObservedTrace:
        return self._trace

    @property
    def horizon(self) -> float:
        return max(self._entries.values())

    @property
    def n_revealed(self) -> int:
        """Tasks revealed so far."""
        return self._cursor

    def poll(self, until: float) -> list[tuple[int, float]]:
        out: list[tuple[int, float]] = []
        while (
            self._cursor < len(self._pending)
            and self._pending[self._cursor][1] < until
        ):
            out.append(self._pending[self._cursor])
            self._cursor += 1
        return out

    def subset(self, task_ids) -> ObservedTrace:
        return subset_trace(self._trace, task_ids, index=self._index)

    def exhausted(self) -> bool:
        return self._cursor >= len(self._pending)


@dataclass
class StreamEstimate(WindowEstimate):
    """A :class:`~repro.online.windowed.WindowEstimate` plus stream facts.

    Attributes
    ----------
    n_new_tasks / n_aged_out:
        Tasks the stream revealed for this window / tasks that slid out
        of reach before it.
    n_shards:
        Effective shard count of the window's sweeps (clamped to the
        window's task count).
    n_warm_shards / n_migrated_shards:
        Under a warm worker pool: shards whose resident structure was
        unchanged (workers kept their kernels, adopting only fresh times
        and streams) versus shards shipped as full rebuilds.
    """

    n_new_tasks: int = 0
    n_aged_out: int = 0
    n_shards: int = 1
    n_warm_shards: int = 0
    n_migrated_shards: int = 0


class StreamingEstimator:
    """Sliding-window StEM over a :class:`TraceStream` with warm workers.

    Parameters
    ----------
    stream:
        The revealed trace (a :class:`ReplayTraceStream` for recorded
        data).
    window / step / stem_iterations / min_observed_tasks / random_state:
        As in :class:`~repro.online.windowed.WindowedEstimator` — and
        seeded identically: window *i* consumes the *i*-th spawn of the
        seed material, so a frozen window matches the windowed path
        bitwise.
    shards:
        Sharded sweeps per window (clamped to each window's task count).
    shard_workers:
        With ``shards > 1``: host the shard sweeps on this many worker
        processes.  Warm by default (one
        :class:`~repro.inference.shard.WarmShardWorkerPool` for the whole
        stream); ``warm_workers=False`` spawns and tears down a dedicated
        pool per window instead — the cold-rebuild baseline the streaming
        design exists to beat (``benchmarks/bench_streaming.py`` asserts
        it does).  Results are bitwise identical either way.
    transport:
        Worker transport for the pool (see
        :mod:`repro.inference.transport`); pipes by default, sockets for
        cross-machine workers.  The estimator takes ownership: its
        :meth:`close` (and therefore :meth:`run`) also closes the
        transport, releasing e.g. a
        :class:`~repro.inference.transport.SocketTransport` listener.
    repartition:
        ``"incremental"`` (default) carries the task partition across
        windows via
        :func:`~repro.inference.shard.refresh_partition`, maximizing
        warm-shard reuse; ``"cold"`` re-partitions every window from
        scratch, which keeps every window bitwise equal to the windowed
        estimator (the equivalence-test mode).
    kernel:
        Sweep kernel for every window's E-step chains (see
        :class:`~repro.inference.gibbs.GibbsSampler`): ``"array"``
        (default), its JIT-compiled lowering ``"native"``, or
        ``"object"``.
    threads:
        Thread count for the batch kernels' chunked evaluation; draws
        are bitwise invariant to it.
    worker_retries:
        How many times a window whose worker pool died under it (a
        killed or crashed worker process) is re-run on a relaunched pool
        before its failure is recorded as data.  Operational policy, not
        statistical state: a retried window re-derives its draws from
        the same per-window seed child, so the estimate is bitwise what
        an uninterrupted run would have published.
    config:
        The one-argument spelling: a prebuilt
        :class:`~repro.online.config.EstimatorConfig` instead of the
        individual knobs above.  Mutually exclusive with ``window``;
        ``stream``/``random_state``/``transport`` stay separate because
        they are runtime substrate, not configuration.
    """

    #: Registry name carried in checkpoints (see ``repro.online.ESTIMATORS``).
    estimator_name = "stem"

    def __init__(
        self,
        stream: TraceStream,
        window: float | None = None,
        step: float | None = None,
        stem_iterations: int = 40,
        min_observed_tasks: int = 3,
        random_state: RandomState = None,
        shards: int = 1,
        shard_workers: int | None = None,
        transport: WorkerTransport | None = None,
        repartition: str = "incremental",
        warm_workers: bool = True,
        kernel: str = "array",
        threads: int = 1,
        worker_retries: int = 1,
        n_particles: int = 16,
        ess_threshold: float = 0.5,
        rejuvenation_sweeps: int = 1,
        config: EstimatorConfig | None = None,
    ) -> None:
        if config is not None:
            if window is not None:
                raise InferenceError(
                    "pass either config= or the individual knobs, not both"
                )
        elif window is None:
            raise InferenceError("either window= or config= is required")
        else:
            # The legacy kwarg spelling is a shim over the dataclass:
            # same knobs, same validation, same error messages.
            config = EstimatorConfig(
                window=window,
                step=step,
                stem_iterations=stem_iterations,
                min_observed_tasks=min_observed_tasks,
                shards=shards,
                shard_workers=shard_workers,
                repartition=repartition,
                warm_workers=warm_workers,
                kernel=kernel,
                threads=threads,
                worker_retries=worker_retries,
                n_particles=n_particles,
                ess_threshold=ess_threshold,
                rejuvenation_sweeps=rejuvenation_sweeps,
            )
        #: The estimator's validated configuration (single source of truth;
        #: the knob attributes below are read-only views into it).
        self.config = config
        self.stream = stream
        self.transport = transport
        # One child per window, spawned lazily from the same sequence the
        # windowed estimator spawns up front — identical streams without
        # knowing the window count in advance.
        self._seed_seq = as_seed_sequence(random_state)
        self._entries: dict[int, float] = {}
        self._observed: dict[int, bool] = {}
        self._assignment: dict[int, int] = {}
        self._prev_n_shards = 0
        self._pool: WarmShardWorkerPool | None = None
        self.n_windows_done = 0
        #: Pools relaunched after dying mid-window (fault observability).
        self.n_worker_relaunches = 0

    # ------------------------------------------------------------------
    # Config views.
    # ------------------------------------------------------------------

    @property
    def worker_retries(self) -> int:
        """Relaunch budget per window (see :class:`EstimatorConfig`)."""
        return self.config.worker_retries

    @worker_retries.setter
    def worker_retries(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise InferenceError(f"worker_retries must be >= 0, got {value}")
        self.config.worker_retries = value

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """Whether a warm worker pool is currently alive."""
        return self._pool is not None and not self._pool.closed

    def _ensure_pool(self) -> WarmShardWorkerPool | None:
        if self.shards <= 1 or not self.shard_workers or not self.warm_workers:
            return None
        if self._pool is None or self._pool.closed:
            # Clamp like the dedicated pools do: a worker beyond the shard
            # count could never host a shard, only idle for the stream.
            self._pool = WarmShardWorkerPool(
                min(self.shard_workers, self.shards), transport=self.transport
            )
        return self._pool

    def pool_stats(self) -> dict | None:
        """Liveness probe of the warm shard pool (``None`` when unpooled).

        What a supervising service folds into its health record: worker
        pids and alive counts from the pool plus this estimator's
        relaunch tally, so a killed shard worker is visible to a
        monitoring consumer before *and* after the recovery path runs.
        """
        if self._pool is None:
            if not (self.shards > 1 and self.shard_workers and self.warm_workers):
                return None
            return {"closed": True, "n_workers": 0, "n_alive": 0,
                    "pids": [], "n_hosted_shards": 0,
                    "n_relaunches": self.n_worker_relaunches}
        stats = self._pool.probe()
        stats["n_relaunches"] = self.n_worker_relaunches
        return stats

    def close(self) -> None:
        """Shut the worker pool and the owned transport down; idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self.transport is not None:
            self.transport.close()

    def __enter__(self) -> "StreamingEstimator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Checkpointing (the live service's crash-recovery hook).
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything needed to resume window processing bitwise.

        Captures the estimator's configuration, its per-window bookkeeping
        (entry estimates, observed-task cache, carried partition), and —
        the part that makes resumption exact — the seed material plus the
        number of per-window children already spawned from it: window *i*
        always consumes the *i*-th spawn, so a restored estimator's next
        window draws the same stream the uninterrupted run would have.
        Worker pools and transports are runtime substrate, never state;
        they are rebuilt on demand and cannot change a draw.
        """
        return {
            "version": 2,
            "estimator": self.estimator_name,
            "config": self.config.as_dict(),
            "seed": {
                "entropy": self._seed_seq.entropy,
                "spawn_key": tuple(self._seed_seq.spawn_key),
                "n_children_spawned": self._seed_seq.n_children_spawned,
            },
            "entries": dict(self._entries),
            "observed": dict(self._observed),
            "assignment": dict(self._assignment),
            "prev_n_shards": self._prev_n_shards,
            "n_windows_done": self.n_windows_done,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this estimator.

        The estimator must have been constructed with the same
        configuration the state was captured under (checked), and its
        stream must be positioned where the snapshot left it (the live
        stream's own snapshot carries that).
        """
        captured_by = state.get("estimator", "stem")
        if captured_by != self.estimator_name:
            raise InferenceError(
                f"checkpoint was captured by the {captured_by!r} estimator, "
                f"but this is the {self.estimator_name!r} estimator — "
                "construct the matching estimator from the checkpoint"
            )
        # Older checkpoints predate some config fields (v1 lacked
        # kernel/threads; pre-SMC v2 lacked the particle knobs); they were
        # captured under the implicit defaults, so restore them as such.
        config = EstimatorConfig.from_state(state["config"]).as_dict()
        mine = self.config.as_dict()
        if config != mine:
            raise InferenceError(
                f"checkpoint was captured under config {config}, but this "
                f"estimator was built with {mine}; estimates would not be "
                "reproducible — construct the estimator from the checkpoint"
            )
        seed = state["seed"]
        self._seed_seq = np.random.SeedSequence(
            entropy=seed["entropy"],
            spawn_key=tuple(seed["spawn_key"]),
            n_children_spawned=seed["n_children_spawned"],
        )
        self._entries = {int(k): float(v) for k, v in state["entries"].items()}
        self._observed = {int(k): bool(v) for k, v in state["observed"].items()}
        self._assignment = {int(k): int(v) for k, v in state["assignment"].items()}
        self._prev_n_shards = int(state["prev_n_shards"])
        self.n_windows_done = int(state["n_windows_done"])

    # ------------------------------------------------------------------
    # Window processing.
    # ------------------------------------------------------------------

    def _next_window_seed(self) -> np.random.SeedSequence:
        # One incremental spawn from the preserved SeedSequence — the same
        # child the windowed estimator's up-front spawn(n) hands window i.
        # The *child sequence* (not a generator) is what a window keeps:
        # a retry after a worker crash rebuilds a fresh generator from it,
        # so the re-run draws exactly the stream the first attempt did.
        return self._seed_seq.spawn(1)[0]

    @staticmethod
    def _attempt_seed(window_seed: np.random.SeedSequence) -> np.random.SeedSequence:
        # A pristine clone of the window's seed child for one run_stem
        # attempt.  The sharded path derives shard streams by *spawning*
        # from the generator's underlying sequence, which advances the
        # sequence's child counter in place — so handing every attempt the
        # same SeedSequence object would give a retried window different
        # shard streams than its first attempt consumed.  Cloning resets
        # the counter: each attempt spawns the exact children the
        # uninterrupted run would have.
        return np.random.SeedSequence(
            entropy=window_seed.entropy,
            spawn_key=window_seed.spawn_key,
            pool_size=window_seed.pool_size,
        )

    def _task_observed(self, task_id: int) -> bool:
        # Only a True verdict is cacheable: a live stream's measurements
        # may still be landing when a task is first revealed, so "not yet
        # fully observed" can flip to True between overlapping windows —
        # observed events are never un-observed, so True is final.
        if self._observed.get(task_id):
            return True
        hit = task_fully_observed(self.stream.trace, task_id)
        if hit:
            self._observed[task_id] = True
        return hit

    def _window_partition(self, skeleton, n_tasks: int):
        """The window's task partition, carried across windows when warm."""
        if self.shards <= 1 or self.repartition == "cold":
            self._assignment = {}
            return None  # the engine partitions from scratch
        n_shards = min(self.shards, n_tasks)
        if self._assignment and self._prev_n_shards == n_shards:
            part = refresh_partition(skeleton, self._assignment, n_shards)
        else:
            part = partition_tasks(skeleton, n_shards)
        self._assignment = dict(part.assignment)
        self._prev_n_shards = part.n_shards
        return part

    def process_window(self, t0: float) -> StreamEstimate:
        """Advance the stream past ``t0 + window`` and estimate the window.

        After the window is estimated, the stream is asked to compact the
        prefix no future window can reach (streams without a compaction
        notion — a replay source — skip this).
        """
        estimate = self._process_window(t0)
        self._compact_stream()
        if telemetry.enabled():
            if estimate.rates is not None:
                telemetry.counter("repro_windows_processed_total").inc()
            elif estimate.failure is not None:
                telemetry.counter("repro_windows_failed_total").inc()
            else:
                telemetry.counter("repro_windows_skipped_total").inc()
        return estimate

    def _compact_stream(self) -> None:
        # Every remaining window starts at ``n_windows_done * step`` or
        # later, so tasks with entries strictly below that bound are out
        # of reach for all future subsets; the stream additionally holds
        # its own retention horizon against the watermark, so this bound
        # only ever tightens what the stream would allow.
        compact = getattr(self.stream, "compact", None)
        if compact is not None:
            compact(before=self.n_windows_done * self.step)

    def _begin_window(self, t0: float):
        """Shared per-window bookkeeping: poll, age out, seed, count.

        Every estimator flavor advances a window identically — reveal
        tasks up to the window's end, age out tasks that slid below its
        start, spawn the window's seed child (windows that end up skipped
        consume their child too, so the spawn index stays aligned with
        the window index) — and diverges only in how it estimates.
        Returns ``(t0, t1, arrived, aged, tasks, n_observed,
        window_seed)``.
        """
        t0 = float(t0)
        t1 = t0 + self.window
        with telemetry.phase("poll"):
            arrived = self.stream.poll(t1)
        for task, entry in arrived:
            self._entries[task] = entry
        aged = [k for k, t in self._entries.items() if t < t0]
        for k in aged:
            # The partition map needs no pruning here: refresh_partition
            # filters to the window's tasks itself.
            del self._entries[k]
            self._observed.pop(k, None)
        tasks = [k for k, t in self._entries.items() if t0 <= t < t1]
        n_observed = sum(self._task_observed(k) for k in tasks)
        window_seed = self._next_window_seed()  # one child per window
        self.n_windows_done += 1
        return t0, t1, arrived, aged, tasks, n_observed, window_seed

    def _process_window(self, t0: float) -> StreamEstimate:
        t0, t1, arrived, aged, tasks, n_observed, window_seed = (
            self._begin_window(t0)
        )
        if len(tasks) < 2 or n_observed < self.min_observed_tasks:
            return StreamEstimate(
                t0, t1, len(tasks), n_observed, None,
                n_new_tasks=len(arrived), n_aged_out=len(aged),
            )
        with telemetry.phase("subset"):
            window_trace = self.stream.subset(tasks)
        with telemetry.phase("partition"):
            partition = self._window_partition(window_trace.skeleton, len(tasks))
        n_shards = (
            partition.n_shards if partition is not None
            else min(self.shards, len(tasks))
        )
        cold_workers = (
            self.shard_workers
            if (self.shard_workers and self.shards > 1 and not self.warm_workers)
            else None
        )
        rates = None
        failure = None
        relaunches_left = self.worker_retries
        while True:
            pool = self._ensure_pool()
            if pool is not None:
                pool.last_adoption = {}
            try:
                stem = run_stem(
                    window_trace,
                    n_iterations=self.stem_iterations,
                    init_method="heuristic",
                    # A fresh generator over a pristine clone of the
                    # window's seed child per attempt: every draw (and
                    # every shard-stream spawn) is a pure function of the
                    # seed child and the window inputs, so a retried
                    # window is bitwise the uninterrupted window.
                    random_state=as_generator(self._attempt_seed(window_seed)),
                    kernel=self.kernel,
                    shards=self.shards,
                    shard_partition=partition,
                    shard_pool=pool,
                    persistent_workers=cold_workers,
                    shard_transport=self.transport if cold_workers else None,
                    threads=self.threads,
                )
                rates = stem.rates
            except InferenceError as exc:
                if pool is not None and pool.closed and relaunches_left > 0:
                    # The warm pool died under the window (a kill -9'd or
                    # crashed worker shuts the whole pool down).  Relaunch
                    # it — _ensure_pool sees the closed pool and spawns a
                    # fresh one, whose empty adoption diff re-ships every
                    # resident — and re-run this window from its own seed.
                    relaunches_left -= 1
                    self.n_worker_relaunches += 1
                    if telemetry.enabled():
                        telemetry.counter("repro_worker_relaunches_total").inc()
                    continue
                failure = str(exc)  # a failed window is data, not a crash
            break
        adoption = pool.last_adoption if pool is not None else {}
        return StreamEstimate(
            t0, t1, len(tasks), n_observed, rates, failure,
            n_new_tasks=len(arrived),
            n_aged_out=len(aged),
            n_shards=n_shards,
            n_warm_shards=sum(1 for k in adoption.values() if k == "times"),
            n_migrated_shards=sum(
                1 for k in adoption.values() if k == "resident"
            ),
        )

    def estimates(self):
        """Process every window of the stream, yielding as they complete.

        The window grid is the windowed estimator's ``np.arange(0,
        horizon, step)`` — reproduced lazily (``arange`` materializes
        ``ceil(horizon / step)`` points at ``i * step``), with the
        stream's horizon re-read before every window.  A replay source's
        horizon is fixed, so this enumerates exactly the windowed grid; a
        live adapter's horizon may keep advancing, and the generator
        simply keeps producing windows until it stops.
        """
        i = 0
        while True:
            horizon = self.stream.horizon
            n_known = int(np.ceil(horizon / self.step)) if horizon > 0.0 else 0
            if i >= n_known:
                return
            yield self.process_window(float(i * self.step))
            i += 1

    def run(self) -> list[StreamEstimate]:
        """Consume the whole stream; closes the worker pool afterwards."""
        try:
            return list(self.estimates())
        finally:
            self.close()


def _config_view(name: str) -> property:
    return property(
        lambda self, _name=name: getattr(self.config, _name),
        doc=f"``{name}`` from the estimator's "
            ":class:`~repro.online.config.EstimatorConfig` (read-only view; "
            "``worker_retries`` is the one knob with a validating setter).",
    )


# Knob attributes delegate to ``self.config`` so there is exactly one copy
# of every setting; read sites (service health, CLI summaries, tests) keep
# working unchanged.
for _name in (
    "window", "step", "stem_iterations", "min_observed_tasks", "shards",
    "shard_workers", "repartition", "warm_workers", "kernel", "threads",
    "n_particles", "ess_threshold", "rejuvenation_sweeps",
):
    setattr(StreamingEstimator, _name, _config_view(_name))
del _name
