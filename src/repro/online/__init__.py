"""Online (windowed) inference and anomaly detection.

Paper Section 6 names "online, distributed inference" as the most useful
future direction, and the introduction motivates the whole enterprise
with anomaly detection and diagnosis of *past* performance problems.
This package implements the natural first step: slide a time window over
the trace, rerun StEM per window against the same partial-observation
regime, and monitor the resulting per-queue rate series for change
points — "five minutes ago, a brief spike occurred; which component was
the bottleneck?" becomes a lookup into the window series.
"""

from repro.online.windowed import WindowEstimate, WindowedEstimator
from repro.online.anomaly import AnomalyReport, detect_anomalies

__all__ = [
    "WindowedEstimator",
    "WindowEstimate",
    "detect_anomalies",
    "AnomalyReport",
]
