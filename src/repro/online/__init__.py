"""Online (windowed and streaming) inference and anomaly detection.

Paper Section 6 names "online, distributed inference" as the most useful
future direction, and the introduction motivates the whole enterprise
with anomaly detection and diagnosis of *past* performance problems.
This package implements that direction in two stages:

* :mod:`repro.online.windowed` — slide a time window over a recorded
  trace, rerun StEM per window against the same partial-observation
  regime, and monitor the resulting per-queue rate series for change
  points — "five minutes ago, a brief spike occurred; which component
  was the bottleneck?" becomes a lookup into the window series.
* :mod:`repro.online.streaming` — the online form: consume an
  incrementally revealed trace (:class:`~repro.online.streaming.TraceStream`),
  keep shard worker processes and their built kernels warm *across*
  windows, and re-partition incrementally as tasks arrive and age out.
  A frozen window matches the windowed estimator bitwise at the same
  seed; warm windows only skip rebuild work, never change a draw.
"""

from repro.online.windowed import (
    WindowEstimate,
    WindowedEstimator,
    task_fully_observed,
)
from repro.online.streaming import (
    ReplayTraceStream,
    StreamEstimate,
    StreamingEstimator,
    TraceStream,
)
from repro.online.anomaly import AnomalyReport, detect_anomalies

__all__ = [
    "WindowedEstimator",
    "WindowEstimate",
    "task_fully_observed",
    "StreamingEstimator",
    "StreamEstimate",
    "TraceStream",
    "ReplayTraceStream",
    "detect_anomalies",
    "AnomalyReport",
]
