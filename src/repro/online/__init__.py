"""Online (windowed and streaming) inference and anomaly detection.

Paper Section 6 names "online, distributed inference" as the most useful
future direction, and the introduction motivates the whole enterprise
with anomaly detection and diagnosis of *past* performance problems.
This package implements that direction in three stages:

* :mod:`repro.online.windowed` — slide a time window over a recorded
  trace, rerun StEM per window against the same partial-observation
  regime, and monitor the resulting per-queue rate series for change
  points — "five minutes ago, a brief spike occurred; which component
  was the bottleneck?" becomes a lookup into the window series.
* :mod:`repro.online.streaming` — the online form: consume an
  incrementally revealed trace (:class:`~repro.online.streaming.TraceStream`),
  keep shard worker processes and their built kernels warm *across*
  windows, and re-partition incrementally as tasks arrive and age out.
  A frozen window matches the windowed estimator bitwise at the same
  seed; warm windows only skip rebuild work, never change a draw.
* :mod:`repro.online.smc` — the O(arrival) form: a particle population
  over the rate vector reweighted per poll batch, with ESS-triggered
  systematic resampling and exact Gibbs rejuvenation on the shared
  sweep kernels.

Every estimator flavor implements :class:`StreamEstimatorProtocol` and is
registered in :data:`ESTIMATORS` under a short name (``"stem"``,
``"smc"``) — the name a checkpoint carries, the value the CLIs'
``--estimator`` flag takes, and the key the service/router layers
dispatch construction on.  Configuration is one shared
:class:`~repro.online.config.EstimatorConfig` regardless of flavor.
"""

from typing import Protocol, runtime_checkable

from repro.errors import InferenceError
from repro.online.config import (
    EstimatorConfig,
    REPARTITION_MODES,
    estimator_config_keys,
)
from repro.online.windowed import (
    WindowEstimate,
    WindowedEstimator,
    task_fully_observed,
)
from repro.online.streaming import (
    ReplayTraceStream,
    StreamEstimate,
    StreamingEstimator,
    TraceStream,
)
from repro.online.smc import SMCEstimator, systematic_resample
from repro.online.anomaly import AnomalyReport, detect_anomalies


@runtime_checkable
class StreamEstimatorProtocol(Protocol):
    """The estimator surface the live tier programs against.

    Anything implementing this protocol can sit behind
    ``EstimatorService``, ``IngestRouter``, checkpoint/restore, and the
    ``repro stream/serve/route`` CLIs; the wire protocol never sees
    which flavor is running.  ``estimator_name`` is the registry key
    carried in ``state_dict()["estimator"]`` so a checkpoint knows which
    class to rebuild.
    """

    estimator_name: str
    stream: "TraceStream"
    config: EstimatorConfig
    n_windows_done: int

    @property
    def window(self) -> float: ...

    @property
    def step(self) -> float: ...

    def process_window(self, t0: float) -> StreamEstimate: ...

    def estimates(self): ...

    def run(self) -> list: ...

    def state_dict(self) -> dict: ...

    def load_state_dict(self, state: dict) -> None: ...

    def pool_stats(self) -> dict | None: ...

    def close(self) -> None: ...


#: Registered estimator flavors, keyed by the name checkpoints carry.
ESTIMATORS: dict[str, type] = {}


def register_estimator(cls: type) -> type:
    """Register an estimator class under its ``estimator_name``."""
    ESTIMATORS[cls.estimator_name] = cls
    return cls


def get_estimator(name: str) -> type:
    """Look up a registered estimator class by name."""
    try:
        return ESTIMATORS[name]
    except KeyError:
        raise InferenceError(
            f"unknown estimator {name!r}; registered: {sorted(ESTIMATORS)}"
        ) from None


register_estimator(StreamingEstimator)
register_estimator(SMCEstimator)

__all__ = [
    "WindowedEstimator",
    "WindowEstimate",
    "task_fully_observed",
    "StreamingEstimator",
    "SMCEstimator",
    "StreamEstimate",
    "TraceStream",
    "ReplayTraceStream",
    "EstimatorConfig",
    "estimator_config_keys",
    "REPARTITION_MODES",
    "StreamEstimatorProtocol",
    "ESTIMATORS",
    "register_estimator",
    "get_estimator",
    "systematic_resample",
    "detect_anomalies",
    "AnomalyReport",
]
