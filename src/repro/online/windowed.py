"""Sliding-window parameter estimation over a censored trace."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InferenceError
from repro.events.subset import SubsetIndex, subset_trace
from repro.inference import run_stem
from repro.observation import ObservedTrace
from repro.rng import RandomState, spawn


@dataclass
class WindowEstimate:
    """Per-window estimation result.

    Attributes
    ----------
    t_start / t_end:
        The window's clock interval.
    n_tasks / n_observed_tasks:
        Tasks whose (estimated) entry falls in the window, and how many of
        them are fully observed.
    rates:
        StEM rate estimate for the window (index 0 = arrival rate), or
        ``None`` when the window held too little observed data or its
        estimation failed.
    failure:
        Why estimation failed (the :class:`~repro.errors.InferenceError`
        message), or ``None`` for successful and skipped windows alike.
    """

    t_start: float
    t_end: float
    n_tasks: int
    n_observed_tasks: int
    rates: np.ndarray | None
    failure: str | None = None

    @property
    def ok(self) -> bool:
        """Whether this window produced an estimate."""
        return self.rates is not None

    def mean_service(self, q: int) -> float:
        """Window estimate of queue *q*'s mean service time (nan if absent)."""
        if self.rates is None:
            return float("nan")
        return float(1.0 / self.rates[q])


def _entry_time_estimates(trace: ObservedTrace) -> dict[int, float]:
    """Entry time per task; unobserved entries interpolated from the
    queue-0 order between observed neighbors (the counter information)."""
    skeleton = trace.skeleton
    order = skeleton.queue_order(0)  # initial events in entry order
    entries = np.full(order.size, np.nan)
    for i, e in enumerate(order):
        succ = skeleton.pi_inv[e]
        if succ >= 0 and trace.arrival_observed[succ]:
            entries[i] = skeleton.arrival[succ]
    # Interpolate nan gaps by position between known anchors.
    known = np.flatnonzero(~np.isnan(entries))
    if known.size == 0:
        raise InferenceError("no observed entries; cannot window the trace")
    positions = np.arange(order.size, dtype=float)
    entries = np.interp(positions, positions[known], entries[known])
    return {int(skeleton.task[e]): float(entries[i]) for i, e in enumerate(order)}


def validate_window_params(
    window: float, step: float | None, stem_iterations: int, shards: int
) -> None:
    """The window-estimation parameter contract, shared by the windowed
    and streaming estimators so the two can never drift apart."""
    if window <= 0.0:
        raise InferenceError(f"window must be positive, got {window}")
    if step is not None and step <= 0.0:
        raise InferenceError(f"step must be positive, got {step}")
    if stem_iterations < 1:
        # Rejected here, not per window: otherwise run_stem's own
        # validation error would be misread as every window failing.
        raise InferenceError(
            f"need at least one StEM iteration, got {stem_iterations}"
        )
    if shards < 1:
        raise InferenceError(f"need at least one shard, got {shards}")


def task_fully_observed(trace: ObservedTrace, task_id: int) -> bool:
    """Whether every non-initial arrival of *task_id* was measured.

    The per-window "observed task" count of the windowed and streaming
    estimators — one definition so the two paths can never disagree.
    """
    skeleton = trace.skeleton
    idx = skeleton.events_of_task(task_id)
    non_init = idx[skeleton.seq[idx] != 0]
    return bool(np.all(trace.arrival_observed[non_init]))


class WindowedEstimator:
    """Re-run StEM over sliding time windows of a censored trace.

    Parameters
    ----------
    trace:
        The full censored trace.
    window:
        Window length (same clock units as the trace).
    step:
        Window start spacing; defaults to the window length (tumbling
        windows).  Smaller values give overlapping windows.
    stem_iterations:
        StEM iterations per window (windows are small; a short run
        suffices).
    min_observed_tasks:
        Windows with fewer fully observed tasks are skipped (``rates=None``).
    shards:
        Sharded sweeps for every window's StEM E-steps (see
        :func:`~repro.inference.stem.run_stem`); the shard count is
        clamped to each window's task count, so small windows fall back
        to the plain kernel automatically.
    kernel / threads:
        Sweep kernel and batch-evaluation thread count for every
        window's E-step chains (see
        :class:`~repro.inference.gibbs.GibbsSampler`); neither changes
        a draw.
    """

    def __init__(
        self,
        trace: ObservedTrace,
        window: float,
        step: float | None = None,
        stem_iterations: int = 40,
        min_observed_tasks: int = 3,
        random_state: RandomState = None,
        shards: int = 1,
        kernel: str = "array",
        threads: int = 1,
    ) -> None:
        validate_window_params(window, step, stem_iterations, shards)
        self.trace = trace
        self.window = float(window)
        self.step = float(step) if step is not None else float(window)
        self.stem_iterations = int(stem_iterations)
        self.min_observed_tasks = int(min_observed_tasks)
        self._random_state = random_state
        self.shards = int(shards)
        self.kernel = str(kernel)
        self.threads = int(threads)
        self._entries = _entry_time_estimates(trace)
        self._subset_index = SubsetIndex(trace.skeleton)

    def _task_observed(self, task_id: int) -> bool:
        return task_fully_observed(self.trace, task_id)

    def run(self) -> list[WindowEstimate]:
        """Estimate every window; returns them in time order.

        A window whose StEM run raises
        :class:`~repro.errors.InferenceError` is recorded as a failed
        window (``rates=None``, the reason on ``failure``) — a failed
        window is data, not a crash.  Programming errors propagate.
        """
        horizon = max(self._entries.values())
        starts = np.arange(0.0, horizon, self.step)
        streams = iter(spawn(self._random_state, max(len(starts), 1)))
        results: list[WindowEstimate] = []
        for t0 in starts:
            t1 = t0 + self.window
            tasks = [k for k, t in self._entries.items() if t0 <= t < t1]
            n_observed = sum(self._task_observed(k) for k in tasks)
            stream = next(streams)
            if len(tasks) < 2 or n_observed < self.min_observed_tasks:
                results.append(WindowEstimate(t0, t1, len(tasks), n_observed, None))
                continue
            window_trace = subset_trace(self.trace, tasks, index=self._subset_index)
            rates = None
            failure = None
            try:
                stem = run_stem(
                    window_trace,
                    n_iterations=self.stem_iterations,
                    init_method="heuristic",
                    random_state=stream,
                    kernel=self.kernel,
                    shards=self.shards,
                    threads=self.threads,
                )
                rates = stem.rates
            except InferenceError as exc:
                failure = str(exc)
            results.append(
                WindowEstimate(t0, t1, len(tasks), n_observed, rates, failure)
            )
        return results
