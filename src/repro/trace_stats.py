"""Trace-level statistics: queue-length processes and busy periods.

Complements the per-event views in :mod:`repro.events` with the
*process* views operators reason about: how long was the queue at each
instant, when was the server busy, what was the peak backlog during the
incident.  All functions are exact reconstructions from the event times
(arrivals and departures), not estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidEventSetError
from repro.events import EventSet


@dataclass(frozen=True)
class QueueLengthProcess:
    """The number-in-system step function of one queue.

    Attributes
    ----------
    times:
        Breakpoints (event instants), increasing.
    counts:
        ``counts[i]`` is the number in system on ``[times[i], times[i+1])``.
    """

    queue: int
    times: np.ndarray
    counts: np.ndarray

    def at(self, t: float) -> int:
        """Number in system at clock time *t*."""
        if self.times.size == 0 or t < self.times[0]:
            return 0
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        return int(self.counts[idx])

    def peak(self) -> tuple[float, int]:
        """(time, count) of the maximum backlog."""
        idx = int(np.argmax(self.counts))
        return float(self.times[idx]), int(self.counts[idx])

    def time_average(self) -> float:
        """Time-averaged number in system over the observed horizon."""
        if self.times.size < 2:
            return 0.0
        widths = np.diff(self.times)
        return float(np.sum(self.counts[:-1] * widths) / widths.sum())


def queue_length_process(events: EventSet, queue: int) -> QueueLengthProcess:
    """Reconstruct a queue's number-in-system step function."""
    members = events.queue_order(queue)
    if members.size == 0:
        raise InvalidEventSetError(f"queue {queue} processed no events")
    arrivals = events.arrival[members]
    departures = events.departure[members]
    instants = np.concatenate([arrivals, departures])
    deltas = np.concatenate([np.ones(members.size), -np.ones(members.size)])
    order = np.argsort(instants, kind="stable")
    times = instants[order]
    counts = np.cumsum(deltas[order])
    # Merge simultaneous instants (a departure and arrival at one time).
    keep = np.append(np.diff(times) > 0.0, True)
    return QueueLengthProcess(
        queue=queue, times=times[keep], counts=counts[keep].astype(np.int64)
    )


@dataclass(frozen=True)
class BusyPeriod:
    """One maximal interval during which the server never idled."""

    start: float
    end: float
    n_served: int

    @property
    def duration(self) -> float:
        """Length of the busy period."""
        return self.end - self.start


def busy_periods(events: EventSet, queue: int, atol: float = 1e-12) -> list[BusyPeriod]:
    """Maximal busy periods of one queue's server.

    A busy period runs from a service start to the first departure after
    which the server idles (the next arrival comes strictly later).
    """
    members = events.queue_order(queue)
    if members.size == 0:
        raise InvalidEventSetError(f"queue {queue} processed no events")
    begins = events.begin_times()[members]
    departures = events.departure[members]
    arrivals = events.arrival[members]
    periods: list[BusyPeriod] = []
    start = float(begins[0])
    count = 0
    for i in range(members.size):
        count += 1
        is_last = i == members.size - 1
        if is_last or arrivals[i + 1] > departures[i] + atol:
            periods.append(
                BusyPeriod(start=start, end=float(departures[i]), n_served=count)
            )
            if not is_last:
                start = float(arrivals[i + 1])
                count = 0
    return periods


def utilization_from_trace(events: EventSet, queue: int) -> float:
    """Fraction of the horizon the server spent busy.

    Horizon = first arrival to last departure at the queue; exact given
    the trace (no model assumptions).
    """
    periods = busy_periods(events, queue)
    busy = sum(p.duration for p in periods)
    members = events.queue_order(queue)
    horizon = float(events.departure[members].max() - events.arrival[members].min())
    if horizon <= 0.0:
        return 0.0
    return min(1.0, busy / horizon)
