"""Stdlib-only line-coverage measurement for selected source trees.

The CI coverage gate (``--cov-fail-under`` in ``.github/workflows/ci.yml``)
needs a measured baseline, but the development container deliberately has
no ``coverage``/``pytest-cov`` installed.  This tool approximates line
coverage with ``sys.settrace``:

* *executable lines* are collected by compiling each target file and
  walking every nested code object's ``co_lines()`` table (what coverage
  tools call the "arcs' line set");
* *executed lines* are recorded by a trace function that activates only
  for frames whose code lives under a target directory, keeping overhead
  proportional to target code, not to the whole suite.

Worker subprocesses are not traced, so lines that only run inside pool
workers count as uncovered — the number printed here is a conservative
*lower bound* on what pytest-cov reports, which is the right direction
for calibrating a fail-under gate.

Usage::

    PYTHONPATH=src python tools/measure_line_coverage.py \
        src/repro/inference src/repro/events src/repro/online -- -q -m "not slow"

Everything after ``--`` is passed to pytest verbatim (default: ``-q``).
"""

from __future__ import annotations

import os
import sys
import threading


def executable_lines(path: str) -> set[int]:
    """Line numbers that carry compiled statements in *path*."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines: set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # The compiler attributes module/class/def headers and docstrings in
    # ways that differ slightly across tools; keep everything — the same
    # convention pytest-cov uses for statement lines.
    return lines


def target_files(roots: list[str]) -> dict[str, set[int]]:
    out: dict[str, set[int]] = {}
    for root in roots:
        for dirpath, _, filenames in os.walk(root):
            for name in filenames:
                if name.endswith(".py"):
                    path = os.path.abspath(os.path.join(dirpath, name))
                    out[path] = executable_lines(path)
    return out


def main(argv: list[str]) -> int:
    if "--" in argv:
        split = argv.index("--")
        roots, pytest_args = argv[:split], argv[split + 1 :]
    else:
        roots, pytest_args = argv, ["-q"]
    if not roots:
        roots = ["src/repro/inference", "src/repro/events", "src/repro/online"]
    wanted = target_files(roots)
    if not wanted:
        print(f"no python files under {roots}", file=sys.stderr)
        return 2
    executed: dict[str, set[int]] = {path: set() for path in wanted}

    def local_trace(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename in executed:
            return local_trace
        return None

    import pytest

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_exec = total_hit = 0
    by_root = {root: [0, 0] for root in roots}
    for path, lines in sorted(wanted.items()):
        hits = executed[path] & lines
        total_exec += len(lines)
        total_hit += len(hits)
        for root in roots:
            if path.startswith(os.path.abspath(root) + os.sep) or path.startswith(
                os.path.abspath(root)
            ):
                by_root[root][0] += len(lines)
                by_root[root][1] += len(hits)
    print("\n=== line coverage (settrace approximation, main process only) ===")
    for root, (n_exec, n_hit) in by_root.items():
        pct = 100.0 * n_hit / n_exec if n_exec else 0.0
        print(f"{root}: {n_hit}/{n_exec} lines = {pct:.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 0.0
    print(f"TOTAL: {total_hit}/{total_exec} lines = {pct:.1f}%")
    return int(code)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
