"""SMC particle filtering vs per-window StEM on one overlapping stream.

Demonstrates the `repro.online.smc` estimator — the O(arrival) online
path: a particle population over the rate vector is reweighted per poll
batch and re-anchored through exact Gibbs moves only when its effective
sample size degrades.  Both estimators are driven over the *same*
heavily overlapping window grid (step = window/6, the live-serving
regime) behind the same `StreamingEstimator` surface, so the example
shows the two things the design promises:

* the published rate series agree (same posterior, different engines);
* SMC's wall clock stops scaling with the overlap, because most windows
  ride on the O(new arrivals) reweight instead of re-running StEM.

Run:  python examples/smc_live.py

The same comparison from the CLI (the flag works on stream/serve/route):

    repro-queueing simulate --topology tandem --tasks 400 \
        --servers 1 2 --out /tmp/trace.jsonl
    repro-queueing stream /tmp/trace.jsonl --windows 4 --step 5 \
        --estimator smc --particles 16
"""

import time

import numpy as np

from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import EstimatorConfig, ReplayTraceStream, get_estimator
from repro.simulate import simulate_network

SEED = 7


def main() -> None:
    # 1. A recorded tandem workload, censored to 30 % observed tasks.
    net = build_tandem_network(arrival_rate=4.0, service_rates=[6.0, 8.0])
    sim = simulate_network(net, n_tasks=400, random_state=SEED)
    trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=SEED)
    horizon = float(np.nanmax(sim.events.departure))
    print(trace.summary())

    # 2. One config, two estimator flavors.  The registry name is the
    #    only thing that differs — the same name the CLIs' --estimator
    #    flag takes and that checkpoints carry.
    window = horizon / 4
    config = EstimatorConfig(
        window=window,
        step=window / 6,        # heavy overlap: the live-serving regime
        stem_iterations=12,
        n_particles=16,
    )
    runs = {}
    for name in ("stem", "smc"):
        estimator = get_estimator(name)(
            ReplayTraceStream(trace), random_state=SEED, config=config
        )
        t0 = time.perf_counter()
        windows = estimator.run()
        seconds = time.perf_counter() - t0
        runs[name] = (seconds, windows, estimator)

    # 3. Same grid, agreeing estimates, different cost profile.
    stem_s, stem_windows, _ = runs["stem"]
    smc_s, smc_windows, smc_est = runs["smc"]
    print(f"\n{'win':>3}  {'t0':>6}  {'t1':>6}   "
          f"{'stem rates (q1, q2)':>22}   {'smc rates (q1, q2)':>22}")
    for i, (a, b) in enumerate(zip(stem_windows, smc_windows)):
        if a.rates is None or b.rates is None:
            continue
        print(f"{i:>3}  {a.t_start:>6.1f}  {a.t_end:>6.1f}   "
              f"{a.rates[1]:>10.3f} {a.rates[2]:>11.3f}   "
              f"{b.rates[1]:>10.3f} {b.rates[2]:>11.3f}")
    n_windows = len(smc_windows)
    print(f"\nper-window StEM reruns: {stem_s:.2f}s "
          f"({1e3 * stem_s / n_windows:.0f} ms/window)")
    print(f"SMC particle filter:    {smc_s:.2f}s "
          f"({1e3 * smc_s / n_windows:.0f} ms/window), "
          f"{smc_est.n_rejuvenations}/{n_windows} windows triggered "
          "Gibbs rejuvenation")
    print("\nevery other window rode on the O(new arrivals) reweight — "
          "that gap is what\nbenchmarks/bench_smc.py gates in CI.")


if __name__ == "__main__":
    main()
