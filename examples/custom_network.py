"""Building custom networks, non-exponential service, and model checks.

Shows the modeling surface beyond the paper's experiments:

* a custom topology with probabilistic routing (retry loops);
* non-exponential service distributions in the simulator (the paper's
  "more general service distributions" future-work direction) and how
  robust the M/M/1 inference is when service is actually log-normal;
* cross-validation against classical queueing theory (Jackson product
  form, Little's law) on a stable network.

Run:  python examples/custom_network.py
"""

import numpy as np

from repro import (
    Exponential,
    LogNormal,
    TaskSampling,
    run_stem,
    simulate_network,
)
from repro.fsm import probabilistic_branch_fsm
from repro.network import QueueingNetwork, build_tandem_network
from repro.network.topology import INITIAL_QUEUE_NAME
from repro.queueing_theory import analyze_jackson, littles_law_check

SEED = 31


def retry_loop_demo() -> None:
    """A service with a 30% retry probability — variable-length paths."""
    fsm = probabilistic_branch_fsm(
        branch_queues=[1, 2], branch_probs=[0.7, 0.3], n_queues=3, repeat_prob=0.3
    )
    network = QueueingNetwork(
        queue_names=(INITIAL_QUEUE_NAME, "fast-path", "slow-path"),
        services={
            INITIAL_QUEUE_NAME: Exponential(rate=3.0),
            "fast-path": Exponential(rate=12.0),
            "slow-path": Exponential(rate=4.0),
        },
        fsm=fsm,
    )
    sim = simulate_network(network, 600, random_state=SEED)
    lengths = [len(p) for p in sim.paths.values()]
    print("=== retry-loop topology (geometric path lengths) ===")
    print(f"mean visits/task: {np.mean(lengths):.2f} (theory: 1/(1-0.3) = 1.43)")
    trace = TaskSampling(fraction=0.15).observe(sim.events, random_state=SEED)
    stem = run_stem(trace, n_iterations=80, random_state=SEED)
    print(f"estimated rates: {np.round(stem.rates, 2)} (true: [3, 12, 4])\n")


def misspecification_demo() -> None:
    """Service is log-normal; the M/M/1 inference still localizes well."""
    base = build_tandem_network(3.0, [5.0, 8.0], names=["app", "db"])
    services = dict(base.services)
    # Same means as the exponential network, but log-normal (SCV = 2).
    services["app"] = LogNormal.from_mean_scv(mean=0.2, scv=2.0)
    services["db"] = LogNormal.from_mean_scv(mean=0.125, scv=2.0)
    network = QueueingNetwork(
        queue_names=base.queue_names, services=services, fsm=base.fsm
    )
    sim = simulate_network(network, 800, random_state=SEED)
    trace = TaskSampling(fraction=0.2).observe(sim.events, random_state=SEED)
    stem = run_stem(trace, n_iterations=80, random_state=SEED)
    true_service = sim.events.mean_service_by_queue()
    print("=== robustness: true service is log-normal, model assumes M/M/1 ===")
    print(f"{'queue':<6}{'true mean svc':>14}{'estimated':>11}")
    for q, name in ((1, "app"), (2, "db")):
        print(f"{name:<6}{true_service[q]:>14.3f}"
              f"{stem.mean_service_times()[q]:>11.3f}")
    print("(means recovered despite the wrong service family)\n")


def theory_cross_check() -> None:
    """Simulator vs Jackson product form vs Little's law."""
    network = build_tandem_network(2.0, [5.0, 4.0], names=["cpu", "disk"])
    sim = simulate_network(network, 8000, random_state=SEED)
    analysis = analyze_jackson(network)
    measured_wait = sim.events.mean_waiting_by_queue()
    print("=== stable tandem: simulation vs Jackson product form ===")
    print(f"{'queue':<6}{'waiting (sim)':>14}{'waiting (theory)':>17}")
    for q, name in ((1, "cpu"), (2, "disk")):
        print(f"{name:<6}{measured_wait[q]:>14.3f}"
              f"{analysis.per_queue[q].mean_waiting:>17.3f}")
    for q in (1, 2):
        report = littles_law_check(sim.events, queue=q)
        print(f"Little's law at queue {q}: L={report.l_time_average:.3f}, "
              f"lambda*W={report.arrival_rate * report.mean_response:.3f} "
              f"(gap {report.relative_gap:.1%})")


def main() -> None:
    retry_loop_demo()
    misspecification_demo()
    theory_cross_check()


if __name__ == "__main__":
    main()
