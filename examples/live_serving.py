"""Live serving: ingest -> estimate -> query, end to end in one process.

Demonstrates the `repro.live` subsystem: an EstimatorService supervises
the streaming estimator over a LiveTraceStream, a LiveServer exposes it
over TCP, and a client ships a simulated webapp trace as measurement
records (in entry order, watermark advanced alongside — exactly what a
real reporting agent would do), then queries the published per-window
estimates and anomaly flags back.

Run:  python examples/live_serving.py

The same flow split across two terminals, with the CLI:

    # terminal 1 — the always-on service (3 queues incl. entry queue 0)
    repro-queueing simulate --topology tandem --tasks 300 \
        --servers 1 2 --out /tmp/trace.jsonl
    repro-queueing serve --queues 3 --window 15 --port 7577 --authkey demo

    # terminal 2 — replay the recording into it at 20x real time
    repro-queueing ingest /tmp/trace.jsonl --connect 127.0.0.1:7577 \
        --authkey demo --observe 0.3 --speedup 20 --wait --shutdown
"""

import time

import numpy as np

from repro.live import (
    EstimatorService,
    LiveClient,
    LiveServer,
    LiveTraceStream,
    replay_batches,
)
from repro.observation import TaskSampling
from repro.online import StreamingEstimator
from repro.webapp import WebAppConfig, generate_webapp_trace

SEED = 7


def main() -> None:
    # 1. A recorded workload standing in for the monitored system: the
    #    paper's movie-voting webapp, censored to 25 % observed tasks.
    sim = generate_webapp_trace(WebAppConfig(n_requests=300), random_state=SEED)
    trace = TaskSampling(fraction=0.25).observe(sim.events, random_state=SEED)
    horizon = float(np.nanmax(sim.events.departure))
    print(trace.summary())

    # 2. The service: live stream -> streaming estimator -> supervisor,
    #    served over TCP with a shared-secret handshake.
    stream = LiveTraceStream(n_queues=trace.skeleton.n_queues)
    estimator = StreamingEstimator(
        stream, window=horizon / 5, stem_iterations=10, random_state=SEED
    )
    service = EstimatorService(estimator, poll_interval=0.05)
    with service.start(), LiveServer(service, authkey=b"demo") as server:
        host, port = server.address
        print(f"\nservice listening on {host}:{port}")

        # 3. The reporting agent: ship measurement records in entry
        #    order, advancing the watermark ("nothing older than this is
        #    still coming") ahead of every batch.
        with LiveClient(server.address, authkey=b"demo") as client:
            shipped = 0
            for watermark, batch in replay_batches(trace, batch_tasks=25):
                client.advance_watermark(watermark)
                shipped += client.ingest(batch)["admitted"]
            client.seal()
            print(f"shipped {shipped} measurement records; stream sealed")

            # 4. Query the estimates back as they finish publishing.
            while client.health()["status"] == "serving":
                time.sleep(0.1)
            health = client.health()
            print(f"service status: {health['status']}, "
                  f"{health['windows_published']} windows published\n")
            print("win   interval          tasks  mean service per queue")
            for est in client.estimates():
                if est["rates"] is not None:
                    services = "  ".join(
                        f"{1.0 / r:.4f}" for r in est["rates"][1:]
                    )
                else:
                    services = est["failure"] or "skipped (too few observed)"
                flag = " <- anomaly" if est["anomalous_queues"] else ""
                print(f"{est['index']:>3}   [{est['t_start']:7.1f},"
                      f"{est['t_end']:7.1f})  {est['n_tasks']:>5}  "
                      f"{services}{flag}")
    service.stop()
    print("\nserver closed, worker pool drained — done")


if __name__ == "__main__":
    main()
