"""Quickstart: estimate queue parameters from 10 % of a trace.

Builds the paper's synthetic three-tier network (Section 5.1), simulates
500 tasks, censors the trace so only 10 % of tasks are observed, then runs
stochastic EM with the Gibbs sampler to recover every queue's service
rate, the system arrival rate, and the per-queue waiting times.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    TaskSampling,
    build_three_tier_network,
    estimate_posterior,
    run_stem,
    simulate_network,
)

SEED = 42


def main() -> None:
    # 1. The system under study: lambda = 10, every mu = 5, tiers of
    #    1 / 2 / 4 replicated servers (the 1-server tier is overloaded).
    network = build_three_tier_network(
        arrival_rate=10.0, servers_per_tier=(1, 2, 4), service_rate=5.0
    )
    print(network.describe())

    # 2. Ground truth: what an omniscient tracer would record.
    sim = simulate_network(network, n_tasks=500, random_state=SEED)
    print(f"\nsimulated {sim.events.n_events} events from {sim.n_tasks} tasks")

    # 3. Reality: we only afford to observe 10 % of the tasks.
    trace = TaskSampling(fraction=0.10).observe(sim.events, random_state=SEED)
    print(trace.summary())

    # 4. Inference: StEM for the rates...
    result = run_stem(trace, n_iterations=100, random_state=SEED)
    # ...then the Gibbs sampler at the fixed estimate for waiting times.
    posterior = estimate_posterior(
        trace, rates=result.rates, n_samples=30, burn_in=15,
        state=result.sampler.state, random_state=SEED + 1,
    )

    # 5. Compare with the ground truth the estimator never saw.
    true_service = sim.events.mean_service_by_queue()
    true_waiting = sim.events.mean_waiting_by_queue()
    print(f"\narrival rate: true 10.0, estimated {result.arrival_rate:.2f}")
    print(f"{'queue':<14}{'svc true':>10}{'svc est':>10}"
          f"{'wait true':>11}{'wait est':>11}")
    for q in range(1, network.n_queues):
        print(
            f"{network.queue_names[q]:<14}{true_service[q]:>10.3f}"
            f"{result.mean_service_times()[q]:>10.3f}"
            f"{true_waiting[q]:>11.3f}{posterior.waiting_mean[q]:>11.3f}"
        )
    median_err = np.median(
        np.abs(result.mean_service_times()[1:] - true_service[1:])
    )
    print(f"\nmedian service-time error: {median_err:.3f} "
          "(paper reports 0.033 at 5 % observation)")


if __name__ == "__main__":
    main()
