"""Answering the paper's two Section-1 diagnosis questions.

1. "Five minutes ago, a brief spike in workload occurred.  Which parts of
   the system were the bottleneck during that spike?"  — answered with a
   time-window observation scheme over a bursty (MMPP) workload.

2. "During the execution of the 1% of requests that perform poorly, which
   system components receive the most load?" — answered with the
   slow-request latency decomposition.

Run:  python examples/slow_request_analysis.py
"""

import numpy as np

from repro import MMPPArrivals, TimeWindowSampling, estimate_posterior, run_stem, simulate_network
from repro.localization import slow_request_profile
from repro.network import build_three_tier_network

SEED = 99


def main() -> None:
    # Bursty traffic: a quiet state (rate 4) and a spike state (rate 25).
    network = build_three_tier_network(
        arrival_rate=8.0, servers_per_tier=(2, 2, 4), service_rate=5.0
    )
    arrivals = MMPPArrivals(rates=(4.0, 25.0), switch_rates=(0.15, 0.4))
    sim = simulate_network(network, 1200, arrival_process=arrivals, random_state=SEED)
    events = sim.events
    names = network.queue_names

    # ---- Question 2: where do the slowest requests spend their time? ----
    profile = slow_request_profile(events, percentile=99.0)
    print("=== the slowest 1% of requests vs the average request ===")
    print(f"{'queue':<10}{'wait (slow)':>12}{'wait (all)':>12}{'svc (slow)':>12}{'svc (all)':>11}")
    for q in range(1, events.n_queues):
        print(
            f"{names[q]:<10}{profile['slow_waiting'][q]:>12.3f}"
            f"{profile['all_waiting'][q]:>12.3f}"
            f"{profile['slow_service'][q]:>12.3f}{profile['all_service'][q]:>11.3f}"
        )
    worst = int(np.nanargmax(profile["slow_waiting"][1:]) + 1)
    print(f"\nslow requests queue up at {names[worst]!r}; their *service* times")
    print("are ordinary -> the tail latency is load, not a slow component.\n")

    # ---- Question 1: retrospective spike diagnosis from a window. ----
    # Find the busiest window of the trace (where the spike hit).
    entries = np.sort(events.departure[events.seq == 0])
    window = 0.2 * (entries[-1] - entries[0])
    counts, edges = np.histogram(entries, bins=25)
    peak = int(np.argmax(counts))
    t0 = max(edges[peak] - window / 2, entries[0])
    t1 = t0 + window
    print(f"=== diagnosing the spike window [{t0:.1f}, {t1:.1f}] ===")
    scheme = TimeWindowSampling(start=t0, end=t1)
    trace = scheme.observe(events)
    print(trace.summary())
    stem = run_stem(trace, n_iterations=60, random_state=SEED)
    posterior = estimate_posterior(
        trace, rates=stem.rates, n_samples=20, burn_in=10,
        state=stem.sampler.state, random_state=SEED + 1,
    )
    print(f"\n{'queue':<10}{'svc est':>10}{'wait est':>10}")
    for q in range(1, events.n_queues):
        print(f"{names[q]:<10}{stem.mean_service_times()[q]:>10.3f}"
              f"{posterior.waiting_mean[q]:>10.3f}")
    spike_bottleneck = int(np.nanargmax(posterior.waiting_mean[1:]) + 1)
    print(f"\nduring the spike, the bottleneck was {names[spike_bottleneck]!r} "
          "(waiting-dominated -> a capacity problem, not a fault).")


if __name__ == "__main__":
    main()
