"""Performance-fault localization on a three-tier service.

The paper's motivating application (Sections 1 and 5): from a thin trace
sample, decide *which* component is the bottleneck and *why* — intrinsic
slowness (service-dominated) vs overload (waiting-dominated).  This
example injects an intrinsic fault into one database server and an
overload into the web tier, then shows the estimator separating the two,
and contrasts the answer with what classical steady-state analysis and
the observed-mean baseline would say.

Run:  python examples/three_tier_localization.py
"""

import numpy as np

from repro import Exponential, TaskSampling, estimate_posterior, run_stem, simulate_network
from repro.baselines import observed_mean_service, steady_state_fit
from repro.localization import rank_bottlenecks, render_report
from repro.network import build_three_tier_network
from repro.network.topology import QueueingNetwork

SEED = 7


def build_faulty_network() -> QueueingNetwork:
    """Three-tier network with one intrinsically slow database server."""
    network = build_three_tier_network(
        arrival_rate=9.0, servers_per_tier=(2, 2, 4), service_rate=5.0
    )
    services = dict(network.services)
    # Fault injection: db-2's disk is failing -> 4x the service time.
    services["db-2"] = Exponential(rate=1.25)
    return QueueingNetwork(
        queue_names=network.queue_names, services=services, fsm=network.fsm
    )


def main() -> None:
    network = build_faulty_network()
    print("ground truth: web tier moderately loaded (rho = 0.9/server),")
    print("db-2 intrinsically 4x slower than its siblings\n")

    sim = simulate_network(network, n_tasks=800, random_state=SEED)
    trace = TaskSampling(fraction=0.10).observe(sim.events, random_state=SEED)
    print(trace.summary(), "\n")

    stem = run_stem(trace, n_iterations=120, random_state=SEED)
    posterior = estimate_posterior(
        trace, rates=stem.rates, n_samples=30, burn_in=15,
        state=stem.sampler.state, random_state=SEED + 1,
    )

    ranked = rank_bottlenecks(posterior, network.queue_names)
    print("=== bottleneck report (from 10% of the trace) ===")
    print(render_report(ranked))

    top = ranked[0]
    print(f"\ndiagnosis: {top.name} is the worst queue and is {top.verdict}.")
    db2 = next(d for d in ranked if d.name == "db-2")
    print(f"db-2: service {db2.service:.3f} (true mean 0.8) -> verdict "
          f"{db2.verdict!r}: replace the component, don't add replicas.")

    # What the alternatives say.
    print("\n=== comparison with baselines ===")
    base = observed_mean_service(sim.events, trace)
    steady = steady_state_fit(trace)
    true_service = sim.events.mean_service_by_queue()
    print(f"{'queue':<10}{'true svc':>9}{'StEM':>9}{'obs-mean':>10}{'steady-state':>14}")
    for q in range(1, network.n_queues):
        steady_svc = 1.0 / steady[q] if np.isfinite(steady[q]) else float("nan")
        print(
            f"{network.queue_names[q]:<10}{true_service[q]:>9.3f}"
            f"{stem.mean_service_times()[q]:>9.3f}{base[q]:>10.3f}"
            f"{steady_svc:>14.3f}"
        )
    print("\n(the observed-mean baseline is an oracle that reads true service")
    print("times; the steady-state fit needs the M/M/1 formula to hold.)")


if __name__ == "__main__":
    main()
