"""Multi-chain inference: trust the posterior before using it.

Deterministic dependencies are "known to impair the performance of Gibbs
samplers" (paper Section 3) — a single chain can look perfectly stable
while being stuck.  This example runs four independent chains from
over-dispersed starting points (heuristic, LP, and rate-jittered
initializations), optionally fanned out over a process pool, and reads the
cross-chain diagnostics before reporting any estimate:

* split-R^hat near 1 on every queue  ->  the chains agree, the posterior
  summaries are trustworthy;
* cross-chain ESS  ->  how many independent draws the pooled posterior is
  actually worth.

Run:  python examples/multichain_diagnostics.py
"""

import os

import numpy as np

from repro import (
    MultiChainSampler,
    TaskSampling,
    build_three_tier_network,
    run_stem,
    simulate_network,
)

SEED = 42


def main() -> None:
    # 1. Simulate the paper's three-tier system and observe 10 % of tasks.
    network = build_three_tier_network(
        arrival_rate=10.0, servers_per_tier=(1, 2, 4), service_rate=5.0
    )
    sim = simulate_network(network, n_tasks=400, random_state=SEED)
    trace = TaskSampling(fraction=0.10).observe(sim.events, random_state=SEED)
    print(trace.summary())

    # 2. Rates via StEM with two pooled E-step chains (less noisy iterates).
    result = run_stem(trace, n_iterations=80, random_state=SEED, n_chains=2)
    print(f"\nestimated arrival rate lambda = {result.arrival_rate:.2f} (true 10.0)")

    # 3. Posterior waiting times from 4 independent chains.  Worker count
    #    only changes scheduling — the draws are identical either way.
    workers = min(4, os.cpu_count() or 1)
    multi = MultiChainSampler(
        trace, rates=result.rates, n_chains=4, random_state=SEED + 1
    ).collect(n_samples=40, burn_in=20, workers=workers)
    print(multi.summary())

    # 4. Read the diagnostics before believing any number.
    r_hat = multi.split_r_hat("waiting")
    ess = multi.ess("waiting")
    pooled = multi.pooled()
    waiting = pooled.posterior_mean_waiting()
    true_waiting = sim.events.mean_waiting_by_queue()
    print(f"\n{'queue':<14}{'wait true':>10}{'wait est':>10}"
          f"{'split-Rhat':>12}{'ESS':>8}")
    for q in range(1, network.n_queues):
        flag = "" if r_hat[q] < 1.2 else "  <- keep sampling"
        print(
            f"{network.queue_names[q]:<14}{true_waiting[q]:>10.3f}"
            f"{waiting[q]:>10.3f}{r_hat[q]:>12.3f}{ess[q]:>8.0f}{flag}"
        )

    worst = multi.max_r_hat("waiting")
    if worst < 1.2:
        print(f"\nchains agree (max split-Rhat {worst:.3f}): estimates usable")
    else:
        print(f"\nmax split-Rhat {worst:.3f} > 1.2: run longer chains before "
              "trusting the posterior")


if __name__ == "__main__":
    main()
