"""Online anomaly detection: catching a degrading component from 25 % of a trace.

The paper's introduction lists "anomaly detection, and diagnosis of
performance bugs" among the applications of performance models.  This
example injects a fault — a backend whose service slows 4x midway through
the run (think: failing disk) — then slides a window over the censored
trace, re-estimates each window with StEM, and flags the change point with
a robust z-score detector.  Crucially the detector sees *service* times,
so it distinguishes the degradation from the load fluctuations that would
fool a latency-threshold alert.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro import TaskSampling
from repro.model_checking import posterior_predictive_check
from repro.inference import run_stem
from repro.network import build_tandem_network
from repro.online import WindowedEstimator, detect_anomalies
from repro.simulate import RateChange, simulate_with_faults

SEED = 5


def main() -> None:
    net = build_tandem_network(4.0, [8.0, 10.0])
    n_tasks = 800
    fault_time = 0.55 * (n_tasks / 4.0)
    sim = simulate_with_faults(
        net, n_tasks,
        faults=[RateChange(queue=1, at=fault_time, rate=2.0)],  # 8.0 -> 2.0
        random_state=SEED,
    )
    events = sim.events
    horizon = float(np.sort(events.departure[events.seq == 0])[-1])
    print(f"simulated {events.n_tasks} tasks over {horizon:.0f}s;")
    print(f"queue 1's service degrades 4x at t = {fault_time:.0f}s\n")

    trace = TaskSampling(fraction=0.25).observe(events, random_state=SEED)
    print(trace.summary(), "\n")

    estimator = WindowedEstimator(
        trace, window=horizon / 10, stem_iterations=35, random_state=SEED
    )
    windows = estimator.run()

    print(f"{'window':>14}{'tasks':>7}{'svc q1':>9}{'svc q2':>9}")
    for w in windows:
        q1 = f"{w.mean_service(1):.3f}" if w.ok else "--"
        q2 = f"{w.mean_service(2):.3f}" if w.ok else "--"
        print(f"[{w.t_start:5.0f},{w.t_end:5.0f}]{w.n_tasks:>7}{q1:>9}{q2:>9}")

    reports = detect_anomalies(windows, threshold=4.0)
    print("\n=== anomaly reports ===")
    if not reports:
        print("none")
    for r in reports:
        print(
            f"queue {r.queue} in window [{r.t_start:.0f}, {r.t_end:.0f}]: "
            f"service {r.value:.3f} vs baseline {r.baseline:.3f} "
            f"(z = {r.z_score:.1f})"
        )
    first = min(reports, key=lambda r: r.window_index)
    print(f"\nfirst detection at t ~ {first.t_start:.0f}s "
          f"(fault injected at {fault_time:.0f}s)")

    # Bonus: a whole-trace posterior predictive check also fails, because a
    # single stationary M/M/1 rate can't explain a mid-run regime change.
    net = build_tandem_network(4.0, [8.0, 10.0])
    stem = run_stem(trace, n_iterations=60, random_state=SEED)
    ppc = posterior_predictive_check(
        trace, net.with_rates(stem.rates), observe_fraction=0.25,
        n_replicates=15, random_state=SEED,
    )
    print("\nposterior predictive check on the stationary model:",
          "PASS" if ppc.ok else f"FAIL (flagged: {ppc.flagged()})")


if __name__ == "__main__":
    main()
