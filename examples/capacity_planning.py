"""Capacity planning from a thin trace: fit at low load, predict the cliff.

The paper's introduction promises that queueing models "predict the amount
of load that will cause a system to become unresponsive, without actually
allowing it to fail".  This example closes that loop end to end:

1. observe 10 % of requests from a system running at comfortable load;
2. fit the network with StEM;
3. extrapolate the fitted model's response-time curve to loads the system
   has never seen, find the saturation point and the knee, and verify the
   prediction against (simulated) reality.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import (
    TaskSampling,
    predict_response_curve,
    run_stem,
    saturation_point,
    simulate_network,
)
from repro.network import build_tandem_network

SEED = 17


def main() -> None:
    # Reality: a 3-stage pipeline currently at lambda = 2 (30-50% load).
    true_network = build_tandem_network(
        arrival_rate=2.0, service_rates=[6.0, 4.5, 8.0],
        names=["frontend", "backend", "storage"],
    )
    sim = simulate_network(true_network, 800, random_state=SEED)
    trace = TaskSampling(fraction=0.10).observe(sim.events, random_state=SEED)
    print(f"observed {trace.n_observed_arrivals} of "
          f"{np.count_nonzero(sim.events.seq != 0)} arrivals at lambda = 2.0\n")

    # Fit.
    stem = run_stem(trace, n_iterations=100, random_state=SEED)
    fitted = true_network.with_rates(stem.rates)
    print("fitted service rates:", np.round(stem.rates[1:], 2),
          " (true: [6.0, 4.5, 8.0])")

    # Predict.
    capacity = saturation_point(fitted)
    true_capacity = saturation_point(true_network)
    print(f"\npredicted capacity: lambda_max = {capacity:.2f} "
          f"(true: {true_capacity:.2f}, the backend binds)")

    rates = np.linspace(0.5, min(capacity, true_capacity) * 0.97, 10)
    predicted = predict_response_curve(fitted, rates)
    actual = predict_response_curve(true_network, rates)
    print(f"\n{'lambda':>7}{'predicted resp':>15}{'true-model resp':>16}")
    for lam, p, a in zip(rates, predicted.mean_response, actual.mean_response):
        print(f"{lam:>7.2f}{p:>15.3f}{a:>16.3f}")

    knee = predicted.knee(factor=3.0)
    print(f"\nknee (response 3x the light-load value): lambda ~ {knee:.2f}")
    print("recommendation: provision below the knee; the model found the")
    print("cliff without ever pushing the real system past lambda = 2.")


if __name__ == "__main__":
    main()
