"""Diagnosing the (simulated) movie-voting web application.

Reproduces the Section 5.2 workflow interactively: a haproxy-style
balancer spreads requests over ten web servers (one starved, as the paper
observed), with a database and a shared network queue, under a linear load
ramp.  We observe 10 % of the requests and recover per-queue service and
waiting estimates, flagging the starved server whose estimates the paper
calls out as unstable.

Run:  python examples/webapp_diagnosis.py
"""

import numpy as np

from repro import TaskSampling, estimate_posterior, run_stem
from repro.localization import diagnose, render_report, rank_bottlenecks
from repro.webapp import WebAppConfig, generate_webapp_trace

SEED = 2008


def main() -> None:
    # A reduced-scale run (the paper's 5 759 requests work too but take a
    # few minutes; set n_requests=5759, duration=1800.0 to match exactly).
    config = WebAppConfig(n_requests=1200, duration=400.0)
    sim = generate_webapp_trace(config, random_state=SEED)
    names = sim.network.queue_names
    events_per_queue = sim.events.events_per_queue()
    print(f"simulated {sim.events.n_events - config.n_requests} arrival events "
          f"from {config.n_requests} requests over a {config.duration:.0f}s ramp")
    starved = int(np.argmin(np.where(np.arange(len(names)) == 0, 1 << 30,
                                     events_per_queue)))
    print(f"load balancer starved {names[starved]}: "
          f"{events_per_queue[starved]} requests "
          "(paper saw 19 of 5759)\n")

    trace = TaskSampling(fraction=0.10).observe(sim.events, random_state=SEED)
    print(trace.summary(), "\n")

    stem = run_stem(trace, n_iterations=80, random_state=SEED)
    posterior = estimate_posterior(
        trace, rates=stem.rates, n_samples=25, burn_in=12,
        state=stem.sampler.state, random_state=SEED + 1,
    )

    true_service = sim.events.mean_service_by_queue()
    print("=== per-queue estimates from 10% of requests ===")
    print(f"{'queue':<10}{'events':>7}{'svc true':>10}{'svc est':>10}{'wait est':>10}")
    for q in range(1, len(names)):
        flag = "  <- starved, unstable" if q == starved else ""
        print(
            f"{names[q]:<10}{events_per_queue[q]:>7d}{true_service[q]:>10.3f}"
            f"{stem.mean_service_times()[q]:>10.3f}"
            f"{posterior.waiting_mean[q]:>10.3f}{flag}"
        )

    print("\n=== bottleneck ranking ===")
    print(render_report(rank_bottlenecks(posterior, names), top=5))

    verdicts = {d.name: d.verdict for d in diagnose(posterior, names)}
    print(f"\nnetwork queue verdict: {verdicts['network']!r} — the shared "
          "network queue absorbs the ramp's peak load (2 visits/request),")
    print("so its delay is load-induced: add capacity, nothing is broken.")


if __name__ == "__main__":
    main()
