"""Figure 2: the Markov blanket of one arrival move.

The paper's Figure 2 illustrates which variables a single Gibbs move
touches (resampled: s_e, s_pi(e), s_rho^-1(pi(e)); read-only neighbors
shaded).  This benchmark extracts the blanket for every movable event in a
trace, asserts the paper's O(1) bound, and times the extraction — the
property that makes each move constant-cost regardless of network size.
"""

import numpy as np

from repro.experiments import render_table
from repro.inference.conditional import markov_blanket
from repro.network import build_three_tier_network
from repro.simulate import simulate_network


def test_fig2_blanket_extraction(benchmark):
    net = build_three_tier_network(10.0, (1, 2, 4))
    sim = simulate_network(net, 400, random_state=21)
    ev = sim.events
    movable = [e for e in range(ev.n_events) if ev.pi[e] >= 0]

    def extract_all():
        return [markov_blanket(ev, e) for e in movable]

    blankets = benchmark(extract_all)
    resampled_sizes = np.array([len(b["resampled"]) for b in blankets])
    fixed_sizes = np.array([len(b["fixed"]) for b in blankets])
    assert resampled_sizes.max() <= 3  # paper: s_e, s_pi(e), s_rho^-1(pi(e))
    assert fixed_sizes.max() <= 4

    print("\n=== Figure 2: variables involved in one arrival move ===")
    print("paper: resampling a_e touches exactly the services of e, pi(e),")
    print("and rho^-1(pi(e)); all other variables are held fixed (shaded).")
    rows = [
        ("resampled services", f"{resampled_sizes.min()}", f"{resampled_sizes.max()}",
         f"{resampled_sizes.mean():.2f}"),
        ("fixed neighbors read", f"{fixed_sizes.min()}", f"{fixed_sizes.max()}",
         f"{fixed_sizes.mean():.2f}"),
    ]
    print(render_table(["variable set", "min", "max", "mean"], rows))

    example = blankets[len(blankets) // 2]
    e = movable[len(blankets) // 2]
    print(f"\nexample event {e}: resampled={example['resampled']}, "
          f"fixed={example['fixed']}")
