"""Multi-chain throughput: sweep engines, worker fan-out, persistent pools.

Three measurements back the multi-chain engine:

* the per-sweep speedup of the blanket-cached (and batched-draw) object
  sweep over the derive-everything-per-move reference sweep, plus the
  vectorized array kernel head to head;
* multi-chain wall-clock vs chain count and process-pool size, with a
  bitwise determinism check that worker count never changes the draws;
* persistent-pool StEM E-step scaling vs worker count, with a bitwise
  serial-equivalence check.

On a single-core container the pools add overhead instead of speed — the
tables still show throughput per configuration, and the determinism
assertions are the part that must hold everywhere.
"""

import os
import time

import numpy as np

from repro.experiments import render_table
from repro.inference import GibbsSampler, MultiChainSampler, heuristic_initialize
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network

from conftest import full_scale


def make_trace(n_tasks: int, seed: int = 17):
    net = build_three_tier_network(10.0, (1, 2, 4))
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=seed)
    return trace, sim.true_rates()


def sweep_rate(trace, rates, n_sweeps=8, **kwargs):
    sampler = GibbsSampler(
        trace, heuristic_initialize(trace, rates), rates, random_state=3, **kwargs
    )
    sampler.sweep()  # warm-up
    t0 = time.perf_counter()
    sampler.run(n_sweeps)
    elapsed = (time.perf_counter() - t0) / n_sweeps
    return elapsed, sampler.n_latent


def test_blanket_cache_speedup(benchmark):
    """Cached sweeps must never be slower than the reference sweep."""
    n_tasks = 2000 if full_scale() else 500
    trace, rates = make_trace(n_tasks)

    def run():
        return {
            "uncached": sweep_rate(
                trace, rates, cache_blankets=False, kernel="object"
            ),
            "cached": sweep_rate(
                trace, rates, cache_blankets=True, kernel="object"
            ),
            "cached+batch": sweep_rate(
                trace, rates, batch_draws=True, kernel="object"
            ),
            "array": sweep_rate(trace, rates, kernel="array"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results["uncached"][0]
    rows = [
        (label, latent, f"{sec * 1e3:.1f}", f"{sec / latent * 1e6:.1f}",
         f"{base / sec:.2f}x")
        for label, (sec, latent) in results.items()
    ]
    print("\n=== Sweep throughput: blanket cache + batched draws ===")
    print(render_table(
        ["sweep", "latent vars", "ms / sweep", "us / latent", "speedup"],
        rows, title="static blankets precomputed once vs re-derived per move",
    ))
    # Generous bound: the point is catching a real regression (cached
    # sweeps ~1.3-1.8x faster locally), not failing CI on a noisy runner.
    assert results["cached"][0] < base * 1.5
    assert results["cached+batch"][0] < base * 1.5
    # The vectorized kernel must beat every object-path variant outright.
    assert results["array"][0] < base


def test_chain_worker_scaling(benchmark):
    """Wall-clock vs chain/worker count, plus bitwise worker invariance."""
    n_tasks = 800 if full_scale() else 200
    trace, rates = make_trace(n_tasks)
    n_samples = 10 if full_scale() else 5
    cpu = os.cpu_count() or 1
    configs = [(1, None), (2, None), (4, None), (4, 2), (4, min(4, cpu))]

    def run():
        out = []
        for n_chains, workers in configs:
            mc = MultiChainSampler(trace, rates, n_chains=n_chains, random_state=29)
            t0 = time.perf_counter()
            post = mc.collect(n_samples=n_samples, burn_in=2, workers=workers)
            out.append((n_chains, workers, time.perf_counter() - t0, post))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    total_sweeps = n_samples + 2
    rows = [
        (k, w if w else "serial", f"{sec:.2f}",
         f"{k * total_sweeps / sec:.1f}",
         f"{post.max_r_hat('waiting'):.3f}")
        for k, w, sec, post in results
    ]
    print("\n=== Multi-chain scaling: chains x workers ===")
    print(render_table(
        ["chains", "workers", "seconds", "chain-sweeps / s", "max split-Rhat"],
        rows, title=f"{trace.n_latent} latent vars, {n_samples} samples/chain",
    ))
    # Determinism across worker counts: all 4-chain runs drew identically.
    four_chain = [post for k, _, _, post in results if k == 4]
    for other in four_chain[1:]:
        for a, b in zip(four_chain[0].chains, other.chains):
            np.testing.assert_array_equal(a.mean_waiting, b.mean_waiting)
            np.testing.assert_array_equal(a.log_joint, b.log_joint)


def test_persistent_stem_worker_scaling(benchmark):
    """Persistent-pool StEM E-steps: wall clock vs worker count + bitwise check.

    Chains stay resident in their workers across EM iterations; only rate
    vectors and per-queue sufficient statistics cross the process boundary
    each round, so multi-core hosts approach linear E-step scaling.  On a
    single-core container the pool is pure overhead — the part that must
    hold everywhere is that every configuration reproduces the serial
    rate history bitwise.
    """
    from repro.inference import run_stem

    n_tasks = 600 if full_scale() else 150
    trace, _ = make_trace(n_tasks)
    cpu = os.cpu_count() or 1
    n_chains = 4
    n_iterations = 30 if full_scale() else 12
    worker_counts = [None, 1, 2]
    if cpu > 2:
        worker_counts.append(min(4, cpu))

    def run():
        out = []
        for workers in worker_counts:
            t0 = time.perf_counter()
            result = run_stem(
                trace, n_iterations=n_iterations, random_state=23,
                init_method="heuristic", n_chains=n_chains,
                persistent_workers=workers,
            )
            out.append((workers, time.perf_counter() - t0, result))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serial_time = results[0][1]
    rows = [
        (w if w else "serial", f"{sec:.2f}",
         f"{n_chains * n_iterations / sec:.1f}", f"{serial_time / sec:.2f}x")
        for w, sec, _ in results
    ]
    print("\n=== Persistent-pool StEM: E-step scaling vs worker count ===")
    print(render_table(
        ["workers", "seconds", "chain-iters / s", "vs serial"],
        rows, title=f"{trace.n_latent} latent vars, {n_chains} chains x "
        f"{n_iterations} iterations ({cpu} cores)",
    ))
    reference = results[0][2]
    for _, _, result in results[1:]:
        np.testing.assert_array_equal(
            reference.rates_history, result.rates_history
        )
