"""Figure 1: the three-tier queueing-network topology.

Figure 1 is a schematic; its reproduction is the topology builder itself.
This benchmark constructs the paper's networks (three-tier with network
queues elided, as in Section 5.1, plus the web-app variant with the shared
network queue) and measures construction + routing throughput, printing
the rendered topology so the figure can be compared by eye.
"""

import numpy as np

from repro.experiments import render_table
from repro.network import build_three_tier_network, paper_synthetic_structures
from repro.webapp import build_webapp_network


def build_all_structures():
    networks = [
        build_three_tier_network(10.0, servers)
        for _, servers in paper_synthetic_structures()
    ]
    networks.append(build_webapp_network())
    return networks


def test_fig1_topology_construction(benchmark):
    networks = benchmark(build_all_structures)
    assert len(networks) == 6
    print("\n=== Figure 1: three-tier web service topology (paper schematic) ===")
    print(networks[0].describe())
    print("\npaper: tiers of replicated servers, one queue per server;")
    print("offered load per tier below (1-server tier heavily overloaded):")
    rows = []
    for (name, servers), net in zip(paper_synthetic_structures(), networks):
        rho = net.utilizations()
        rows.append((name, str(servers), f"{np.nanmax(rho):.2f}", f"{np.nanmin(rho):.2f}"))
    print(render_table(["structure", "servers/tier", "max rho", "min rho"], rows))


def test_fig1_routing_throughput(benchmark):
    net = build_three_tier_network(10.0, (1, 2, 4))
    rng = np.random.default_rng(0)

    def sample_paths():
        return [net.sample_path(rng) for _ in range(500)]

    paths = benchmark(sample_paths)
    assert all(len(p) == 3 for p in paths)
