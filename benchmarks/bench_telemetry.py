"""Telemetry overhead gate: instrumentation must cost ≤ 3%.

The telemetry subsystem rides inside the serving tier's two hot paths —
record ingestion (``LiveTraceStream.ingest``) and the per-window
estimation pipeline — so its cost is pinned, not assumed.  Each workload
runs with telemetry enabled and disabled (``telemetry.isolated``),
interleaved min-of-N so one co-tenancy spike on a shared CI runner
cannot flip the verdict, and the enabled/disabled ratio must stay
within ``MAX_OVERHEAD``.

The same window-latency workload also re-asserts the subsystem's other
contract: the published rate series is **bitwise identical** with
telemetry on and off at the same seed (histogram reservoirs use their
own stdlib RNG stream, never numpy's).

The result is written to ``BENCH_telemetry.json`` so the workflow can
archive the overhead trajectory across PRs.
"""

import json
import time

import numpy as np

from repro import telemetry
from repro.experiments import render_table
from repro.live import LiveTraceStream, replay_batches, trace_to_records
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import EstimatorConfig, ReplayTraceStream, get_estimator
from repro.simulate import simulate_network

from conftest import full_scale

#: Where the machine-readable result lands (uploaded as a CI artifact).
RESULT_PATH = "BENCH_telemetry.json"

#: Enabled/disabled wall-time ratio each workload must stay within.
MAX_OVERHEAD = 1.03

#: Interleaved repetitions per (workload, mode); min is the statistic.
ROUNDS = 5


def make_trace(n_tasks: int, seed: int = 23):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=seed)
    horizon = float(np.nanmax(sim.events.departure))
    return trace, horizon


def ingest_pass(trace, horizon, n_queues, batch: int = 64) -> float:
    """One full replay into a fresh stream; returns wall seconds."""
    stream = LiveTraceStream(n_queues=n_queues)
    t0 = time.perf_counter()
    for watermark, records in replay_batches(trace, batch_tasks=batch):
        stream.advance_watermark(watermark)
        stream.ingest(records)
    stream.advance_watermark(horizon + 1.0)
    stream.seal()
    stream.poll(horizon + 1.0)
    return time.perf_counter() - t0


def window_pass(trace, horizon, seed: int = 9):
    """One streaming-estimator run; returns (seconds, rates ndarray)."""
    config = EstimatorConfig(
        window=horizon / 4, stem_iterations=6, min_observed_tasks=2
    )
    estimator = get_estimator("stem")(
        ReplayTraceStream(trace), random_state=seed, config=config
    )
    t0 = time.perf_counter()
    windows = estimator.run()
    seconds = time.perf_counter() - t0
    rates = np.array([
        w.rates if w.rates is not None else [] for w in windows
        if w.rates is not None
    ])
    return seconds, rates


def timed_min(fn, modes=(True, False), rounds: int = ROUNDS) -> dict:
    """Interleave enabled/disabled rounds of *fn*; keep the min per mode."""
    best = {mode: float("inf") for mode in modes}
    for _ in range(rounds):
        for mode in modes:
            with telemetry.isolated(enabled=mode):
                best[mode] = min(best[mode], fn())
    return {"enabled": best[True], "disabled": best[False]}


def test_telemetry_overhead(benchmark):
    n_ingest = 1500 if not full_scale() else 6000
    n_window = 400 if not full_scale() else 1500
    ingest_trace, ingest_horizon = make_trace(n_ingest)
    window_trace, window_horizon = make_trace(n_window)
    n_queues = ingest_trace.skeleton.n_queues
    n_records = len(trace_to_records(ingest_trace))

    def run():
        ingest = timed_min(
            lambda: ingest_pass(ingest_trace, ingest_horizon, n_queues)
        )
        window = timed_min(
            lambda: window_pass(window_trace, window_horizon)[0]
        )
        with telemetry.isolated(enabled=True):
            _, rates_on = window_pass(window_trace, window_horizon)
        with telemetry.isolated(enabled=False):
            _, rates_off = window_pass(window_trace, window_horizon)
        return ingest, window, rates_on, rates_off

    ingest, window, rates_on, rates_off = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # The determinism contract: instrumentation never perturbs a draw.
    np.testing.assert_array_equal(rates_on, rates_off)

    rows = []
    result = {
        "max_overhead": MAX_OVERHEAD,
        "rounds": ROUNDS,
        "bitwise_equal": True,
        "workloads": {},
    }
    for name, times, unit in (
        ("ingest", ingest, f"{n_records} records"),
        ("window", window, f"{len(rates_on)} windows"),
    ):
        ratio = times["enabled"] / times["disabled"]
        result["workloads"][name] = {
            "enabled_s": times["enabled"],
            "disabled_s": times["disabled"],
            "ratio": ratio,
            "scale": unit,
        }
        rows.append((name, f"{times['disabled'] * 1e3:.1f}",
                     f"{times['enabled'] * 1e3:.1f}", f"{ratio:.4f}", unit))

    print("\n=== Telemetry overhead (min of interleaved rounds) ===")
    print(render_table(
        ["workload", "off (ms)", "on (ms)", "ratio", "scale"], rows,
    ))
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    print(f"wrote {RESULT_PATH}")

    for name, data in result["workloads"].items():
        assert data["ratio"] <= MAX_OVERHEAD, (
            f"telemetry overhead gate: {name} enabled/disabled ratio "
            f"{data['ratio']:.4f} exceeds {MAX_OVERHEAD}"
        )
