"""Ablation abl-load: estimation accuracy across load regimes.

Section 5.1 motivates evaluating "both lightly loaded and heavily loaded
systems" because the shape of the arrival posterior depends on load.  We
sweep a single M/M/1 queue through light (rho = 0.3), heavy (rho = 0.9),
and overloaded (rho = 1.5) regimes and record StEM's service-time error at
a fixed 10 % observation rate.
"""

import numpy as np

from repro.experiments import render_table
from repro.inference import run_stem
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network

REGIMES = (("light", 0.3), ("heavy", 0.9), ("overloaded", 1.5))
SERVICE_RATE = 5.0


def run_regime(rho: float, seed: int) -> dict[str, float]:
    net = build_tandem_network(rho * SERVICE_RATE, [SERVICE_RATE])
    sim = simulate_network(net, 500, random_state=seed)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=seed + 1)
    stem = run_stem(trace, n_iterations=70, random_state=seed + 2,
                    init_method="heuristic")
    true_service = sim.events.mean_service_by_queue()[1]
    true_waiting = sim.events.mean_waiting_by_queue()[1]
    return {
        "service_err": abs(stem.mean_service_times()[1] - true_service),
        "true_service": true_service,
        "true_waiting": true_waiting,
        "lambda_err": abs(stem.arrival_rate - net.arrival_rate) / net.arrival_rate,
    }


def test_ablation_load_regimes(benchmark):
    def sweep():
        return {
            name: [run_regime(rho, seed=100 * i + r) for r in range(3)]
            for i, (name, rho) in enumerate(REGIMES)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (name, rho) in REGIMES:
        runs = results[name]
        med_err = float(np.median([r["service_err"] for r in runs]))
        med_wait = float(np.median([r["true_waiting"] for r in runs]))
        med_lam = float(np.median([r["lambda_err"] for r in runs]))
        rows.append((name, f"{rho:.1f}", f"{med_err:.4f}", f"{med_wait:.2f}",
                     f"{med_lam:.1%}"))
    print("\n=== Ablation: load regimes (true mean service 0.2) ===")
    print(render_table(
        ["regime", "rho", "median svc err", "true waiting", "lambda rel err"],
        rows,
    ))

    # Reproduction target: the method works in ALL regimes, including the
    # overloaded one where steady-state theory has no answer at all.
    for name, _ in REGIMES:
        med = np.median([r["service_err"] for r in results[name]])
        assert med < 0.12, f"{name}: median error {med}"
