"""Figure 4: StEM accuracy vs observation rate on synthetic networks.

Reproduces both panels: absolute error of recovered service times (left)
and waiting times (right) at 5 / 10 / 25 % observed tasks, across the five
three-tier structures.  The paper's quoted numbers at 5 %: median absolute
error 0.033 (service) and 1.35 (waiting), with waiting errors roughly an
order of magnitude larger on overloaded queues.

Run with ``REPRO_FULL=1`` for the paper's exact scale (takes ~40 min);
default is a reduced configuration exercising the identical code path.
"""

import numpy as np

from benchmarks.conftest import full_scale
from repro.experiments import (
    paper_fig4_config,
    quick_fig4_config,
    render_table,
    run_fig4,
)
from repro.viz import boxplot_panel

PAPER_MEDIAN_SERVICE_AT_5PCT = 0.033
PAPER_MEDIAN_WAITING_AT_5PCT = 1.35


def test_fig4_error_vs_observation_rate(benchmark, scale_label):
    config = paper_fig4_config() if full_scale() else quick_fig4_config()

    result = benchmark.pedantic(
        run_fig4, args=(config,), kwargs={"random_state": 2008},
        rounds=1, iterations=1,
    )

    print(f"\n=== Figure 4 ({scale_label}) ===")
    for kind, paper_ref in (
        ("service", PAPER_MEDIAN_SERVICE_AT_5PCT),
        ("waiting", PAPER_MEDIAN_WAITING_AT_5PCT),
    ):
        rows = []
        for frac, q in result.panel_quartiles(kind).items():
            rows.append((
                f"{frac:.0%}", q["min"], q["q1"], q["median"], q["q3"], q["max"],
            ))
        print(render_table(
            ["observed", "min", "q1", "median", "q3", "max"],
            rows,
            title=f"\nabsolute error, {kind} time "
                  f"(paper median @ 5%: {paper_ref})",
        ))
        groups = {
            f"{frac:.0%}": result.errors(frac, kind)
            for frac in sorted({p.fraction for p in result.points})
        }
        print(boxplot_panel(groups, title=f"{kind}-error boxplots:"))

    fractions = sorted({p.fraction for p in result.points})
    smallest = fractions[0]
    # Shape checks (the reproduction targets):
    # 1. errors shrink as observation rate grows;
    for kind in ("service", "waiting"):
        med_lo = result.median_error(smallest, kind)
        med_hi = result.median_error(fractions[-1], kind)
        assert med_hi <= med_lo * 1.5, (
            f"{kind} error did not improve with more data: {med_lo} -> {med_hi}"
        )
    # 2. waiting errors sit well above service errors (overloaded tiers);
    assert result.median_error(smallest, "waiting") > result.median_error(
        smallest, "service"
    )
    # 3. service errors at the smallest fraction are in the paper's regime
    #    (same order of magnitude as 0.033 on a 0.2 mean service time).
    assert result.median_error(smallest, "service") < 0.12
