"""Ablation abl-paths: known vs unknown FSM paths (outer MH step).

Paper Section 3 assumes FSM paths are known but notes unknown paths "can
be resampled by an outer Metropolis-Hastings step".  This ablation
scrambles the server assignments of all unobserved events in a replicated
tier, then compares StEM-style estimation with (a) oracle paths, (b)
scrambled paths left unrepaired, and (c) scrambled paths repaired by the
MH path resampler interleaved with the Gibbs sweeps.
"""

import numpy as np

from repro.experiments import render_table
from repro.inference import (
    GibbsSampler,
    PathResampler,
    heuristic_initialize,
    mle_rates,
    run_stem,
    tier_candidates_from_fsm,
)
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network

N_ITER = 60


def scrambled_state(trace, rates, unknown, tier, rng):
    state = heuristic_initialize(trace, rates)
    for e in unknown:
        e = int(e)
        q_before = int(state.queue[e])
        state.reassign_queue(e, int(rng.choice(tier)))
        if not state.is_valid():
            state.reassign_queue(e, q_before)
    return state


def run_em(state, trace, rates, paths_resampler=None, random_state=0):
    sampler = GibbsSampler(trace, state, rates.copy(), random_state=random_state)
    history = []
    for _ in range(N_ITER):
        sampler.sweep()
        if paths_resampler is not None:
            paths_resampler.sweep()
        new_rates = mle_rates(state)
        sampler.set_rates(new_rates)
        if paths_resampler is not None:
            paths_resampler.set_rates(new_rates)
        history.append(new_rates)
    return np.array(history)[N_ITER // 2:].mean(axis=0)


def test_ablation_unknown_paths(benchmark):
    net = build_three_tier_network(6.0, (1, 3, 1), service_rate=5.0)
    sim = simulate_network(net, 300, random_state=111)
    trace = TaskSampling(fraction=0.15).observe(sim.events, random_state=11)
    tier = [net.queue_index(f"app-{j}") for j in range(3)]
    ev = sim.events
    unknown = np.array([
        e for e in range(ev.n_events)
        if int(ev.queue[e]) in tier and not trace.arrival_observed[e]
    ])
    true_service = ev.mean_service_by_queue()
    rng = np.random.default_rng(12)
    init_rates = sim.true_rates()

    def run_all():
        oracle = run_stem(
            trace, n_iterations=N_ITER, initial_rates=init_rates,
            init_method="heuristic", random_state=13,
        ).rates
        state_b = scrambled_state(trace, init_rates, unknown, tier, rng)
        broken = run_em(state_b, trace, init_rates, None, random_state=14)
        state_c = scrambled_state(trace, init_rates, unknown, tier, rng)
        resampler = PathResampler(
            state_c, tier_candidates_from_fsm(state_c, net.fsm, unknown),
            init_rates, random_state=15,
        )
        repaired = run_em(state_c, trace, init_rates, resampler, random_state=16)
        return oracle, broken, repaired

    oracle, broken, repaired = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def tier_err(rates):
        return float(np.mean(np.abs(1.0 / rates[tier] - true_service[tier])))

    rows = [
        ("oracle paths (paper assumption)", f"{tier_err(oracle):.4f}"),
        ("scrambled, no repair", f"{tier_err(broken):.4f}"),
        ("scrambled + MH path resampling", f"{tier_err(repaired):.4f}"),
    ]
    print("\n=== Ablation: unknown FSM paths (replicated-tier assignment) ===")
    print(render_table(["configuration", "tier mean |svc err|"], rows))

    # The MH repair must not be worse than leaving paths scrambled, and the
    # overall estimates must stay in a usable regime.
    assert tier_err(repaired) < 0.15
    assert tier_err(oracle) < 0.15
