"""Scaling: sweep cost vs latent count and vs server count.

Paper Section 5.2: "the sampler scales primarily in the number of
unobserved arrival events, not in the number of servers."  Two sweeps
verify exactly that:

* fix the observation rate, grow the task count -> cost grows linearly in
  the number of latent variables;
* fix the latent count, grow the number of servers per tier -> cost stays
  flat.
"""

import time

import numpy as np

from repro.experiments import render_table
from repro.inference import GibbsSampler, heuristic_initialize
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


def sweep_cost(n_tasks: int, servers: tuple, seed: int, n_sweeps: int = 3):
    net = build_three_tier_network(10.0, servers)
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=seed)
    rates = sim.true_rates()
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=seed)
    sampler.sweep()  # warm-up
    t0 = time.perf_counter()
    sampler.run(n_sweeps)
    elapsed = (time.perf_counter() - t0) / n_sweeps
    return trace.n_latent, elapsed


def test_scaling_in_latent_count(benchmark):
    sizes = (100, 200, 400, 800)

    def run_sweep():
        return [sweep_cost(n, (1, 2, 4), seed=81 + i) for i, n in enumerate(sizes)]

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (n, latent, f"{sec * 1e3:.1f}", f"{sec / latent * 1e6:.1f}")
        for n, (latent, sec) in zip(sizes, results)
    ]
    print("\n=== Scaling: cost vs number of latent variables ===")
    print(render_table(
        ["tasks", "latent vars", "ms / sweep", "us / latent"], rows,
        title="paper: cost scales in unobserved events",
    ))
    per_latent = [sec / latent for latent, sec in results]
    # Per-latent cost roughly constant => linear scaling (allow 3x drift
    # for cache effects at small sizes).
    assert max(per_latent) / min(per_latent) < 3.0


def test_scaling_in_server_count(benchmark):
    configs = ((2, 2, 2), (4, 4, 4), (8, 8, 8), (16, 16, 16))

    def run_sweep():
        return [sweep_cost(300, servers, seed=91 + i)
                for i, servers in enumerate(configs)]

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (str(servers), latent, f"{sec * 1e3:.1f}")
        for servers, (latent, sec) in zip(configs, results)
    ]
    print("\n=== Scaling: cost vs number of servers (fixed tasks) ===")
    print(render_table(
        ["servers/tier", "latent vars", "ms / sweep"], rows,
        title="paper: NOT in the number of servers",
    ))
    times = [sec for _, sec in results]
    # 8x more servers must not cost anywhere near 8x more per sweep.
    assert max(times) / min(times) < 2.5
