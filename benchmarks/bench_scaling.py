"""Scaling: sweep cost vs latent count, vs server count, and vs kernel.

Paper Section 5.2: "the sampler scales primarily in the number of
unobserved arrival events, not in the number of servers."  Two sweeps
verify exactly that:

* fix the observation rate, grow the task count -> cost grows linearly in
  the number of latent variables;
* fix the latent count, grow the number of servers per tier -> cost stays
  flat.

A third measurement compares the two sweep engines head to head.  Run with
``--kernel both`` (the CI smoke configuration) to execute it; it fails if
the vectorized array kernel is not faster than the object kernel, and
prints the measured speedup (>=2x on the benchmark sizes is the PR-2
acceptance target).

A fourth measurement compares the JIT-lowered native backend against the
array kernel on the same problems.  It runs whenever numba is importable
(and skips otherwise — the fallback has nothing to measure), excludes the
compile-on-first-call warm-up from every timing, writes the rows to
``BENCH_kernel_native.json`` and fails if the median speedup is below the
3x acceptance target.  ``--kernel native`` additionally runs the scaling
sweeps themselves on the native backend.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.experiments import render_table
from repro.inference import GibbsSampler, heuristic_initialize
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network

from conftest import full_scale


def make_sampler(n_tasks: int, servers: tuple, seed: int, kernel: str):
    net = build_three_tier_network(10.0, servers)
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=seed)
    rates = sim.true_rates()
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=seed, kernel=kernel)
    return sampler, trace


def sweep_cost(n_tasks: int, servers: tuple, seed: int, kernel: str = "array",
               n_sweeps: int = 3):
    sampler, trace = make_sampler(n_tasks, servers, seed, kernel)
    sampler.sweep()  # warm-up
    t0 = time.perf_counter()
    sampler.run(n_sweeps)
    elapsed = (time.perf_counter() - t0) / n_sweeps
    return trace.n_latent, elapsed


#: Where the native-vs-array comparison lands (uploaded as a CI artifact).
RESULT_PATH = "BENCH_kernel_native.json"


def _bench_kernel(kernel_mode: str) -> str:
    """The engine the scaling measurements run on ('both' -> array)."""
    if kernel_mode in ("object", "native"):
        return kernel_mode
    return "array"


def test_scaling_in_latent_count(benchmark, kernel_mode):
    sizes = (100, 200, 400, 800)
    kernel = _bench_kernel(kernel_mode)

    def run_sweep():
        return [
            sweep_cost(n, (1, 2, 4), seed=81 + i, kernel=kernel)
            for i, n in enumerate(sizes)
        ]

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (n, latent, f"{sec * 1e3:.1f}", f"{sec / latent * 1e6:.1f}")
        for n, (latent, sec) in zip(sizes, results)
    ]
    print(f"\n=== Scaling: cost vs number of latent variables [{kernel}] ===")
    print(render_table(
        ["tasks", "latent vars", "ms / sweep", "us / latent"], rows,
        title="paper: cost scales in unobserved events",
    ))
    per_latent = [sec / latent for latent, sec in results]
    # Per-latent cost roughly constant => linear scaling.  The batch
    # kernels amortize per-batch overhead, so small sizes look
    # relatively worse; allow more drift than the object kernel needs.
    bound = 3.0 if kernel == "object" else 8.0
    assert max(per_latent) / min(per_latent) < bound


def test_scaling_in_server_count(benchmark, kernel_mode):
    configs = ((2, 2, 2), (4, 4, 4), (8, 8, 8), (16, 16, 16))
    kernel = _bench_kernel(kernel_mode)

    def run_sweep():
        return [
            sweep_cost(300, servers, seed=91 + i, kernel=kernel)
            for i, servers in enumerate(configs)
        ]

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (str(servers), latent, f"{sec * 1e3:.1f}")
        for servers, (latent, sec) in zip(configs, results)
    ]
    print(f"\n=== Scaling: cost vs number of servers (fixed tasks) [{kernel}] ===")
    print(render_table(
        ["servers/tier", "latent vars", "ms / sweep"], rows,
        title="paper: NOT in the number of servers",
    ))
    times = [sec for _, sec in results]
    # 8x more servers must not cost anywhere near 8x more per sweep.
    assert max(times) / min(times) < 2.5


def test_kernel_speedup(benchmark, kernel_mode):
    """Array vs object kernel on identical problems; array must win.

    Median-of-sweeps per size, then per-size speedups; the assertion is
    deliberately just ">1x" so a noisy CI runner only fails on a real
    regression — locally the array kernel clears the >=2x acceptance
    target with a wide margin (typically 5-10x at these sizes).
    """
    if kernel_mode != "both":
        pytest.skip("kernel comparison runs with --kernel both")
    sizes = (200, 400, 800) if not full_scale() else (400, 800, 1600, 3200)
    n_sweeps = 5

    def run():
        out = []
        for i, n in enumerate(sizes):
            per_kernel = {}
            for kernel in ("object", "array"):
                sampler, trace = make_sampler(n, (1, 2, 4), 81 + i, kernel)
                sampler.sweep()  # warm-up
                times = []
                for _ in range(n_sweeps):
                    t0 = time.perf_counter()
                    sampler.sweep()
                    times.append(time.perf_counter() - t0)
                per_kernel[kernel] = float(np.median(times))
            out.append((n, trace.n_latent, per_kernel))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            n, latent,
            f"{t['object'] * 1e3:.1f}", f"{t['array'] * 1e3:.1f}",
            f"{t['object'] / t['array']:.2f}x",
        )
        for n, latent, t in results
    ]
    print("\n=== Kernel comparison: object vs array sweep (median) ===")
    print(render_table(
        ["tasks", "latent vars", "object ms", "array ms", "speedup"],
        rows, title="vectorized conflict-free batches vs per-move objects",
    ))
    speedups = [t["object"] / t["array"] for _, _, t in results]
    assert min(speedups) > 1.0, (
        f"array kernel slower than object kernel: speedups {speedups}"
    )
    print(f"median speedup: {float(np.median(speedups)):.2f}x")


def test_kernel_native_speedup(benchmark):
    """Native (JIT) vs array kernel on identical problems; >=3x median.

    Skips when numba is not importable: kernel="native" then falls back
    to the array evaluation and there is no compiled code to measure.
    The first sweep of every sampler is excluded from timing — for the
    native backend that sweep triggers JIT compilation, for the array
    backend it builds the same caches, so the measured sweeps compare
    steady-state cost only.
    """
    from repro.inference.native import NUMBA_AVAILABLE, native_capability

    if not NUMBA_AVAILABLE:
        pytest.skip("numba not installed; native backend falls back to array")
    sizes = (200, 400, 800) if not full_scale() else (400, 800, 1600, 3200)
    n_sweeps = 5

    def run():
        out = []
        for i, n in enumerate(sizes):
            per_kernel = {}
            for kernel in ("array", "native"):
                sampler, trace = make_sampler(n, (1, 2, 4), 81 + i, kernel)
                sampler.sweep()  # warm-up: caches + JIT compile, untimed
                times = []
                for _ in range(n_sweeps):
                    t0 = time.perf_counter()
                    sampler.sweep()
                    times.append(time.perf_counter() - t0)
                per_kernel[kernel] = float(np.median(times))
                sampler.close()
            out.append((n, trace.n_latent, per_kernel))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            n, latent,
            f"{t['array'] * 1e3:.2f}", f"{t['native'] * 1e3:.2f}",
            f"{t['array'] / t['native']:.2f}x",
        )
        for n, latent, t in results
    ]
    print("\n=== Kernel comparison: array vs native sweep (median) ===")
    print(render_table(
        ["tasks", "latent vars", "array ms", "native ms", "speedup"],
        rows, title="numpy batch evaluation vs fused compiled loops",
    ))
    speedups = [t["array"] / t["native"] for _, _, t in results]
    payload = {
        "capability": native_capability(),
        "n_sweeps": n_sweeps,
        "rows": [
            {"tasks": n, "latent": latent, "array_s": t["array"],
             "native_s": t["native"], "speedup": t["array"] / t["native"]}
            for n, latent, t in results
        ],
        "min_speedup": float(min(speedups)),
        "median_speedup": float(np.median(speedups)),
    }
    data = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = {}
    data["kernel_native_speedup"] = payload
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    print(f"median speedup: {float(np.median(speedups)):.2f}x")
    assert float(np.median(speedups)) >= 3.0, (
        f"native lowering below the 3x acceptance target: {speedups}"
    )
