"""Section 5.1 in-text table: StEM vs the observed-mean oracle baseline.

Paper: "although the mean error is almost identical, StEM has only
two-thirds of the variance (StEM variance: 9.09e-4, Mean-observed-service
variance: 1.37e-3)".  The reproduction target is the *ordering and rough
ratio* (StEM variance below the baseline's), not the absolute values —
those depend on the authors' exact workload draws.
"""

from benchmarks.conftest import full_scale
from repro.experiments import (
    paper_fig4_config,
    quick_fig4_config,
    render_table,
    run_variance_comparison,
)

PAPER_STEM_VARIANCE = 9.09e-4
PAPER_BASELINE_VARIANCE = 1.37e-3


def test_tab1_stem_vs_observed_mean(benchmark, scale_label):
    config = paper_fig4_config() if full_scale() else quick_fig4_config()

    comparison = benchmark.pedantic(
        run_variance_comparison, args=(config,),
        kwargs={"fraction": 0.05, "random_state": 51},
        rounds=1, iterations=1,
    )

    print(f"\n=== Section 5.1 estimator comparison ({scale_label}) ===")
    print(render_table(
        ["estimator", "variance (measured)", "variance (paper)", "mean abs err"],
        [
            ("StEM", f"{comparison.stem_variance:.3e}",
             f"{PAPER_STEM_VARIANCE:.3e}", f"{comparison.stem_mean_error:.4f}"),
            ("observed-mean oracle", f"{comparison.baseline_variance:.3e}",
             f"{PAPER_BASELINE_VARIANCE:.3e}", f"{comparison.baseline_mean_error:.4f}"),
        ],
    ))
    ratio = comparison.variance_ratio
    print(f"variance ratio StEM/baseline: measured {ratio:.3f} "
          f"(paper: {PAPER_STEM_VARIANCE / PAPER_BASELINE_VARIANCE:.3f})")

    # Reproduction target: StEM's estimator variance is below the oracle's
    # (the paper's headline), and the two mean errors are the same order.
    assert comparison.stem_variance < comparison.baseline_variance
    assert comparison.stem_mean_error < 4.0 * comparison.baseline_mean_error
