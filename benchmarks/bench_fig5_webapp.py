"""Figure 5: per-queue estimates vs observation rate on the web application.

Left panel: estimated mean service time per queue; right panel: estimated
mean waiting time — both as the observed request fraction sweeps up to
50 %.  The paper's findings to reproduce:

* estimates at 50 % are essentially the 100 % estimates (convergence);
* estimates stay stable down to ~10 % observed;
* the one web server that received only ~19 requests is visibly unstable.

``REPRO_FULL=1`` runs the paper's 5 759-request / 23 036-event trace.
"""

import numpy as np

from benchmarks.conftest import full_scale
from repro.experiments import (
    paper_fig5_config,
    quick_fig5_config,
    render_table,
    run_fig5,
)
from repro.viz import series_panel


def test_fig5_webapp_estimates(benchmark, scale_label):
    config = paper_fig5_config() if full_scale() else quick_fig5_config()

    result = benchmark.pedantic(
        run_fig5, args=(config,), kwargs={"random_state": 2008},
        rounds=1, iterations=1,
    )

    n_queues = len(result.queue_names)
    for panel, series, truth in (
        ("service", result.service, result.true_service),
        ("waiting", result.waiting, result.true_waiting),
    ):
        headers = ["queue", "events", *(f"{f:.0%}" for f in result.fractions), "truth"]
        rows = []
        for q in range(1, n_queues):
            rows.append((
                result.queue_names[q],
                int(result.requests_per_queue[q]),
                *(float(series[f][q]) for f in result.fractions),
                float(truth[q]),
            ))
        print(render_table(
            headers, rows,
            title=f"\n=== Figure 5 {panel} estimates ({scale_label}) ===",
        ))

    starved = result.starved_queue()
    print(f"\nstarved server: {result.queue_names[starved]} "
          f"({int(result.requests_per_queue[starved])} events; paper saw 19 requests)")

    series = {
        result.queue_names[q]: [result.service[f][q] for f in result.fractions]
        for q in range(1, n_queues)
    }
    print("\n" + series_panel(
        series,
        x_labels=[f"{f:.0%}" for f in result.fractions],
        title="service estimates vs observed fraction (Figure 5 left):",
    ))

    # Reproduction targets.
    # 1. Well-fed queues are stable for fractions >= 10% (spread small
    #    relative to the truth).
    fractions = [f for f in result.fractions if f >= 0.10]
    assert len(fractions) >= 2
    stable_spreads = []
    for q in range(1, n_queues):
        if q == starved:
            continue
        spread = result.stability_spread(q, min_fraction=0.10)
        stable_spreads.append(spread / max(result.true_service[q], 1e-9))
    assert np.median(stable_spreads) < 0.8, stable_spreads
    # 2. At the largest fraction, estimates track the truth.
    top = max(result.fractions)
    rel_err = []
    for q in range(1, n_queues):
        if q == starved:
            continue
        rel_err.append(
            abs(result.service[top][q] - result.true_service[q])
            / max(result.true_service[q], 1e-9)
        )
    assert np.median(rel_err) < 0.35, rel_err
