"""Ablation abl-init: LP initialization vs the constraint-propagation heuristic.

The paper initializes with a linear program minimizing
``sum_e |s_e - mu_{q_e}|``; our default for large traces is a greedy
feasible construction targeting the same objective.  This ablation
measures (a) initialization time, (b) the achieved objective, and (c)
whether the choice affects StEM's final estimate after a fixed budget —
the design question DESIGN.md calls out.
"""

import time

import numpy as np

from repro.experiments import render_table
from repro.inference import heuristic_initialize, lp_initialize, run_stem
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network


def setup_trace(n_tasks=400):
    net = build_three_tier_network(10.0, (1, 2, 4))
    sim = simulate_network(net, n_tasks, random_state=61)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=6)
    return sim, trace


def objective(state, rates):
    services = state.service_times()
    target = 1.0 / rates[state.queue]
    return float(np.abs(services - target).sum())


def test_ablation_initializers(benchmark):
    sim, trace = setup_trace()
    rates = sim.true_rates()

    def run_both():
        t0 = time.perf_counter()
        lp_state = lp_initialize(trace, rates)
        lp_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        h_state = heuristic_initialize(trace, rates)
        h_time = time.perf_counter() - t0
        return lp_state, lp_time, h_state, h_time

    lp_state, lp_time, h_state, h_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    lp_obj = objective(lp_state, rates)
    h_obj = objective(h_state, rates)

    true_service = sim.events.mean_service_by_queue()
    errors = {}
    for method in ("lp", "heuristic"):
        stem = run_stem(
            trace, n_iterations=60, init_method=method, random_state=62
        )
        errors[method] = float(
            np.median(np.abs(stem.mean_service_times()[1:] - true_service[1:]))
        )

    print("\n=== Ablation: initialization strategy ===")
    print(render_table(
        ["initializer", "time (s)", "sum|s - mu| objective", "StEM median svc err"],
        [
            ("LP (paper)", f"{lp_time:.3f}", f"{lp_obj:.1f}", f"{errors['lp']:.4f}"),
            ("heuristic", f"{h_time:.3f}", f"{h_obj:.1f}", f"{errors['heuristic']:.4f}"),
        ],
    ))
    # Both must be feasible; LP must achieve the (weakly) better objective.
    lp_state.validate()
    h_state.validate()
    assert lp_obj <= h_obj * 1.05
    # The final StEM quality should not depend much on the initializer.
    assert abs(errors["lp"] - errors["heuristic"]) < 0.08
