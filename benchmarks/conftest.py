"""Shared benchmark configuration.

Benchmarks default to reduced-scale configurations so the whole harness
runs in minutes; set ``REPRO_FULL=1`` to run at the paper's exact scale
(5 structures x 10 repetitions x 1000 tasks for Figure 4; 5 759 requests
for Figure 5).  Every benchmark prints a paper-vs-measured comparison.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--kernel",
        action="store",
        default="array",
        choices=("array", "object", "native", "both"),
        help="Gibbs sweep engine the benchmarks exercise; 'native' runs "
        "the JIT-lowered backend (falls back to array without numba); "
        "'both' also runs the array-vs-object comparison (which fails if "
        "the array kernel is not faster)",
    )


@pytest.fixture(scope="session")
def kernel_mode(request) -> str:
    """The --kernel option: 'array', 'object', 'native', or 'both'."""
    return request.config.getoption("--kernel")


def full_scale() -> bool:
    """Whether to run at the paper's full experimental scale."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


@pytest.fixture(scope="session")
def scale_label() -> str:
    """Human-readable scale tag for printed tables."""
    return "paper-scale" if full_scale() else "quick-scale"
