"""Warm cross-window shard workers vs cold per-window rebuilds.

The streaming estimator's claim is operational, not statistical: keeping
the shard worker processes, their transport connections, and their built
kernels warm across windows makes a window cheaper than rebuilding the
whole substrate per window, while producing estimates of exactly the
same quality (frozen windows are bitwise identical; see
``tests/test_streaming.py``).  This benchmark measures that directly on
one stream replayed twice:

* **warm** — the streaming design as shipped: one
  :class:`~repro.inference.shard.WarmShardWorkerPool` for the whole
  stream plus incremental re-partitioning, so shards away from the
  window edges adopt only fresh time arrays (``n_warm_shards`` reports
  how often that fired);
* **cold** — the rebuild baseline as it existed before streaming: a
  fresh worker pool spawned and torn down for every window, partition
  recomputed from scratch.

The two modes are compared as whole designs, so the incremental
partitioner's (small) cost difference is part of the measurement; from
the second window on their partitions — and hence their exact draws —
legitimately differ, while every window of either mode targets the same
posterior (frozen-window bitwise equivalence is pinned separately by
``tests/test_streaming.py``).

The acceptance assertion — warm wall clock strictly below cold — is what
the CI smoke step enforces, and the result is written to
``BENCH_streaming.json`` so the workflow can archive the perf trajectory
across PRs.
"""

import json
import os
import time

import numpy as np

from repro.experiments import render_table
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import ReplayTraceStream, StreamingEstimator
from repro.simulate import simulate_network

from conftest import full_scale

#: Where the machine-readable result lands (uploaded as a CI artifact).
RESULT_PATH = "BENCH_streaming.json"


def make_trace(n_tasks: int, seed: int = 19):
    net = build_tandem_network(4.0, [6.0, 8.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=0.3).observe(sim.events, random_state=seed)
    horizon = float(np.nanmax(sim.events.departure))
    return sim, trace, horizon


def run_stream(trace, horizon, *, warm: bool, shards: int, workers: int,
               seed: int = 7):
    """One full pass over the stream; returns (seconds, window estimates)."""
    estimator = StreamingEstimator(
        ReplayTraceStream(trace),
        window=horizon / 4,
        step=horizon / 12,           # overlap: the warm-reuse regime
        stem_iterations=6,
        random_state=seed,
        shards=shards,
        shard_workers=workers,
        repartition="incremental" if warm else "cold",
        warm_workers=warm,
    )
    t0 = time.perf_counter()
    windows = estimator.run()
    return time.perf_counter() - t0, windows


def test_streaming_warm_beats_cold(benchmark):
    n_tasks = 700 if not full_scale() else 3000
    shards, workers = 4, 2
    sim, trace, horizon = make_trace(n_tasks)
    cpus = len(os.sched_getaffinity(0))

    def run():
        # Best-of-2 per mode, alternating, so one co-tenancy noise spike
        # on a shared CI runner cannot flip the strict warm < cold gate.
        warm_times, cold_times = [], []
        warm_windows = cold_windows = None
        for _ in range(2):
            seconds, warm_windows = run_stream(
                trace, horizon, warm=True, shards=shards, workers=workers
            )
            warm_times.append(seconds)
            seconds, cold_windows = run_stream(
                trace, horizon, warm=False, shards=shards, workers=workers
            )
            cold_times.append(seconds)
        return min(warm_times), min(cold_times), warm_windows, cold_windows

    warm_s, cold_s, warm_windows, cold_windows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    ok_warm = [w for w in warm_windows if w.ok]
    sharded = [w for w in warm_windows if w.n_shards > 1]
    reused = sum(w.n_warm_shards for w in sharded)
    shipped = reused + sum(w.n_migrated_shards for w in sharded)
    rows = [
        ("warm (one pool, incremental partition)",
         f"{warm_s:.2f}", len(warm_windows), len(ok_warm),
         f"{reused}/{shipped}"),
        ("cold (pool + partition per window)",
         f"{cold_s:.2f}", len(cold_windows),
         len([w for w in cold_windows if w.ok]), "0/"
         f"{sum(w.n_shards for w in cold_windows if w.n_shards > 1)}"),
    ]
    print(f"\n=== Streaming estimation: warm vs cold "
          f"({sim.events.n_events} events, {len(warm_windows)} windows, "
          f"shards={shards}, workers={workers}, {cpus} cpu) ===")
    print(render_table(
        ["mode", "wall s", "windows", "ok", "warm shards"],
        rows,
        title="statistically equivalent estimates (incremental vs cold "
        "partitions reorder the exact scan); warm drops the rebuild overhead",
    ))
    speedup = cold_s / warm_s
    print(f"warm speedup over cold rebuilds: {speedup:.2f}x")
    result = {
        "benchmark": "streaming_warm_vs_cold",
        "n_events": int(sim.events.n_events),
        "n_windows": len(warm_windows),
        "shards": shards,
        "workers": workers,
        "cpus": cpus,
        "warm_seconds": warm_s,
        "cold_seconds": cold_s,
        "speedup": speedup,
        "warm_shard_updates": int(reused),
        "shipped_shard_updates": int(shipped),
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    print(f"wrote {RESULT_PATH}")
    # Acceptance: estimates must exist, warm reuse must fire, and warm
    # windows must beat the cold rebuilds they replace.
    assert ok_warm, "no window produced an estimate"
    assert reused > 0, "incremental re-partitioning never reused a shard"
    assert warm_s < cold_s, (
        f"warm windows slower than cold rebuilds: {warm_s:.2f}s vs {cold_s:.2f}s"
    )
