"""Ablation abl-em: stochastic EM vs Monte-Carlo EM at a matched budget.

Paper Section 4 prefers StEM because MCEM "requires running an independent
Gibbs sampler for a large number of iterations at each outer EM
iteration".  We give both algorithms the same total sweep budget and
compare accuracy and wall time — quantifying the trade the paper asserts.
"""

import time

import numpy as np

from repro.experiments import render_table
from repro.inference import run_mcem, run_stem
from repro.network import build_three_tier_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network

TOTAL_SWEEPS = 120


def test_ablation_stem_vs_mcem(benchmark):
    net = build_three_tier_network(10.0, (2, 1, 4))
    sim = simulate_network(net, 400, random_state=71)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=7)
    true_service = sim.events.mean_service_by_queue()

    def run_both():
        t0 = time.perf_counter()
        stem = run_stem(
            trace, n_iterations=TOTAL_SWEEPS, random_state=72,
            init_method="heuristic",
        )
        stem_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        mcem = run_mcem(
            trace, n_iterations=TOTAL_SWEEPS // 12, e_sweeps=10, e_burn_in=2,
            random_state=72, init_method="heuristic",
        )
        mcem_time = time.perf_counter() - t0
        return stem, stem_time, mcem, mcem_time

    stem, stem_time, mcem, mcem_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    def median_err(rates):
        return float(np.median(np.abs(1.0 / rates[1:] - true_service[1:])))

    stem_err = median_err(stem.rates)
    mcem_err = median_err(mcem.rates)
    print(f"\n=== Ablation: StEM vs MCEM ({TOTAL_SWEEPS}-sweep budget) ===")
    print(render_table(
        ["algorithm", "median svc err", "wall time (s)", "sweeps"],
        [
            ("StEM (paper)", f"{stem_err:.4f}", f"{stem_time:.2f}",
             str(stem.sampler.n_sweeps_done)),
            ("MCEM", f"{mcem_err:.4f}", f"{mcem_time:.2f}",
             str(mcem.total_sweeps)),
        ],
    ))
    # Both reach the same quality regime on a matched budget.
    assert stem_err < 0.12
    assert mcem_err < 0.12
