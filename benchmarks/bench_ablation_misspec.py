"""Ablation abl-misspec: robustness to service-distribution misspecification.

Sweeps the true service family across the SCV axis while the inference
keeps assuming M/M/1 (paper Section 1's robustness critique; Section 6
names general service distributions as future work).  The reproduction
target is qualitative: mean-service recovery degrades gracefully, staying
localization-usable (relative error well below 100 %) even at SCV 4.
"""

from repro.experiments import render_table
from repro.experiments.robustness import run_robustness


def test_ablation_misspecification(benchmark):
    points = benchmark.pedantic(
        run_robustness, kwargs={"random_state": 777}, rounds=1, iterations=1
    )

    rows = [
        (p.family, f"{p.scv:.2f}", f"{p.mean_abs_error:.4f}", f"{p.relative_error:.1%}")
        for p in points
    ]
    print("\n=== Ablation: true service family vs M/M/1 inference ===")
    print(render_table(
        ["true family", "SCV", "mean |svc err|", "relative"],
        rows, title="(true mean service 0.2 everywhere)",
    ))

    by_family = {p.family: p for p in points}
    # Correct-specification case must be solid...
    assert by_family["exponential"].relative_error < 0.4
    # ...and the misspecified cases stay usable for localization.
    for family in ("deterministic", "erlang4", "lognormal2", "hyperexp4"):
        assert by_family[family].relative_error < 1.0, family
