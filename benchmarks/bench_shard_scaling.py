"""Sharded-sweep scaling on a large synthetic trace.

The sharded engine's win is a *parallel* decomposition: per super-step,
the boundary pass is the only serial segment and every shard's interior
sweep can run concurrently.  This benchmark measures, on a >=5k-event
synthetic trace:

* the unsharded array-kernel sweep (the baseline);
* per shard count, the measured boundary-pass and per-shard interior
  times, whose critical path ``boundary + max(shard)`` is the wall-clock
  of a perfectly parallel super-step — reported as the **modeled parallel
  speedup** (the acceptance target: >1x at shards=4);
* the real wall clock of the shard **worker pool**, which realizes that
  speedup when the machine has cores to give (on a single-CPU host the
  pool pays IPC without any parallelism, so the wall-clock row is
  informational there and only asserted on multi-core machines).

The modeled number is honest for the design question — boundary fraction
and cut size are measured, not assumed — and the pool row keeps the
exchange overhead visible.
"""

import os
import time

import numpy as np

from repro.experiments import render_table
from repro.inference import GibbsSampler, heuristic_initialize
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.simulate import simulate_network

from conftest import full_scale

#: Shard counts measured; 4 carries the acceptance assertion.
SHARD_COUNTS = (2, 4)


def make_trace(n_tasks: int, seed: int = 5):
    net = build_tandem_network(4.0, [6.0, 8.0, 9.0])
    sim = simulate_network(net, n_tasks, random_state=seed)
    trace = TaskSampling(fraction=0.1).observe(sim.events, random_state=seed)
    return sim, trace


def median_sweep_seconds(sampler, n_sweeps: int = 5) -> float:
    sampler.sweep()  # warm-up
    times = []
    for _ in range(n_sweeps):
        t0 = time.perf_counter()
        sampler.sweep()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def profile_sharded(trace, rates, shards: int, seed: int, n_sweeps: int = 5):
    """Measured boundary/interior segment times of the in-process engine."""
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(trace, state, rates, random_state=seed, shards=shards)
    engine = sampler._shard_engine
    engine.sweep(state, sampler.rng)  # warm-up
    boundary = []
    shard_times = []
    for _ in range(n_sweeps):
        prof = engine.profile_sweep(state, sampler.rng)
        boundary.append(prof["boundary"])
        shard_times.append(prof["shards"])
    boundary_med = float(np.median(boundary))
    per_shard = np.median(np.asarray(shard_times), axis=0)
    return {
        "boundary": boundary_med,
        "per_shard": per_shard,
        "serial_total": boundary_med + float(per_shard.sum()),
        "critical_path": boundary_med + float(per_shard.max()),
        "n_boundary": engine.plan.n_boundary,
        "n_interior": engine.plan.n_interior,
        "cut": engine.partition.cut_size,
    }


def pooled_sweep_seconds(trace, rates, shards: int, workers: int, seed: int,
                         n_sweeps: int = 5) -> float:
    state = heuristic_initialize(trace, rates)
    sampler = GibbsSampler(
        trace, state, rates, random_state=seed, shards=shards,
        shard_workers=workers,
    )
    try:
        return median_sweep_seconds(sampler, n_sweeps)
    finally:
        sampler.close()


def test_shard_scaling(benchmark):
    # 3000 tasks -> 12k events; per-shard batches stay large enough to
    # amortize the numpy per-batch overhead (smaller traces understate the
    # parallel headroom).
    n_tasks = 3000 if not full_scale() else 8000
    sim, trace = make_trace(n_tasks)
    n_events = sim.events.n_events
    assert n_events >= 5000, f"trace too small for the benchmark: {n_events}"
    rates = sim.true_rates()
    cpus = len(os.sched_getaffinity(0))

    def run():
        base_state = heuristic_initialize(trace, rates)
        base = median_sweep_seconds(
            GibbsSampler(trace, base_state, rates, random_state=11)
        )
        rows = []
        modeled = {}
        for shards in SHARD_COUNTS:
            prof = profile_sharded(trace, rates, shards, seed=11)
            modeled[shards] = base / prof["critical_path"]
            wall = pooled_sweep_seconds(
                trace, rates, shards, workers=min(shards, max(cpus, 1)), seed=11
            )
            rows.append((
                shards,
                prof["cut"],
                f"{100.0 * prof['n_boundary'] / trace.n_latent:.1f}%",
                f"{base * 1e3:.1f}",
                f"{prof['boundary'] * 1e3:.2f}",
                f"{prof['per_shard'].max() * 1e3:.2f}",
                f"{prof['critical_path'] * 1e3:.2f}",
                f"{modeled[shards]:.2f}x",
                f"{base / wall:.2f}x",
            ))
        return base, rows, modeled

    base, rows, modeled = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n=== Sharded sweep scaling ({n_events} events, "
          f"{trace.n_latent} latent, {cpus} cpu) ===")
    print(render_table(
        ["shards", "cut", "boundary%", "base ms", "bnd ms", "max shard ms",
         "crit path ms", "modeled speedup", "pool wall speedup"],
        rows,
        title="boundary exchange stays narrow; interior sweeps fan out",
    ))
    # Acceptance: >1x sweep speedup at shards=4 on the parallel critical
    # path — the wall clock a multi-core host realizes.
    assert modeled[4] > 1.0, (
        f"no parallel speedup at shards=4: modeled {modeled[4]:.2f}x"
    )
    if cpus >= max(SHARD_COUNTS):
        # Only enforce real wall clock where every shard gets its own
        # core; on 1-2 vCPU hosts (shared CI runners) the pool pays IPC
        # without full overlap and the row stays informational.
        wall_speedup = float(rows[-1][-1].rstrip("x"))
        assert wall_speedup > 1.0, (
            f"worker pool slower than serial on a {cpus}-cpu host"
        )
    else:
        print(f"{cpus}-cpu host: pool wall clock is informational only "
              "(needs one core per shard to realize the modeled speedup)")
    print(f"modeled parallel speedup at shards=4: {modeled[4]:.2f}x")
