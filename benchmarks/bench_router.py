"""Aggregate ingest throughput of the multi-service tier (repro.live.router).

The router's scaling claim is architectural: partitions share nothing —
each service owns its stripe of the entry keyspace, its own stream, its
own estimator process — so aggregate ingest capacity grows with N until
the router's own per-record work (routing + frame pickling, all in the
front process) becomes the bottleneck.  This benchmark measures both
sides of that claim on one host:

* **measured tier throughput** — records/second admitted end-to-end
  through a real loopback tier (router + N service processes, concurrent
  clients, every record crossing two sockets), at N=1 and N=4;
* **measured router capacity** — the front process's per-record cost
  (routing decision + spool + forwarded-frame pickling) micro-measured
  in isolation: its inverse bounds any N;
* **modeled aggregate at N=4** — ``min(4 x T1, router capacity)`` from
  the two measured numbers, the same honest-on-one-box methodology as
  ``bench_shard_scaling.py``: a CI runner with a couple of cores cannot
  time-share 5 busy processes into a real 4x, so the wall-clock tier
  numbers are reported (and asserted only with >= 5 cpus) while the
  acceptance gate — modeled aggregate scaling at N=4 must clear
  ``MIN_MODELED_SCALING_AT_4`` — comes from measured component costs.

Results land in ``BENCH_router.json`` (uploaded as a CI artifact).
"""

import json
import os
import pickle
import threading
import time

from repro.experiments import render_table
from repro.live import IngestRouter, LiveClient, LiveServer

from conftest import full_scale

#: Where the machine-readable result lands (uploaded as a CI artifact).
RESULT_PATH = "BENCH_router.json"

#: Acceptance floor for the modeled aggregate scaling at N=4 services.
MIN_MODELED_SCALING_AT_4 = 3.0

#: Tasks per synthetic ingest batch (3 records per task).
BATCH_TASKS = 250


def merge_result(key: str, payload: dict) -> None:
    """Merge one benchmark's result into ``BENCH_router.json``."""
    data: dict = {}
    if os.path.exists(RESULT_PATH):
        try:
            with open(RESULT_PATH, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = {}
    data[key] = payload
    with open(RESULT_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)


def make_batches(n_tasks: int, dt: float = 0.01) -> list[list[dict]]:
    """Synthetic 3-queue tandem measurement records, whole tasks per
    batch, globally dense entry counters (what the stripe routes on)."""
    batches = []
    for start in range(0, n_tasks, BATCH_TASKS):
        records = []
        for task in range(start, min(start + BATCH_TASKS, n_tasks)):
            entry = task * dt
            records.append({"task": task, "seq": 0, "queue": 0,
                            "counter": task})
            records.append({"task": task, "seq": 1, "queue": 1,
                            "counter": task, "arrival": entry})
            records.append({"task": task, "seq": 2, "queue": 2,
                            "counter": task, "arrival": entry + 0.4,
                            "departure": entry + 0.9, "last": True})
        batches.append(records)
    return batches


def tier_config(horizon: float) -> dict:
    # Estimation is stubbed out (min_observed_tasks unreachable) so the
    # numbers isolate the ingest path — routing, wire, admission,
    # assembly — which is what the tier multiplies.
    return {
        "n_queues": 3,
        "window": horizon,
        "min_observed_tasks": 10**9,
        "stem_iterations": 1,
        "random_state": 0,
        "lateness": horizon,
    }


def measure_tier(n_services: int, batches: list, horizon: float,
                 n_clients: int = 4) -> float:
    """Records/second admitted through a live loopback tier."""
    n_records = sum(len(b) for b in batches)
    config = tier_config(horizon)
    with IngestRouter(n_services, config) as router:
        with LiveServer(router, authkey=b"bench") as server:

            def client_loop(my_batches):
                with LiveClient(server.address, authkey=b"bench") as client:
                    for batch in my_batches:
                        client.ingest(batch)

            threads = [
                threading.Thread(target=client_loop, args=(batches[i::n_clients],),
                                 daemon=True)
                for i in range(n_clients)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - t0
            health = router.health()
    assert health["n_admitted"] == n_records, health
    assert health["router"]["n_restarts"] == 0, health
    return n_records / max(elapsed, 1e-9)


def measure_router_capacity(batches: list, horizon: float) -> float:
    """Records/second of the front process's own per-record work.

    Routing decision + owner bookkeeping + spool append + the pickling
    of every forwarded frame, measured on an *unstarted* router (no
    sockets, no services): the serial front-process cost every record
    pays regardless of N, whose inverse caps aggregate throughput.
    """
    router = IngestRouter(4, tier_config(horizon))
    n_records = sum(len(b) for b in batches)
    t0 = time.perf_counter()
    for batch in batches:
        groups = router._route(batch)
        for p, group in groups.items():
            pickle.dumps(("ingest", group), protocol=pickle.HIGHEST_PROTOCOL)
            router._spool(router._partitions[p], group, 0)
    elapsed = time.perf_counter() - t0
    router.close()
    return n_records / max(elapsed, 1e-9)


def test_router_aggregate_scaling(benchmark):
    n_tasks = 8_000 if not full_scale() else 40_000
    dt = 0.01
    horizon = n_tasks * dt + 1.0
    batches = make_batches(n_tasks, dt)
    n_records = sum(len(b) for b in batches)

    def run():
        t1 = measure_tier(1, batches, horizon)
        t4 = measure_tier(4, batches, horizon)
        capacity = measure_router_capacity(batches, horizon)
        return t1, t4, capacity

    t1, t4, capacity = benchmark.pedantic(run, rounds=1, iterations=1)
    modeled_aggregate = min(4 * t1, capacity)
    modeled_scaling = modeled_aggregate / t1
    measured_scaling = t4 / t1
    cpus = len(os.sched_getaffinity(0))
    rows = [
        ("records shipped per tier", f"{n_records}"),
        ("tier throughput N=1", f"{t1:.0f} records/s"),
        ("tier throughput N=4 (wall clock)", f"{t4:.0f} records/s"),
        ("measured N=4 / N=1", f"{measured_scaling:.2f}x"),
        ("router front-process capacity", f"{capacity:.0f} records/s"),
        ("modeled aggregate at N=4", f"{modeled_aggregate:.0f} records/s"),
        ("modeled scaling at N=4", f"{modeled_scaling:.2f}x"),
        ("cpus", f"{cpus}"),
    ]
    print(f"\n=== Router tier: aggregate ingest scaling "
          f"({n_records} records, {cpus} cpu) ===")
    print(render_table(["metric", "value"], rows))
    merge_result("router_scaling", {
        "n_records": int(n_records),
        "cpus": int(cpus),
        "tier_records_per_second_n1": t1,
        "tier_records_per_second_n4": t4,
        "measured_scaling_n4": measured_scaling,
        "router_capacity_records_per_second": capacity,
        "modeled_aggregate_records_per_second_n4": modeled_aggregate,
        "modeled_scaling_n4": modeled_scaling,
    })
    print(f"wrote {RESULT_PATH}")
    # Acceptance: the shared-nothing split really buys aggregate capacity
    # — the router's own per-record work leaves >= 3x headroom over one
    # service at N=4.  Wall-clock scaling is asserted only when the host
    # can actually run 4 busy services + router + clients concurrently.
    assert modeled_scaling >= MIN_MODELED_SCALING_AT_4, (
        f"modeled aggregate scaling at N=4 is {modeled_scaling:.2f}x — "
        "the router's front-process work eats the shared-nothing win"
    )
    if cpus >= 5:
        assert measured_scaling > 1.5, (
            f"wall-clock N=4 scaling {measured_scaling:.2f}x on {cpus} "
            "cpus — the tier is serializing somewhere"
        )
