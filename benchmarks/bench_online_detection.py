"""Extension bench: online windowed estimation + anomaly detection.

Paper Section 6 names "online, distributed inference" as future work and
the introduction motivates anomaly detection.  This benchmark injects a
4x service degradation into one queue, runs the sliding-window estimator
over a 25 %-observed trace, and measures (a) wall time per window and (b)
detection latency: how many windows after the fault the first flag lands.
"""

import numpy as np

from repro.experiments import render_table
from repro.network import build_tandem_network
from repro.observation import TaskSampling
from repro.online import WindowedEstimator, detect_anomalies
from repro.simulate import RateChange, simulate_with_faults


def test_online_fault_detection(benchmark):
    net = build_tandem_network(4.0, [8.0, 10.0])
    n_tasks = 700
    fault_time = 0.55 * (n_tasks / 4.0)
    sim = simulate_with_faults(
        net, n_tasks, faults=[RateChange(queue=1, at=fault_time, rate=2.0)],
        random_state=404,
    )
    trace = TaskSampling(fraction=0.25).observe(sim.events, random_state=40)
    horizon = float(np.sort(sim.events.departure[sim.events.seq == 0])[-1])
    estimator = WindowedEstimator(
        trace, window=horizon / 10, stem_iterations=30, random_state=41
    )

    windows = benchmark.pedantic(estimator.run, rounds=1, iterations=1)
    reports = detect_anomalies(windows, threshold=4.0)
    assert reports, "injected fault not detected"
    q1_reports = [r for r in reports if r.queue == 1]
    assert q1_reports, "fault attributed to the wrong queue"
    first = min(q1_reports, key=lambda r: r.window_index)
    window_len = windows[0].t_end - windows[0].t_start
    latency_windows = max(0.0, (first.t_start - fault_time) / window_len) + 1.0

    print("\n=== Online detection (extension; paper §6 future work) ===")
    print(render_table(
        ["metric", "value"],
        [
            ("windows", str(len(windows))),
            ("windows with estimates", str(sum(w.ok for w in windows))),
            ("fault injected at", f"{fault_time:.0f}s"),
            ("first q1 flag at", f"{first.t_start:.0f}s"),
            ("detection latency", f"~{latency_windows:.0f} window(s)"),
            ("flag z-score", f"{first.z_score:.1f}"),
        ],
    ))
    # Detection within two windows of the fault.
    assert first.t_start <= fault_time + 2.0 * window_len
